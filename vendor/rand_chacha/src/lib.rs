//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`]: a real 8-round ChaCha keystream
//! generator (djb variant: 64-bit block counter, 64-bit zero nonce).
//!
//! Deterministic per seed and of cryptographic stream quality, but its
//! word stream is not guaranteed to match upstream `rand_chacha`
//! bit-for-bit — the workspace never asserts golden values of a stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::all, clippy::pedantic)] // vendored stand-in; lint the workspace, not this

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Initial block state (counter words mutate between blocks).
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64) | ((self.state[13] as u64) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    /// Word-level position within the keystream (for diagnostics).
    pub fn get_word_pos(&self) -> u128 {
        let block = (self.state[12] as u128) | ((self.state[13] as u128) << 32);
        block.saturating_sub(1) * 16 + self.idx as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter (12, 13) and nonce (14, 15) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should differ ({same}/32 equal)");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }
}
