//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! JSON text to/from the vendored `serde` stand-in's [`Value`] tree.
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so
//! `serialize → parse` reproduces every finite `f64` (and therefore
//! every `f32`) bit-for-bit — the property the workspace's round-trip
//! tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::all, clippy::pedantic)] // vendored stand-in; lint the workspace, not this

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the supported value shapes; kept fallible to match
/// the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the supported value shapes; kept fallible to match
/// the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a value-tree shape that does
/// not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a float marker so the value re-parses as a
                    // number either way; serde_json prints `1.0` too.
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, it, ind, d| write_value(o, it, ind, d),
            '[',
            ']',
        ),
        Value::Obj(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            |o, (k, val), ind, d| {
                write_escaped(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(1.5e-7),
            Value::Str("hi \"there\"\n".into()),
        ] {
            let s = to_string(&v).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back, v, "via {s}");
        }
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for f in [6.8e-11, 1.10e12, 0.1f64, 1.0 / 3.0, 5.35e9] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "via {s}");
        }
    }

    #[test]
    fn integral_float_keeps_number_type() {
        let s = to_string(&50.0f64).unwrap();
        assert_eq!(s, "50.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 50.0);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::Int(1), Value::Int(2)])),
            ("b".into(), Value::Obj(vec![("c".into(), Value::Null)])),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":[1,2],"b":{"c":null}}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
