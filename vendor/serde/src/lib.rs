//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment is fully offline, so the workspace vendors a
//! minimal serialization framework with the same *spelling* as serde —
//! `#[derive(Serialize, Deserialize)]`, `serde_json::to_string`,
//! `serde_json::from_str` — but a much simpler contract: values
//! serialize into an owned [`Value`] tree, and deserialize back out of
//! one. The derive macro (in the sibling `serde_derive` stand-in)
//! supports named-field structs, tuple structs, and unit-variant enums,
//! which covers every serialized type in this repository.
//!
//! JSON encoding conventions match serde's defaults for the supported
//! shapes: named structs as objects, newtype structs as their inner
//! value, tuple structs as arrays, unit enum variants as strings,
//! `Option` as the value or `null`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::all, clippy::pedantic)] // vendored stand-in; lint the workspace, not this

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A dynamically-typed serialized value (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Element of an array value.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an array or is too short.
    pub fn element(&self, idx: usize) -> Result<&Value, Error> {
        match self {
            Value::Arr(items) => items
                .get(idx)
                .ok_or_else(|| Error(format!("missing array element {idx}"))),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when the value tree does not match the type's
    /// expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error(format!(
                            "expected integer, got {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u128 = match v {
                    Value::Int(i) if *i >= 0 => *i as u128,
                    Value::UInt(u) => *u as u128,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u128,
                    other => {
                        return Err(Error(format!(
                            "expected unsigned integer, got {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);
impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so this round-trips losslessly.
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(Value::Int(1).field("x").is_err());
        assert!(Value::Obj(vec![]).field("x").is_err());
    }

    #[test]
    fn u64_above_i64_max_uses_uint() {
        let big = u64::MAX;
        assert_eq!(big.to_value(), Value::UInt(big));
        assert_eq!(u64::from_value(&Value::UInt(big)).unwrap(), big);
    }
}
