//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the workspace vendors the *subset* of the `rand 0.8` API it
//! actually uses: [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] over
//! numeric ranges, and [`distributions::Uniform`]. Streams are
//! deterministic per seed (all workspace randomness flows through
//! seeded ChaCha8 generators from the sibling `rand_chacha` stand-in),
//! but are **not** guaranteed to match upstream `rand`'s bit streams —
//! workspace tests assert statistical and structural properties, never
//! golden values of a particular stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::all, clippy::pedantic)] // vendored stand-in; lint the workspace, not this

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed (mirrors
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via a PCG32 stream (same
    /// expansion scheme as `rand_core 0.6`) and seeds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws a sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Width fits in u64 for every supported integer type.
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                if span > u64::MAX as u128 {
                    // Full-width u64/i64 range: any draw is valid.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        // 24 random mantissa bits -> u in [0, 1).
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = lo + (hi - lo) * u;
        // Guard against rounding up to the (exclusive) upper bound.
        if v >= hi {
            lo.max(hi - (hi - lo) * f32::EPSILON)
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        // 53 random mantissa bits -> u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + (hi - lo) * u;
        if v >= hi && lo < hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// User-facing generator extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rr>(&mut self, range: Rr) -> T
    where
        T: SampleUniform,
        Rr: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample_range(self, 0.0, 1.0, false) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution types (mirrors the used part of `rand::distributions`).
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over the half-open range `[lo, hi)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T: SampleUniform> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics if `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        ///
        /// # Panics
        ///
        /// Panics if `lo > hi`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive: empty range");
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.lo, self.hi, self.inclusive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);

    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            // A weak but well-spread mixing function, good enough to
            // exercise the range logic.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counting(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counting(11);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u: f64 = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_distribution_matches_gen_range_bounds() {
        use distributions::{Distribution, Uniform};
        let d = Uniform::new(-2.0f32, 2.0);
        let mut rng = Counting(3);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counting(1);
        let _: usize = rng.gen_range(5..5);
    }
}
