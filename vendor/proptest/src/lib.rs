//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, numeric-range and tuple strategies,
//! [`collection::vec`], [`Just`](strategy::Just), `prop_oneof!`, the
//! `proptest!` test macro, and `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed schedule (no persisted failure regressions — the
//! `.proptest-regressions` files in the tree are inert), and failing
//! cases are **not shrunk**; the panic message reports the failing
//! assertion directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::all, clippy::pedantic, unused_comparisons)] // vendored stand-in; lint the workspace, not this

/// Test-runner configuration.
pub mod test_runner {
    pub use rand::SeedableRng;

    /// RNG driving strategy generation.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Per-case RNG: deterministic schedule over the case index.
    pub fn case_rng(case: u64) -> TestRng {
        TestRng::seed_from_u64(0x7072_6f70_7465_7374u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bound for [`vec`]: exact or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            SizeRange { lo, hi: hi + 1 }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(__case as u64);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies per generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            a in 1usize..10,
            (x, y) in (0.0f32..1.0, -5i32..=5),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn map_flat_map_and_vec(
            v in (1usize..4).prop_flat_map(|n| collection::vec(0u8..10, n * 2))
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_just(choice in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&choice));
        }
    }

    #[test]
    fn default_config_runs() {
        // The macro without a config header compiles and runs.
        proptest! {
            #[allow(clippy::absurd_extreme_comparisons)]
            fn inner(n in 0u8..=255) {
                prop_assert!(n <= 255);
            }
        }
        inner();
    }
}
