//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the vendored `serde` stand-in, written
//! against `proc_macro` directly (no `syn`/`quote`, which are
//! unavailable offline).
//!
//! Supported shapes — which cover every serialized type in this
//! workspace:
//!
//! - structs with named fields → JSON objects
//! - newtype structs → the inner value
//! - tuple structs (arity ≥ 2) → JSON arrays
//! - unit structs → `null`
//! - enums whose variants are all unit variants → the variant name as a
//!   string
//!
//! Generics, data-carrying enum variants, and `#[serde(...)]`
//! attributes are rejected with a compile-time panic naming the
//! construct.

#![allow(clippy::all, clippy::pedantic)] // vendored stand-in; lint the workspace, not this
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the item being derived for.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    EnumUnit(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (stand-in) for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (stand-in) for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde stand-in derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::EnumUnit(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde stand-in derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Advances past leading attributes (`#[...]`) and a visibility
/// qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group (doc comments included)
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `pub(crate)` / `pub(in ...)`
                }
            }
            _ => return,
        }
    }
}

/// Collects field names from a named-struct body, skipping doc
/// comments, attributes, and the type after each `:` (tracking
/// angle-bracket depth so `Vec<(A, B)>` commas don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stand-in derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in derive: expected `:` after field, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts fields of a tuple-struct body (top-level comma count).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Collects variant names of an all-unit-variant enum.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stand-in derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => panic!(
                "serde stand-in derive: enum `{enum_name}` variant `{name}` carries data, \
                 which the stand-in does not support"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip an explicit discriminant up to the next comma.
                i += 1;
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
            }
            _ => {}
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(name);
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", pairs.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::EnumUnit(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(v.element({i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::EnumUnit(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match ::serde::Value::as_str(v)? {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(::serde::Error(\
                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
