//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`Bencher::iter`], [`BenchmarkId`], `criterion_group!` /
//! `criterion_main!` — backed by a simple median-of-samples wall-clock
//! timer instead of criterion's statistical machinery. Results print as
//! one line per benchmark:
//!
//! ```text
//! bench  conv_3x3_64ch_32px/pattern/2EP  median 1.234 ms  (10 samples)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::all, clippy::pedantic)] // vendored stand-in; lint the workspace, not this

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stand-in ignores measurement
    /// time and always takes `sample_size` samples.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id composed of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    n_samples: usize,
    per_sample_iters: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration sizing: target samples in the
        // 1..=50 ms range so fast ops still get a stable median without
        // slow ops ballooning the run.
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed();
        let iters = if once < Duration::from_micros(100) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        } else {
            1
        };
        self.per_sample_iters = iters;
        for _ in 0..self.n_samples.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        n_samples: sample_size,
        per_sample_iters: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench  {label}  (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "bench  {label}  median {}  ({} samples x {} iters)",
        fmt_duration(median),
        b.samples.len(),
        b.per_sample_iters
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags like
            // `--bench`; the stand-in accepts and ignores them. Under
            // `--test` (cargo test's bench smoke mode) it skips timing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
