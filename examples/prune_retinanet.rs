//! Full-scale RetinaNet comparison: R-TOSS vs every baseline pruner.
//!
//! Builds the 36 M-parameter RetinaNet (ResNet-50 + FPN + focal heads)
//! and runs the whole Fig. 4/5 method roster over it, printing measured
//! compression, L2 retention, and the analytic mAP estimate.
//!
//! Run: `cargo run --release --example prune_retinanet`

use rtoss::core::accuracy::{prune_stats, snapshot_weights, AccuracyModel};
use rtoss::core::baselines::all_baselines;
use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::models::retinanet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building full-scale RetinaNet (this allocates ~38M weights)...");
    let probe = retinanet(80, 42)?;
    println!(
        "{}: {:.2} M params, {} conv layers, {:.1}% 1x1 layers (paper: 56.14%)",
        probe.spec.name,
        probe.spec.params_millions(),
        probe.spec.conv_layer_count(),
        probe.spec.census().layer_fraction_1x1() * 100.0
    );
    drop(probe);

    let acc = AccuracyModel::retinanet_kitti();
    let mut pruners: Vec<Box<dyn Pruner>> = all_baselines();
    pruners.push(Box::new(RTossPruner::new(EntryPattern::Three)));
    pruners.push(Box::new(RTossPruner::new(EntryPattern::Two)));

    println!("\nmethod          compression  sparsity  retention  est. mAP");
    for p in pruners {
        let mut m = retinanet(80, 42)?;
        let snap = snapshot_weights(&m.graph);
        let report = p.prune_graph(&mut m.graph)?;
        let stats = prune_stats(&snap, &m.graph);
        println!(
            "{:<15} {:>10.2}x {:>8.1}% {:>10.3} {:>9.2}",
            p.name(),
            report.compression_ratio(),
            report.overall_sparsity() * 100.0,
            stats.retention,
            acc.estimate(&stats),
        );
    }
    println!(
        "\n(the paper reports 2.89x compression and 82.9 mAP for R-TOSS 2EP\n\
         on RetinaNet — our measured compression is higher because we also\n\
         prune the shared head towers; see EXPERIMENTS.md)"
    );
    Ok(())
}
