//! Sparse-execution deep dive: how much of the k/9 theoretical speedup
//! the pattern-grouped executor realises on this machine.
//!
//! Sweeps entry patterns and layer geometries, timing the dense im2col
//! executor against the pattern-grouped and per-weight COO sparse
//! executors (the measured substrate of Fig. 6's CPU series).
//!
//! Run: `cargo run --release --example sparse_inference`

use rtoss::core::pattern::canonical_set;
use rtoss::core::prune3x3::prune_3x3_weights;
use rtoss::sparse::runtime::measure_layer;
use rtoss::tensor::init;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("geometry            variant  theoretical  pattern-grouped  per-weight COO");
    for &(ch, px) in &[(32usize, 32usize), (64, 32), (64, 48)] {
        let x = init::uniform(&mut init::rng(1), &[1, ch, px, px], -1.0, 1.0);
        for k in [2usize, 3, 4, 5] {
            let mut w = init::uniform(&mut init::rng(2), &[ch, ch, 3, 3], -1.0, 1.0);
            prune_3x3_weights(&mut w, &canonical_set(k)?)?;
            let t = measure_layer(&x, &w, 1, 1, 3)?;
            println!(
                "{ch:>3}ch {px:>3}px 3x3     {k}EP     {:>9.2}x {:>15.2}x {:>14.2}x",
                9.0 / k as f64,
                t.pattern_speedup(),
                t.unstructured_speedup(),
            );
        }
    }
    println!(
        "\nThe pattern-grouped executor approaches the k/9 bound as sparsity\n\
         grows; kernels sharing one of the 21 canonical patterns run with a\n\
         fixed offset list (the regularity the paper's speedups rely on)."
    );
    Ok(())
}
