//! Quickstart: prune a detector with R-TOSS in a dozen lines.
//!
//! Builds the YOLOv5s scaled twin, applies R-TOSS 2-entry-pattern
//! pruning (DFS grouping + 3×3 pattern pruning + the 1×1
//! transformation), prints the sparsity report, and verifies that the
//! pattern-compressed sparse executor reproduces the dense layer
//! outputs.
//!
//! Run: `cargo run --release --example quickstart`

use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::models::yolov5s_twin;
use rtoss::sparse::exec::conv2d_pattern_sparse;
use rtoss::sparse::PatternCompressedConv;
use rtoss::tensor::{init, ops, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a detector (scaled YOLOv5s twin: same topology family,
    //    width 8, 64x64 input).
    let mut model = yolov5s_twin(8, 3, 42)?;
    println!(
        "built {} ({} conv layers, {:.2} M params)",
        model.spec.name,
        model.spec.conv_layer_count(),
        model.spec.params_millions()
    );

    // 2. Prune with R-TOSS (2EP): Algorithm 1 groups layers, Algorithm 2
    //    pattern-prunes 3x3 kernels, Algorithm 3 pools and prunes 1x1s.
    let pruner = RTossPruner::new(EntryPattern::Two);
    let report = pruner.prune_graph(&mut model.graph)?;
    println!(
        "{}: sparsity {:.1}%, compression {:.2}x, {} layer groups",
        report.method,
        report.overall_sparsity() * 100.0,
        report.compression_ratio(),
        report.group_count
    );

    // 3. The pruned model still runs (masks zero the dropped weights).
    let out = model.graph.forward(&Tensor::zeros(&[1, 3, 64, 64]))?;
    println!("forward pass ok: head output {:?}", out[0].shape());

    // 4. Compress one pruned 3x3 layer and execute it sparsely.
    let conv_id = model
        .graph
        .conv_ids()
        .into_iter()
        .find(|&id| model.graph.conv(id).map(|c| c.kernel_size()) == Some(3))
        .expect("twin has 3x3 layers");
    let conv = model.graph.conv(conv_id).expect("conv node");
    let w = conv.weight().value.clone();
    let (stride, pad) = (conv.stride(), conv.padding());
    let pc = PatternCompressedConv::from_dense(&w, stride, pad)?;
    println!(
        "layer {:?}: {} distinct patterns, stored weights {} ({:.2}x compressed)",
        model.graph.node(conv_id).name,
        pc.pattern_count(),
        pc.stored_weights(),
        pc.compression_ratio()
    );
    let x = init::uniform(&mut init::rng(7), &[1, pc.in_channels(), 16, 16], -1.0, 1.0);
    let dense = ops::conv2d(&x, &w, None, stride, pad)?;
    let sparse = conv2d_pattern_sparse(&x, &pc, None)?;
    let max_err = dense
        .as_slice()
        .iter()
        .zip(sparse.as_slice())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("sparse executor matches dense (max |err| = {max_err:.2e})");
    Ok(())
}
