//! Layer sensitivity analysis and protected pruning.
//!
//! Iterative frameworks decide *where* pruning is safe. This example
//! (1) ranks the twin's layers by how much L2 energy 2EP pruning costs
//! them, and (2) shows that protecting the most fragile layers — the
//! detection heads — recovers most of the twin-scale accuracy loss at
//! almost no compression cost.
//!
//! Run: `cargo run --release --example layer_sensitivity`
//! (add `-- --quick` for a smoke version)

use rtoss::core::sensitivity::analyze_layer_sensitivity;
use rtoss::core::{EntryPattern, Pruner, RTossConfig, RTossPruner};
use rtoss::data::scene::{generate_dataset, SceneConfig};
use rtoss::models::yolov5s_twin;
use rtoss::train::{evaluate_twin, load_state, save_state, train_twin, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, epochs, ft_epochs) = if quick { (48, 3, 2) } else { (300, 20, 30) };

    // 1. Sensitivity report (no training needed).
    let mut probe = yolov5s_twin(16, 3, 42)?;
    let report = analyze_layer_sensitivity(&mut probe.graph, EntryPattern::Two)?;
    println!("most pattern-sensitive layers under 2EP (lowest L2 retention):");
    println!("  layer                   kernel  params  retention");
    for l in report.iter().take(6) {
        println!(
            "  {:<22} {:>6}  {:>6}  {:>9.3}",
            l.name, l.kernel, l.params, l.retention
        );
    }

    // 2. Train once, then compare plain vs head-protected 2EP pruning.
    println!("\ntraining the twin ({epochs} epochs on {n_train} scenes)...");
    let train_scenes = generate_dataset(&SceneConfig::default(), n_train, 1000);
    let eval_scenes = generate_dataset(&SceneConfig::default(), 40, 2000);
    let mut base = yolov5s_twin(16, 3, 42)?;
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        ..Default::default()
    };
    train_twin(&mut base, &train_scenes, &cfg)?;
    let state = save_state(&mut base);
    println!(
        "baseline mAP@0.5: {:.1}%",
        evaluate_twin(&mut base, &eval_scenes, 0.25, 0.5)?.map_percent()
    );

    let ft = TrainConfig {
        epochs: ft_epochs,
        batch_size: 8,
        lr: 0.02,
        momentum: 0.9,
        ..Default::default()
    };
    for (label, protected) in [
        ("plain 2EP", Vec::new()),
        ("2EP, protected detect heads", vec!["detect".to_string()]),
    ] {
        let mut m = yolov5s_twin(16, 3, 42)?;
        load_state(&mut m, &state)?;
        let config = RTossConfig {
            protected,
            ..RTossConfig::new(EntryPattern::Two)
        };
        let r = RTossPruner::with_config(config).prune_graph(&mut m.graph)?;
        train_twin(&mut m, &train_scenes, &ft)?;
        println!(
            "{label}: compression {:.2}x, mAP {:.1}%",
            r.compression_ratio(),
            evaluate_twin(&mut m, &eval_scenes, 0.25, 0.5)?.map_percent()
        );
    }
    Ok(())
}
