//! End-to-end KITTI-style pipeline: train → prune → fine-tune → evaluate.
//!
//! The empirical accuracy tier in miniature: generates synthetic KITTI
//! traffic scenes, trains the YOLOv5s twin, applies R-TOSS (2EP),
//! fine-tunes with mask-aware SGD (pruned weights stay pruned), and
//! reports mAP@0.5 before and after, plus an annotated PPM of one scene.
//!
//! Run: `cargo run --release --example kitti_pipeline`
//! (add `--quick` after `--` for a 30-second smoke version)

use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::data::ppm::{write_ppm_with_boxes, Overlay};
use rtoss::data::scene::{generate_dataset, KittiClass, SceneConfig};
use rtoss::models::yolov5s_twin;
use rtoss::train::{detect_scene, evaluate_twin, train_twin, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, epochs, base) = if quick { (48, 4, 8) } else { (300, 20, 16) };

    println!("generating {n_train} training + 40 evaluation scenes...");
    let cfg = SceneConfig::default();
    let train_scenes = generate_dataset(&cfg, n_train, 11);
    let eval_scenes = generate_dataset(&cfg, 40, 22);

    let mut model = yolov5s_twin(base, KittiClass::COUNT, 42)?;
    println!("training the twin for {epochs} epochs...");
    let tcfg = TrainConfig {
        epochs,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    let losses = train_twin(&mut model, &train_scenes, &tcfg)?;
    println!(
        "loss: {:.3} -> {:.3}",
        losses.first().copied().unwrap_or(f32::NAN),
        losses.last().copied().unwrap_or(f32::NAN)
    );
    let before = evaluate_twin(&mut model, &eval_scenes, 0.25, 0.5)?;
    println!("mAP@0.5 before pruning: {:.1}%", before.map_percent());

    println!("pruning with R-TOSS (2EP) and fine-tuning...");
    let report = RTossPruner::new(EntryPattern::Two).prune_graph(&mut model.graph)?;
    println!(
        "compression {:.2}x (sparsity {:.1}%)",
        report.compression_ratio(),
        report.overall_sparsity() * 100.0
    );
    let pruned_raw = evaluate_twin(&mut model, &eval_scenes, 0.25, 0.5)?;
    println!(
        "mAP@0.5 right after pruning (no fine-tune): {:.1}%",
        pruned_raw.map_percent()
    );

    let ftcfg = TrainConfig {
        epochs: (3 * epochs) / 4,
        batch_size: 8,
        lr: 0.015,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    train_twin(&mut model, &train_scenes, &ftcfg)?;
    let after = evaluate_twin(&mut model, &eval_scenes, 0.25, 0.5)?;
    println!("mAP@0.5 after fine-tuning: {:.1}%", after.map_percent());
    println!(
        "sparsity preserved through fine-tuning: {:.1}%",
        model.conv_sparsity() * 100.0
    );

    // Annotated output for one scene.
    let scene = &eval_scenes[0];
    let dets = detect_scene(&mut model, scene, 0.25)?;
    let overlays: Vec<Overlay> = dets
        .iter()
        .map(|d| Overlay {
            bbox: d.bbox,
            color: [1.0, 1.0, 0.0],
            label: format!("{} {:.2}", KittiClass::from_index(d.class).name(), d.score),
        })
        .collect();
    let path = std::path::Path::new("results/kitti_pipeline.ppm");
    write_ppm_with_boxes(path, &scene.image, &overlays)?;
    println!(
        "wrote {} ({} detections on the sample scene)",
        path.display(),
        dets.len()
    );
    Ok(())
}
