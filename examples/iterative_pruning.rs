//! Iterative pruning: the paper's §IV schedule (prune → fine-tune →
//! tighten → ...) from 5EP down to 2EP with mAP tracked per round.
//!
//! Each round replaces the kernel masks with a tighter entry pattern
//! (masks only ever tighten — a later pattern can only keep cells that
//! survived earlier rounds), then fine-tunes so the surviving weights
//! absorb the removed capacity. Gradual tightening is gentler on the
//! small twin than one-shot 2EP pruning.
//!
//! Run: `cargo run --release --example iterative_pruning`
//! (add `-- --quick` for a smoke version)

use rtoss::core::schedule::IterativeSchedule;
use rtoss::core::{Pruner, RTossPruner};
use rtoss::data::scene::{generate_dataset, SceneConfig};
use rtoss::models::yolov5s_twin;
use rtoss::nn::optim::LrSchedule;
use rtoss::train::{evaluate_twin, train_twin, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, epochs, base) = if quick { (48, 3, 8) } else { (300, 15, 16) };

    println!("generating {n_train} training + 40 evaluation scenes...");
    let cfg = SceneConfig::default();
    let train_scenes = generate_dataset(&cfg, n_train, 31);
    let eval_scenes = generate_dataset(&cfg, 40, 32);

    let mut model = yolov5s_twin(base, 3, 42)?;
    println!("pre-training the twin for {epochs} epochs...");
    let tcfg = TrainConfig {
        epochs,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        schedule: LrSchedule::Cosine {
            total_epochs: epochs,
            min_lr: 0.005,
        },
    };
    train_twin(&mut model, &train_scenes, &tcfg)?;
    let base_map = evaluate_twin(&mut model, &eval_scenes, 0.25, 0.5)?.map_percent();
    println!("baseline mAP@0.5: {base_map:.1}%\n");

    let ft = TrainConfig {
        epochs: epochs / 2 + 1,
        batch_size: 8,
        lr: 0.015,
        momentum: 0.9,
        schedule: LrSchedule::Constant,
    };
    println!("round  sparsity   mAP after fine-tune");
    let schedule = IterativeSchedule::standard();
    let mut final_compression = 1.0;
    for &entry in schedule.rounds() {
        let report = RTossPruner::new(entry).prune_graph(&mut model.graph)?;
        train_twin(&mut model, &train_scenes, &ft)?;
        let map = evaluate_twin(&mut model, &eval_scenes, 0.25, 0.5)?.map_percent();
        println!(
            "  {entry}   {:>6.1}%   {map:.1}%",
            report.overall_sparsity() * 100.0
        );
        final_compression = report.compression_ratio();
    }
    println!("\nfinal compression {final_compression:.2}x (baseline mAP was {base_map:.1}%)");
    Ok(())
}
