//! Full-scale YOLOv5s pruning walkthrough: the paper's primary target.
//!
//! Builds the 7 M-parameter YOLOv5s at 640×640, shows the §III kernel
//! census, runs Algorithm 1's DFS grouping, sweeps all four entry
//! patterns, and projects latency/energy onto both evaluation platforms.
//!
//! Run: `cargo run --release --example prune_yolov5`

use rtoss::core::accuracy::{prune_stats, snapshot_weights, AccuracyModel};
use rtoss::core::dfs::group_layers;
use rtoss::core::{EntryPattern, Pruner, RTossPruner};
use rtoss::hw::{DeviceModel, SparsityStructure, Workload};
use rtoss::models::yolov5s;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building full-scale YOLOv5s (this allocates ~7M weights)...");
    let model = yolov5s(80, 42)?;
    let census = model.spec.census();
    println!(
        "{}: {:.2} M params, {} conv layers, {:.1}% of layers are 1x1 (paper: 68.42%)",
        model.spec.name,
        model.spec.params_millions(),
        model.spec.conv_layer_count(),
        census.layer_fraction_1x1() * 100.0
    );

    let groups = group_layers(&model.graph);
    println!(
        "Algorithm 1: {} conv layers -> {} parent-child groups (largest has {} members)",
        model.graph.conv_ids().len(),
        groups.len(),
        groups.groups().iter().map(|g| g.len()).max().unwrap_or(0)
    );

    let rtx = DeviceModel::rtx_2080ti();
    let tx2 = DeviceModel::jetson_tx2();
    let acc = AccuracyModel::yolov5s_kitti();
    println!("\nentry-pattern sweep (Table 3 axes):");
    println!("variant  compression  est. mAP  2080Ti ms  TX2 ms  2080Ti J");
    for entry in EntryPattern::all() {
        let mut m = yolov5s(80, 42)?;
        let snap = snapshot_weights(&m.graph);
        let report = RTossPruner::new(entry).prune_graph(&mut m.graph)?;
        let stats = prune_stats(&snap, &m.graph);
        let w = Workload {
            dense_macs: m.spec.total_macs(),
            effective_macs: m.effective_macs(),
            weight_bytes: ((report.total_weights() - report.total_zeros()) * 4) as u64,
            structure: SparsityStructure::SemiStructured,
        };
        println!(
            "{:<8} {:>10.2}x {:>9.2} {:>9.2} {:>7.0} {:>9.3}",
            entry.label(),
            report.compression_ratio(),
            acc.estimate(&stats),
            rtx.latency_ms(&w),
            tx2.latency_ms(&w),
            rtx.energy_j(&w),
        );
    }
    println!(
        "\n(the paper's Table 3 reports 1.79x/2.24x/2.9x/4.4x compression for\n\
         5EP/4EP/3EP/2EP on YOLOv5s; see `cargo run -p rtoss-bench --bin table3`)"
    );
    Ok(())
}
