//! Shared harness code for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5); this library holds the pieces they share:
//! the pruning-method roster, workload derivation (spec + measured
//! sparsity → MACs/bytes for the device models), and plain-text table
//! printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rtoss_core::accuracy::{prune_stats, snapshot_weights, PruneStats};
use rtoss_core::baselines::all_baselines;
use rtoss_core::{snapshot_report, EntryPattern, PruneReport, Pruner, RTossPruner};
use rtoss_hw::{SparsityStructure, Workload};
use rtoss_models::DetectorModel;

/// The result of applying one pruning method to one model.
#[derive(Debug)]
pub struct MethodRun {
    /// Method name ("BM", "PD", ..., "R-TOSS (2EP)").
    pub name: String,
    /// Per-layer sparsity report.
    pub report: PruneReport,
    /// Retention/sparsity statistics for the accuracy model.
    pub stats: PruneStats,
    /// Sparsity structure for the device models.
    pub structure: SparsityStructure,
    /// Workload (effective MACs, weight bytes) for the device models.
    pub workload: Workload,
}

/// Classifies a method name into the sparsity structure the hardware
/// sees (§II.B taxonomy).
pub fn structure_of(method: &str) -> SparsityStructure {
    match method {
        "BM" => SparsityStructure::Dense,
        "NMS" | "NP" => SparsityStructure::Unstructured,
        "NS" | "PF" => SparsityStructure::Structured,
        _ => SparsityStructure::SemiStructured, // PD and all R-TOSS variants
    }
}

/// Per-weight storage overhead (bytes) of each sparsity structure's
/// compressed format, added to the 4 data bytes:
/// semi-structured stores one pattern id per kernel (amortised),
/// unstructured needs an index per weight.
fn index_overhead_bytes(structure: SparsityStructure) -> f64 {
    match structure {
        SparsityStructure::Dense | SparsityStructure::Structured => 0.0,
        SparsityStructure::SemiStructured => 0.25,
        SparsityStructure::Unstructured => 2.0,
    }
}

/// Derives the device-model workload from a (possibly pruned) model and
/// its report.
pub fn workload_for(
    model: &DetectorModel,
    report: &PruneReport,
    structure: SparsityStructure,
) -> Workload {
    let dense_macs = model.spec.total_macs();
    let effective_macs = model.effective_macs();
    let surviving = (report.total_weights() - report.total_zeros()) as f64;
    let dense_extra = model.spec.extra_params as f64 * 4.0;
    let weight_bytes = if report.total_weights() == 0 {
        model.spec.total_weight_bytes()
    } else {
        (surviving * (4.0 + index_overhead_bytes(structure)) + dense_extra) as u64
    };
    Workload {
        dense_macs,
        effective_macs,
        weight_bytes,
        structure,
    }
}

/// The full method roster of Figs. 4–7: BM, the five baselines, and
/// both R-TOSS variants — applied to a fresh model built by `build`.
///
/// # Panics
///
/// Panics if any pruner fails on the model (the roster is only used
/// with known-good models inside the harness binaries).
pub fn run_roster(build: impl Fn() -> DetectorModel) -> Vec<MethodRun> {
    let mut runs = Vec::new();

    // Base model: no pruning.
    let bm = build();
    let report = snapshot_report(&bm.graph, "BM");
    let snap = snapshot_weights(&bm.graph);
    let stats = prune_stats(&snap, &bm.graph);
    let structure = SparsityStructure::Dense;
    let workload = workload_for(&bm, &report, structure);
    runs.push(MethodRun {
        name: "BM".into(),
        report,
        stats,
        structure,
        workload,
    });

    let mut pruners: Vec<Box<dyn Pruner>> = all_baselines();
    pruners.push(Box::new(RTossPruner::new(EntryPattern::Three)));
    pruners.push(Box::new(RTossPruner::new(EntryPattern::Two)));

    for p in pruners {
        let mut m = build();
        let snap = snapshot_weights(&m.graph);
        let report = p
            .prune_graph(&mut m.graph)
            .unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
        let stats = prune_stats(&snap, &m.graph);
        let structure = structure_of(&p.name());
        let workload = workload_for(&m, &report, structure);
        runs.push(MethodRun {
            name: p.name(),
            report,
            stats,
            structure,
            workload,
        });
    }
    runs
}

/// Runs only the four R-TOSS entry-pattern variants (Table 3 rows).
///
/// # Panics
///
/// Panics if pruning fails (harness-internal use).
pub fn run_entry_sweep(build: impl Fn() -> DetectorModel) -> Vec<MethodRun> {
    EntryPattern::all()
        .into_iter()
        .map(|entry| {
            let mut m = build();
            let snap = snapshot_weights(&m.graph);
            let p = RTossPruner::new(entry);
            let report = p
                .prune_graph(&mut m.graph)
                .unwrap_or_else(|e| panic!("{} failed: {e}", p.name()));
            let stats = prune_stats(&snap, &m.graph);
            let structure = SparsityStructure::SemiStructured;
            let workload = workload_for(&m, &report, structure);
            MethodRun {
                name: p.name(),
                report,
                stats,
                structure,
                workload,
            }
        })
        .collect()
}

/// Renders an aligned plain-text table to a string (also what the
/// benchmark bins write as their `.txt` artifacts).
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let mut out = format!("\n== {title} ==\n{}\n", fmt_row(&head));
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Prints an aligned plain-text table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(title, headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_models::yolov5s_twin;

    fn twin() -> DetectorModel {
        yolov5s_twin(4, 2, 7).unwrap()
    }

    #[test]
    fn roster_covers_eight_methods() {
        let runs = run_roster(twin);
        let names: Vec<&str> = runs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "BM",
                "PD",
                "NMS",
                "NS",
                "PF",
                "NP",
                "R-TOSS (3EP)",
                "R-TOSS (2EP)"
            ]
        );
        // BM is dense, everything else is sparser.
        assert!(runs[0].report.overall_sparsity() < 0.01);
        for r in &runs[1..] {
            assert!(r.report.overall_sparsity() > 0.1, "{}", r.name);
        }
    }

    #[test]
    fn rtoss_2ep_has_highest_compression() {
        let runs = run_roster(twin);
        let best = runs
            .iter()
            .max_by(|a, b| {
                a.report
                    .compression_ratio()
                    .total_cmp(&b.report.compression_ratio())
            })
            .unwrap();
        assert_eq!(best.name, "R-TOSS (2EP)");
    }

    #[test]
    fn entry_sweep_orders_by_k() {
        let runs = run_entry_sweep(twin);
        assert_eq!(runs.len(), 4);
        let ratios: Vec<f64> = runs.iter().map(|r| r.report.compression_ratio()).collect();
        for w in ratios.windows(2) {
            assert!(w[1] > w[0], "{ratios:?}");
        }
    }

    #[test]
    fn workloads_shrink_with_pruning() {
        let runs = run_roster(twin);
        let bm = &runs[0].workload;
        for r in &runs[1..] {
            assert!(r.workload.effective_macs < bm.effective_macs, "{}", r.name);
            assert!(r.workload.weight_bytes < bm.weight_bytes, "{}", r.name);
        }
    }

    #[test]
    fn structure_classification() {
        assert_eq!(structure_of("BM"), SparsityStructure::Dense);
        assert_eq!(structure_of("NMS"), SparsityStructure::Unstructured);
        assert_eq!(structure_of("NS"), SparsityStructure::Structured);
        assert_eq!(
            structure_of("R-TOSS (2EP)"),
            SparsityStructure::SemiStructured
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into()]]);
    }
}
