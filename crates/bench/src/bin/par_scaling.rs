//! Thread-scaling table for the tiled parallel conv executors.
//!
//! Times the dense im2col executor and the pattern-grouped sparse
//! executor (2EP / 3EP / 4EP pruning) on one representative 3×3 layer
//! at 1 / 2 / 4 / 8 intra-op threads — plus the full 3EP-pruned
//! YOLOv5s twin through the compiled execution plan — and writes the
//! table to `results/par_scaling.txt` + `results/par_scaling.json`.
//!
//! ```text
//! par_scaling [--reps N] [--image N] [--channels N] [--out-dir PATH]
//!             [--verify] [--no-plan]
//! ```
//!
//! `--verify` statically checks the pruned weights (compressed form)
//! and the tile partition for every swept thread count before timing,
//! exiting non-zero instead of benchmarking an ill-formed layer.
//! `--no-plan` runs the end-to-end engine column through the per-call
//! graph interpreter instead of the compiled execution plan.
//!
//! Speedups are relative to the 1-thread run of the same executor, so
//! the table reads directly as parallel efficiency. The layer columns
//! exercise intra-op tiling; the engine column exercises the plan's
//! graph-level scheduler (`threads` = level width on the persistent
//! worker pool). On a single-core machine expect ~1.0x everywhere;
//! both the text note and the JSON `caveat` field record when the
//! sweep is an overhead ceiling rather than scaling data.

use rtoss_bench::print_table;
use rtoss_core::pattern::canonical_set;
use rtoss_core::prune3x3::prune_3x3_weights;
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_sparse::runtime::measure_layer_with;
use rtoss_tensor::{init, ExecConfig, Tensor};
use serde::{Deserialize, Serialize};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Seconds per run for each executor at one thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ScalingRow {
    /// Intra-op threads.
    threads: u64,
    /// Dense im2col conv, seconds per run.
    dense_s: f64,
    /// Pattern-grouped executor at 2EP pruning, seconds per run.
    pattern_2ep_s: f64,
    /// Pattern-grouped executor at 3EP pruning, seconds per run.
    pattern_3ep_s: f64,
    /// Pattern-grouped executor at 4EP pruning, seconds per run.
    pattern_4ep_s: f64,
    /// 3EP-pruned YOLOv5s twin end-to-end, seconds per run.
    engine_3ep_s: f64,
}

/// The scaling report written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ScalingReport {
    /// Input image side, pixels.
    image: u64,
    /// Channel count (both in and out).
    channels: u64,
    /// Timed repetitions per cell.
    reps: u64,
    /// Cores the host actually has (`available_parallelism`).
    host_cores: u64,
    /// Whether the engine column ran through compiled execution plans
    /// (`false` = `--no-plan` interpreter baseline).
    plan: bool,
    /// Non-empty on single-core hosts: the sweep measures the overhead
    /// ceiling of the parallel paths, not their speedup. Recorded in
    /// the JSON (not just the text table) so downstream consumers
    /// cannot misread an overhead sweep as scaling data.
    caveat: String,
    /// Conv steps per selected kernel format in the compiled 3EP
    /// engine's plan (empty under `--no-plan` — the interpreter picks
    /// formats per call, not per plan). Sorted by format name.
    engine_formats: Vec<FormatCount>,
    /// One row per thread count.
    rows: Vec<ScalingRow>,
}

/// Count of conv steps that selected one kernel format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FormatCount {
    /// Kernel format label: `pattern`, `coo`, or `dense`.
    format: String,
    /// Conv steps in the plan that selected it.
    steps: u64,
}

struct Args {
    reps: usize,
    image: usize,
    channels: usize,
    out_dir: String,
    verify: bool,
    plan: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        reps: 5,
        image: 40,
        channels: 64,
        out_dir: "results".to_string(),
        verify: false,
        plan: true,
    };
    fn usage_error(msg: &str) -> ! {
        eprintln!("par_scaling: {msg}");
        eprintln!(
            "usage: par_scaling [--reps N] [--image N] [--channels N] [--out-dir PATH] \
             [--verify] [--no-plan]"
        );
        std::process::exit(2);
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} takes a number, got {raw:?}")))
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--reps" => args.reps = number(&flag, &value()),
            "--image" => args.image = number(&flag, &value()),
            "--channels" => args.channels = number(&flag, &value()),
            "--out-dir" => args.out_dir = value(),
            "--verify" => args.verify = true,
            "--no-plan" => args.plan = false,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

fn pruned_weight(channels: usize, k: usize) -> Tensor {
    let mut w = init::uniform(&mut init::rng(8), &[channels, channels, 3, 3], -1.0, 1.0);
    prune_3x3_weights(&mut w, &canonical_set(k).expect("pattern set")).expect("prune succeeds");
    w
}

fn main() {
    let args = parse_args();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "par_scaling: {c}x{c}x3x3 layer, {s}x{s} input, {r} reps, host has {host_cores} core(s)\n",
        c = args.channels,
        s = args.image,
        r = args.reps,
    );

    let x = init::uniform(
        &mut init::rng(7),
        &[1, args.channels, args.image, args.image],
        -1.0,
        1.0,
    );
    let weights: Vec<(usize, Tensor)> = [2usize, 3, 4]
        .into_iter()
        .map(|k| (k, pruned_weight(args.channels, k)))
        .collect();

    if args.verify {
        // Refuse to time ill-formed layers: verify the compressed form
        // of every pruned weight and the tile partition at each swept
        // thread count (one tile per output channel at batch 1).
        let mut pre = rtoss_verify::Report::new();
        for (k, w) in &weights {
            let pc = rtoss_sparse::PatternCompressedConv::from_dense(w, 1, 1).expect("compresses");
            pre.extend(rtoss_verify::check_pattern_layer(
                &format!("{k}EP layer"),
                &pc,
            ));
        }
        let max_threads = THREAD_SWEEP.iter().copied().max().unwrap_or(1);
        pre.extend(rtoss_verify::check_tile_partition(args.channels, max_threads).diagnostics);
        if pre.has_errors() {
            eprint!("{}", pre.render());
            eprintln!("par_scaling: refusing to benchmark ill-formed layers");
            std::process::exit(1);
        }
        println!(
            "pre-flight verify: clean ({} findings)\n",
            pre.diagnostics.len()
        );
    }

    // End-to-end column: the 3EP-pruned YOLOv5s twin through the
    // compiled engine (planned by default, interpreter with --no-plan).
    let mut twin = rtoss_models::yolov5s_twin(8, 2, 42).expect("twin builds");
    RTossPruner::new(EntryPattern::Three)
        .prune_graph(&mut twin.graph)
        .expect("prunes");
    let engine = rtoss_sparse::SparseModel::compile(&twin.graph)
        .expect("compiles")
        .with_planning(args.plan);
    let x_model = init::uniform(&mut init::rng(9), &[1, 3, args.image, args.image], 0.0, 1.0);

    let mut rows = Vec::new();
    for threads in THREAD_SWEEP {
        let exec = ExecConfig::with_threads(threads);
        let mut dense_s = 0.0;
        let mut pattern = [0.0f64; 3];
        for (i, (_, w)) in weights.iter().enumerate() {
            let t = measure_layer_with(&x, w, 1, 1, args.reps, &exec).expect("measurement");
            if i == 0 {
                dense_s = t.dense_s;
            }
            pattern[i] = t.pattern_s;
        }
        // Warm-up, then min-of-reps rather than mean: the engine
        // forward is sub-millisecond, and on a loaded (or single-core)
        // host the mean folds in the scheduler noise left by the
        // tiled-layer measurements above, reading as a phantom
        // thread-scaling regression.
        engine.forward_with(&x_model, &exec).expect("forward");
        let mut engine_3ep_s = f64::INFINITY;
        for _ in 0..args.reps {
            let start = std::time::Instant::now();
            let y = engine.forward_with(&x_model, &exec).expect("forward");
            engine_3ep_s = engine_3ep_s.min(start.elapsed().as_secs_f64());
            std::hint::black_box(y[0].as_slice()[0]);
        }
        rows.push(ScalingRow {
            threads: threads as u64,
            dense_s,
            pattern_2ep_s: pattern[0],
            pattern_3ep_s: pattern[1],
            pattern_4ep_s: pattern[2],
            engine_3ep_s,
        });
    }

    let base = &rows[0].clone();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let cell = |s: f64, b: f64| format!("{:.3} ms ({:.2}x)", s * 1e3, b / s);
            vec![
                r.threads.to_string(),
                cell(r.dense_s, base.dense_s),
                cell(r.pattern_2ep_s, base.pattern_2ep_s),
                cell(r.pattern_3ep_s, base.pattern_3ep_s),
                cell(r.pattern_4ep_s, base.pattern_4ep_s),
                cell(r.engine_3ep_s, base.engine_3ep_s),
            ]
        })
        .collect();
    let engine_col = if args.plan {
        "3EP twin (plan)"
    } else {
        "3EP twin (interp)"
    };
    let title =
        format!("Tiled-executor thread scaling (speedup vs 1 thread; host: {host_cores} core(s))");
    print_table(
        &title,
        &["threads", "dense", "2EP", "3EP", "4EP", engine_col],
        &table,
    );

    let caveat = if host_cores == 1 {
        "single-core host: this sweep measures the overhead ceiling of the parallel \
         paths (expected ~1.0x), not their speedup; rerun on a multi-core host for \
         scaling data"
            .to_string()
    } else {
        String::new()
    };
    let mut counts = std::collections::BTreeMap::new();
    if args.plan {
        let summary = engine
            .plan_summary(&[1, 3, args.image, args.image])
            .expect("plans");
        for step in &summary.steps {
            if step.format != "-" {
                *counts.entry(step.format.to_string()).or_insert(0u64) += 1;
            }
        }
    }
    let engine_formats: Vec<FormatCount> = counts
        .into_iter()
        .map(|(format, steps)| FormatCount { format, steps })
        .collect();
    let report = ScalingReport {
        image: args.image as u64,
        channels: args.channels as u64,
        reps: args.reps as u64,
        host_cores: host_cores as u64,
        plan: args.plan,
        caveat,
        engine_formats,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: ScalingReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report, "serde round-trip must be lossless");

    std::fs::create_dir_all(&args.out_dir).expect("output dir");
    let json_path = format!("{}/par_scaling.json", args.out_dir);
    std::fs::write(&json_path, &json).expect("write json report");
    let mut text = format!(
        "{title}\n\nthreads | dense | 2EP | 3EP | 4EP | {engine_col} \
         (seconds/run, speedup vs threads=1)\n"
    );
    for row in &table {
        text.push_str(&row.join(" | "));
        text.push('\n');
    }
    if host_cores == 1 {
        text.push_str(
            "\nNote: this host exposes a single core, so the sweep measures the\n\
             overhead ceiling of the tiled path (expected ~1.0x or slightly below),\n\
             not its parallel speedup. Rerun on a multi-core host for scaling.\n",
        );
    }
    let txt_path = format!("{}/par_scaling.txt", args.out_dir);
    std::fs::write(&txt_path, &text).expect("write text report");
    println!("\nreports: {txt_path}, {json_path} (serde round-trip verified)");
}
