//! Regenerates **Fig. 7**: energy-usage reduction of every framework
//! relative to the Base Model, on the RTX 2080 Ti and the Jetson TX2.
//!
//! Energy comes from the calibrated device models driven by each
//! method's *measured* sparsity (static power × predicted latency +
//! per-MAC and per-byte dynamic energy).

use rtoss_bench::{print_table, run_roster};
use rtoss_hw::DeviceModel;
use rtoss_models::{retinanet, yolov5s, DetectorModel};

/// Paper Fig. 7 headline reductions vs BM (%): (method, 2080 Ti, TX2).
const PAPER_YOLO: &[(&str, f64, f64)] = &[
    ("PD", 41.7, 54.0),
    ("R-TOSS (3EP)", 48.23, 57.01),
    ("R-TOSS (2EP)", 45.5, 54.90),
];
const PAPER_RETINA: &[(&str, f64, f64)] = &[
    ("PD", 9.7, 46.5),
    ("R-TOSS (3EP)", 55.75, 70.12),
    ("R-TOSS (2EP)", 48.0, 56.31),
];

fn sweep(name: &str, build: impl Fn() -> DetectorModel, paper: &[(&str, f64, f64)]) {
    let rtx = DeviceModel::rtx_2080ti();
    let tx2 = DeviceModel::jetson_tx2();
    let runs = run_roster(build);
    let bm_rtx = rtx.energy_j(&runs[0].workload);
    let bm_tx2 = tx2.energy_j(&runs[0].workload);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let e_rtx = rtx.energy_j(&r.workload);
            let e_tx2 = tx2.energy_j(&r.workload);
            let red_rtx = (1.0 - e_rtx / bm_rtx) * 100.0;
            let red_tx2 = (1.0 - e_tx2 / bm_tx2) * 100.0;
            let (p_rtx, p_tx2) = paper
                .iter()
                .find(|(n, _, _)| *n == r.name)
                .map(|&(_, a, b)| (format!("{a}%"), format!("{b}%")))
                .unwrap_or(("-".into(), "-".into()));
            vec![
                r.name.clone(),
                format!("{e_rtx:.3} J"),
                format!("{red_rtx:.1}%"),
                p_rtx,
                format!("{e_tx2:.3} J"),
                format!("{red_tx2:.1}%"),
                p_tx2,
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 7 ({name}): energy vs BM"),
        &[
            "Method",
            "2080 Ti E",
            "2080 Ti red. (sim)",
            "(paper)",
            "TX2 E",
            "TX2 red. (sim)",
            "(paper)",
        ],
        &rows,
    );
}

fn main() {
    eprintln!("energy series: YOLOv5s...");
    sweep(
        "YOLOv5s",
        || yolov5s(80, 42).expect("yolov5s builds"),
        PAPER_YOLO,
    );
    eprintln!("energy series: RetinaNet...");
    sweep(
        "RetinaNet",
        || retinanet(80, 42).expect("retinanet builds"),
        PAPER_RETINA,
    );
    println!(
        "\nShape check: R-TOSS variants deliver the largest energy\n\
         reductions (roughly 45-60% vs BM), exceeding every baseline,\n\
         as in the paper's Fig. 7."
    );
}
