//! Regenerates **Table 1**: metrics comparison of two-stage vs
//! single-stage detectors (mAP and inference rate).
//!
//! The paper's Table 1 quotes literature numbers (COCO context); our
//! simulated column runs each detector's MAC/byte profile through the
//! RTX 2080 Ti device model to show that the two-stage/single-stage
//! split falls out of the cost model, not just the citations.

use rtoss_bench::print_table;
use rtoss_hw::{DeviceModel, SparsityStructure, Workload};
use rtoss_models::others::comparison_profiles;

fn main() {
    let dev = DeviceModel::rtx_2080ti();
    let rows: Vec<Vec<String>> = comparison_profiles()
        .into_iter()
        .filter(|p| p.paper_map.is_some())
        .map(|p| {
            let w = Workload {
                dense_macs: (p.gmacs * 1e9) as u64,
                effective_macs: (p.gmacs * 1e9) as u64,
                weight_bytes: (p.params_m * 1e6 * 4.0) as u64,
                structure: SparsityStructure::Dense,
            };
            let sim_fps = 1.0 / dev.latency_s(&w);
            vec![
                p.name.to_string(),
                p.detector_type.to_string(),
                format!("{:.1}%", p.paper_map.unwrap_or(0.0)),
                format!("{}", p.paper_fps.unwrap_or(0.0)),
                format!("{sim_fps:.1}"),
            ]
        })
        .collect();
    print_table(
        "Table 1: two-stage vs single-stage detectors",
        &[
            "Name",
            "Type",
            "mAP (paper)",
            "fps (paper)",
            "fps (simulated, 2080 Ti)",
        ],
        &rows,
    );
    println!(
        "\nNote: paper columns are the values Table 1 quotes; the simulated\n\
         column derives fps from each detector's MAC/weight profile through\n\
         the calibrated 2080 Ti model (DESIGN.md section 5, Table 1 row)."
    );
}
