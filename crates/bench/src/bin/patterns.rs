//! Regenerates the **§IV.B pattern derivation**: Eq. 1 candidate
//! counts, the adjacency filter, the L2-frequency selection, and the
//! paper's 21-pattern working set — printed as ASCII kernel glyphs.

use rtoss_bench::print_table;
use rtoss_core::pattern::{
    candidate_count, canonical_pattern_count, canonical_set, generate_adjacent, Pattern,
};

fn glyph(p: Pattern) -> [String; 3] {
    let mut rows = [String::new(), String::new(), String::new()];
    for (r, row) in rows.iter_mut().enumerate() {
        for c in 0..3 {
            row.push(if p.keeps(r, c) { 'x' } else { '.' });
        }
    }
    rows
}

fn print_set(title: &str, patterns: &[Pattern]) {
    println!("\n{title}");
    // Print in ranks of up to 12 glyphs.
    for chunk in patterns.chunks(12) {
        for line in 0..3 {
            let row: Vec<String> = chunk.iter().map(|&p| glyph(p)[line].clone()).collect();
            println!("  {}", row.join("  "));
        }
        println!();
    }
}

fn main() {
    let rows: Vec<Vec<String>> = (1..=8)
        .map(|k| {
            let adjacent = generate_adjacent(k).expect("valid k").len();
            let selected = if matches!(k, 2..=5) {
                format!("{}", canonical_set(k).expect("valid k").len())
            } else {
                "-".into()
            };
            vec![
                format!("{k}"),
                format!("{}", candidate_count(k)),
                format!("{adjacent}"),
                selected,
            ]
        })
        .collect();
    print_table(
        "Pattern derivation (Eq. 1 + adjacency filter + L2 selection)",
        &[
            "k",
            "C(9,k) candidates",
            "adjacent (4-connected)",
            "selected",
        ],
        &rows,
    );

    let two = canonical_set(2).expect("2EP set");
    let three = canonical_set(3).expect("3EP set");
    println!(
        "\nWorking set: {} 2EP + {} 3EP = {} patterns (paper: \"21 pre-defined kernel patterns\")",
        two.len(),
        three.len(),
        canonical_pattern_count()
    );
    print_set("2EP patterns (all 12 adjacent pairs):", two.patterns());
    print_set("3EP patterns (top 9 by L2-frequency):", three.patterns());
}
