//! Serving benchmark: open-loop Poisson load against the dense engine
//! and the R-TOSS 2EP/3EP/4EP pruned engines.
//!
//! Replays the *same* seeded arrival schedule against each variant of a
//! scaled YOLOv5s twin and reports throughput, tail latency, shed rate,
//! and modelled per-request energy — the end-to-end systems view of the
//! paper's claim that semi-structured pruning buys real-time headroom.
//! The schedule is deterministic (seeded ChaCha8); reruns with the same
//! flags reproduce the same arrivals.
//!
//! ```text
//! serve_bench [--qps N] [--requests N] [--seed N] [--workers N]
//!             [--max-batch N] [--deadline-ms N] [--image N]
//!             [--threads N] [--out PATH] [--verify] [--no-plan]
//!             [--burst F] [--trace-out PATH] [--events-out PATH]
//!             [--prom-out PATH]
//! ```
//!
//! `--burst F` (F >= 1) replaces the Poisson arrivals with the seeded
//! on/off Markov-modulated bursty schedule at the same mean rate —
//! `--burst 1` (the default) is plain Poisson.
//!
//! `--threads` sets the intra-op tile-parallelism of every forward pass
//! (defaults to `RTOSS_THREADS` or the machine's core count).
//! `--verify` statically checks each pruned graph and compiled engine
//! with rtoss-verify before serving it, and exits non-zero instead of
//! reporting numbers from an ill-formed model. By default every engine
//! serves through compiled execution plans prewarmed for each
//! micro-batch size; `--no-plan` serves through the per-call graph
//! interpreter instead (the pre-plan baseline, useful for A/B runs).
//!
//! The observability flags turn tracing on programmatically (no
//! `RTOSS_TRACE=1` needed) and export the run: `--trace-out` writes a
//! Chrome/Perfetto `trace.json` covering every served variant,
//! `--events-out` writes the same events as JSONL, and `--prom-out`
//! writes one Prometheus text exposition per variant (the mode name is
//! inserted before the extension, e.g. `serve.prom` → `serve.2EP.prom`).
//! Every export is validated with the rtoss-verify RV04x passes before
//! it is written; an invalid trace or exposition aborts with exit 1.
//!
//! Writes a JSON report (and verifies it round-trips through serde,
//! including the full per-phase latency bucket counts) to
//! `results/serve/serve_bench.json` by default.

use rtoss_bench::{print_table, workload_for};
use rtoss_core::{snapshot_report, EntryPattern, Pruner, RTossPruner};
use rtoss_hw::{DeviceModel, SparsityStructure};
use rtoss_models::yolov5s_twin;
use rtoss_serve::loadgen::{bursty_schedule, poisson_schedule, run_open_loop, LoadSummary};
use rtoss_serve::{BackpressurePolicy, EnergyModelHook, MetricsSnapshot, ServeConfig, Server};
use rtoss_sparse::SparseModel;
use rtoss_tensor::{init, ExecConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// One served variant's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ModeRow {
    /// Variant name: "dense", "2EP", "3EP", "4EP".
    mode: String,
    /// Conv-weight compression of the compiled engine.
    compression: f64,
    /// Client-side load-generator summary.
    summary: LoadSummary,
    /// Server-side metrics snapshot.
    metrics: MetricsSnapshot,
}

/// The full benchmark report written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServeBenchReport {
    /// Mean offered load, requests/second.
    qps: f64,
    /// Requests per variant.
    requests: u64,
    /// Schedule / weight seed.
    seed: u64,
    /// Per-request deadline, milliseconds.
    deadline_ms: u64,
    /// Worker threads.
    workers: u64,
    /// Micro-batch cap.
    max_batch: u64,
    /// Input image side, pixels.
    image: u64,
    /// Intra-op threads per forward pass.
    threads: u64,
    /// Whether engines served through compiled execution plans
    /// (`false` = `--no-plan` interpreter baseline).
    plan: bool,
    /// Arrival burstiness factor (1 = plain Poisson; >1 = on/off
    /// Markov-modulated arrivals at the same mean rate).
    burst: f64,
    /// One row per served variant.
    rows: Vec<ModeRow>,
}

struct Args {
    qps: f64,
    requests: usize,
    seed: u64,
    workers: usize,
    max_batch: usize,
    deadline_ms: u64,
    image: usize,
    threads: usize,
    out: String,
    verify: bool,
    plan: bool,
    burst: f64,
    trace_out: Option<String>,
    events_out: Option<String>,
    prom_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        qps: 200.0,
        requests: 120,
        seed: 42,
        workers: 2,
        max_batch: 4,
        deadline_ms: 250,
        image: 32,
        threads: rtoss_tensor::exec::default_threads(),
        out: "results/serve/serve_bench.json".to_string(),
        verify: false,
        plan: true,
        burst: 1.0,
        trace_out: None,
        events_out: None,
        prom_out: None,
    };
    fn usage_error(msg: &str) -> ! {
        eprintln!("serve_bench: {msg}");
        eprintln!(
            "usage: serve_bench [--qps N] [--requests N] [--seed N] [--workers N] \
             [--max-batch N] [--deadline-ms N] [--image N] [--threads N] [--out PATH] \
             [--verify] [--no-plan] [--burst F] [--trace-out PATH] [--events-out PATH] \
             [--prom-out PATH]"
        );
        std::process::exit(2);
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} takes a number, got {raw:?}")))
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--qps" => args.qps = number(&flag, &value()),
            "--requests" => args.requests = number(&flag, &value()),
            "--seed" => args.seed = number(&flag, &value()),
            "--workers" => args.workers = number(&flag, &value()),
            "--max-batch" => args.max_batch = number(&flag, &value()),
            "--deadline-ms" => args.deadline_ms = number(&flag, &value()),
            "--image" => args.image = number(&flag, &value()),
            "--threads" => args.threads = number(&flag, &value()),
            "--out" => args.out = value(),
            "--verify" => args.verify = true,
            "--no-plan" => args.plan = false,
            "--burst" => args.burst = number(&flag, &value()),
            "--trace-out" => args.trace_out = Some(value()),
            "--events-out" => args.events_out = Some(value()),
            "--prom-out" => args.prom_out = Some(value()),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

fn serve_variant(mode: &str, entry: Option<EntryPattern>, args: &Args) -> ModeRow {
    // Same seed for every variant: identical weights before pruning.
    let mut model = yolov5s_twin(8, 2, args.seed).expect("model builds");
    let (report, structure) = match entry {
        Some(e) => (
            RTossPruner::new(e)
                .prune_graph(&mut model.graph)
                .expect("prunes"),
            SparsityStructure::SemiStructured,
        ),
        None => (
            snapshot_report(&model.graph, "BM"),
            SparsityStructure::Dense,
        ),
    };
    let workload = workload_for(&model, &report, structure);
    let engine = Arc::new(
        SparseModel::compile(&model.graph)
            .expect("compiles")
            .with_planning(args.plan),
    );
    if args.verify {
        // Refuse to serve (and time) an ill-formed artifact: a broken
        // mask or sparse layer would report meaningless latencies.
        let mut pre = rtoss_verify::check_model(&model.graph, &[1, 3, args.image, args.image]);
        pre.extend(rtoss_verify::check_sparse_model(&engine).diagnostics);
        if pre.has_errors() {
            eprint!("{}", pre.render());
            eprintln!("serve_bench: {mode}: refusing to serve an ill-formed model");
            std::process::exit(1);
        }
        eprintln!("serve_bench: {mode}: pre-flight verify clean");
    }
    let compression = engine.compression_ratio();

    let server = Server::start(
        engine,
        ServeConfig {
            workers: args.workers,
            queue_capacity: 64,
            policy: BackpressurePolicy::ShedExpired,
            max_batch: args.max_batch,
            batch_timeout: Duration::from_millis(2),
            energy: Some(EnergyModelHook {
                device: DeviceModel::rtx_2080ti(),
                workload,
            }),
            exec: ExecConfig::with_threads(args.threads),
            // Compile plans for every micro-batch size up front so the
            // workers never plan on the request path (no-op under
            // --no-plan, where the engine interprets per call).
            prewarm: Some(vec![1, 3, args.image, args.image]),
        },
    );

    let schedule = if args.burst > 1.0 {
        bursty_schedule(args.seed, args.qps, args.requests, args.burst)
    } else {
        poisson_schedule(args.seed, args.qps, args.requests)
    };
    let side = args.image;
    let seed = args.seed;
    let summary = run_open_loop(
        &server,
        &schedule,
        Some(Duration::from_millis(args.deadline_ms)),
        |i| {
            init::uniform(
                &mut init::rng(seed ^ i as u64),
                &[1, 3, side, side],
                0.0,
                1.0,
            )
        },
    );
    let metrics = server.metrics().snapshot();
    server.shutdown();
    ModeRow {
        mode: mode.to_string(),
        compression,
        summary,
        metrics,
    }
}

/// Writes `text` to `path`, creating parent directories.
fn write_output(path: &str, text: &str) {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        std::fs::create_dir_all(dir).expect("output dir");
    }
    std::fs::write(p, text).expect("write output");
}

/// Inserts `mode` before the extension: `serve.prom` → `serve.2EP.prom`.
fn mode_path(path: &str, mode: &str) -> String {
    let p = std::path::Path::new(path);
    match (p.file_stem(), p.extension()) {
        (Some(stem), Some(ext)) => p
            .with_file_name(format!(
                "{}.{mode}.{}",
                stem.to_string_lossy(),
                ext.to_string_lossy()
            ))
            .to_string_lossy()
            .into_owned(),
        _ => format!("{path}.{mode}"),
    }
}

fn main() {
    let args = parse_args();
    let tracing = args.trace_out.is_some() || args.events_out.is_some();
    if tracing {
        rtoss_obs::set_enabled(true);
        rtoss_obs::reset();
    }
    println!(
        "serve_bench: YOLOv5s twin, {} req @ {} qps, seed {}, {} workers, max batch {}, \
         deadline {} ms, {} intra-op threads\n",
        args.requests,
        args.qps,
        args.seed,
        args.workers,
        args.max_batch,
        args.deadline_ms,
        args.threads
    );
    if !args.plan {
        println!("(--no-plan: serving through the per-call interpreter, no compiled plans)\n");
    }

    let variants: [(&str, Option<EntryPattern>); 4] = [
        ("dense", None),
        ("2EP", Some(EntryPattern::Two)),
        ("3EP", Some(EntryPattern::Three)),
        ("4EP", Some(EntryPattern::Four)),
    ];
    let rows: Vec<ModeRow> = variants
        .iter()
        .map(|&(mode, entry)| serve_variant(mode, entry, &args))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.2}x", r.compression),
                format!("{:.1}", r.summary.throughput_rps),
                format!("{:.2}", r.summary.p50_ms),
                format!("{:.2}", r.summary.p99_ms),
                format!("{:.1}%", 100.0 * r.summary.shed_rate()),
                format!("{:.2}", r.metrics.mean_batch_size),
                format!(
                    "{:.1}",
                    1e3 * r.metrics.energy_j / r.metrics.completed.max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        "Serving under open-loop Poisson load (dense vs R-TOSS pruned)",
        &[
            "mode", "compress", "rps", "p50 ms", "p99 ms", "shed", "batch", "mJ/req",
        ],
        &table,
    );

    let report = ServeBenchReport {
        qps: args.qps,
        requests: args.requests as u64,
        seed: args.seed,
        deadline_ms: args.deadline_ms,
        workers: args.workers as u64,
        max_batch: args.max_batch as u64,
        image: args.image as u64,
        threads: args.threads as u64,
        plan: args.plan,
        burst: args.burst,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: ServeBenchReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report, "serde round-trip must be lossless");
    write_output(&args.out, &json);
    println!(
        "\nreport: {} ({} bytes, serde round-trip verified)",
        args.out,
        json.len()
    );

    // Observability exports: validate with the rtoss-verify RV04x
    // passes first, refuse to write anything ill-formed.
    let mut bad = false;
    if let Some(prom_out) = &args.prom_out {
        for row in &report.rows {
            let text = row.metrics.to_prometheus();
            let check = rtoss_verify::check_prometheus_snapshot(&row.mode, &text, &row.metrics);
            if check.has_errors() {
                eprint!("{}", check.render());
                bad = true;
                continue;
            }
            let path = mode_path(prom_out, &row.mode);
            write_output(&path, &text);
            println!("prometheus: {path} (RV043/RV044 clean)");
        }
    }
    if tracing {
        rtoss_obs::set_enabled(false);
        let trace = rtoss_obs::drain();
        if trace.dropped > 0 {
            eprintln!(
                "serve_bench: warning: {} events dropped (per-thread buffer cap)",
                trace.dropped
            );
        }
        let chrome = trace.to_chrome_json();
        // check_trace_json re-parses the export, so this validates both
        // the recorded trace and the serialization of it.
        let check = rtoss_verify::check_trace_json("serve_bench trace", &chrome);
        if check.has_errors() {
            eprint!("{}", check.render());
            bad = true;
        } else {
            if let Some(path) = &args.trace_out {
                write_output(path, &chrome);
                println!(
                    "trace: {path} ({} events, RV040-RV042 clean)",
                    trace.events.len()
                );
            }
            if let Some(path) = &args.events_out {
                write_output(path, &trace.to_jsonl());
                println!("events: {path}");
            }
        }
    }
    if bad {
        eprintln!("serve_bench: observability exports failed verification");
        std::process::exit(1);
    }
}
