//! Plan-vs-interpreter benchmark: what does compile-before-run buy?
//!
//! Times every (twin, pruning) configuration through the per-call
//! graph interpreter and through the compiled [`ExecutionPlan`]
//! (epilogue fusion + arena reuse), on the same input, and reports the
//! latency delta next to the plan's memory accounting: arena bytes
//! (the plan's actual activation footprint), peak live bytes (the
//! liveness lower bound), and retained bytes (what the interpreter
//! holds when it keeps every activation until the forward returns).
//!
//! ```text
//! plan_bench [--reps N] [--image N] [--threads N] [--out-dir PATH] [--gate-par]
//! ```
//!
//! Each row also times the *parallel* plan — the same compiled plan at
//! graph-level width `--threads` on the persistent worker pool —
//! against the serial plan. `--gate-par` exits non-zero when the
//! parallel plan is slower than the serial plan (beyond a 5% jitter
//! allowance) — but only when the host reports more than one core and
//! `--threads > 1`; a single-core host can only measure scheduler
//! overhead, not scaling.
//!
//! Writes `results/plan/plan_bench.txt` + `results/plan/plan_bench.json`
//! by default. All paths are bit-identical by construction (proved
//! by rtoss-verify RV052 and the sparse crate's property tests), so the
//! deltas here are pure execution-strategy effects.
//!
//! [`ExecutionPlan`]: rtoss_sparse::ExecutionPlan

use rtoss_bench::print_table;
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_sparse::SparseModel;
use rtoss_tensor::{init, ExecConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One (model, pruning) configuration's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlanRow {
    /// Twin name: "yolov5s" or "retinanet".
    model: String,
    /// Variant name: "dense", "2EP", "3EP", "4EP".
    mode: String,
    /// Conv-weight compression of the compiled engine.
    compression: f64,
    /// Interpreter forward, best-of-reps milliseconds per frame.
    interp_ms: f64,
    /// Serial planned forward (fusion + arena, width 1), best-of-reps
    /// milliseconds per frame.
    plan_ms: f64,
    /// Parallel planned forward (graph-level width = `threads` on the
    /// persistent worker pool), best-of-reps milliseconds per frame.
    par_ms: f64,
    /// Arena bytes the plan actually allocates for activations.
    arena_bytes: u64,
    /// Liveness lower bound on activation bytes.
    peak_live_bytes: u64,
    /// Activation bytes the interpreter retains (every step's output).
    retained_bytes: u64,
    /// Conv steps per selected kernel format, from the plan's
    /// per-layer format choices (RV091-checked).
    formats: Vec<FormatCount>,
}

/// Count of conv steps that selected one kernel format, sorted by
/// format name for stable output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FormatCount {
    /// Kernel format label: `pattern`, `coo`, or `dense`.
    format: String,
    /// Conv steps in the plan that selected it.
    steps: u64,
}

impl PlanRow {
    fn speedup(&self) -> f64 {
        self.interp_ms / self.plan_ms
    }
    /// Parallel-plan speedup over the serial plan (>1 = parallel wins).
    fn par_scaling(&self) -> f64 {
        self.plan_ms / self.par_ms
    }
    fn memory_saving(&self) -> f64 {
        1.0 - self.arena_bytes as f64 / self.retained_bytes as f64
    }
}

/// The full report written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlanBenchReport {
    /// Input image side, pixels.
    image: u64,
    /// Timed repetitions per cell.
    reps: u64,
    /// Threads: interpreter intra-op tiling width and planned-path
    /// graph-level width.
    threads: u64,
    /// Cores the host actually has (`available_parallelism`) — the
    /// parallel-plan column only means scaling when this is > 1.
    host_cores: u64,
    /// One row per (model, pruning) configuration.
    rows: Vec<PlanRow>,
}

struct Args {
    reps: usize,
    image: usize,
    threads: usize,
    out_dir: String,
    gate_par: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        reps: 10,
        image: 64,
        threads: rtoss_tensor::exec::default_threads(),
        out_dir: "results/plan".to_string(),
        gate_par: false,
    };
    fn usage_error(msg: &str) -> ! {
        eprintln!("plan_bench: {msg}");
        eprintln!(
            "usage: plan_bench [--reps N] [--image N] [--threads N] [--out-dir PATH] [--gate-par]"
        );
        std::process::exit(2);
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} takes a number, got {raw:?}")))
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--reps" => args.reps = number(&flag, &value()),
            "--image" => args.image = number(&flag, &value()),
            "--threads" => args.threads = number(&flag, &value()),
            "--out-dir" => args.out_dir = value(),
            "--gate-par" => args.gate_par = true,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

/// One timed frame of `f`, milliseconds.
fn frame_ms(f: &mut impl FnMut() -> Vec<rtoss_tensor::Tensor>) -> f64 {
    let start = Instant::now();
    let y = f();
    let ms = 1e3 * start.elapsed().as_secs_f64();
    std::hint::black_box(y[0].as_slice()[0]);
    ms
}

/// Times `reps` frames of each path *interleaved* (one serial-plan
/// frame, one parallel-plan frame, one interpreted frame, repeat) and
/// reports the per-path minimum — robust against clock-speed drift and
/// co-tenant noise, which a back-to-back block measurement folds
/// entirely into one path.
fn time_trio_ms(
    reps: usize,
    mut serial_plan: impl FnMut() -> Vec<rtoss_tensor::Tensor>,
    mut par_plan: impl FnMut() -> Vec<rtoss_tensor::Tensor>,
    mut interp: impl FnMut() -> Vec<rtoss_tensor::Tensor>,
) -> (f64, f64, f64) {
    std::hint::black_box(serial_plan()); // warm-up
    std::hint::black_box(par_plan());
    std::hint::black_box(interp());
    let (mut plan_ms, mut par_ms, mut interp_ms) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        plan_ms = plan_ms.min(frame_ms(&mut serial_plan));
        par_ms = par_ms.min(frame_ms(&mut par_plan));
        interp_ms = interp_ms.min(frame_ms(&mut interp));
    }
    (plan_ms, par_ms, interp_ms)
}

fn measure(model: &str, mode: &str, entry: Option<EntryPattern>, args: &Args) -> PlanRow {
    let mut m = match model {
        "yolov5s" => rtoss_models::yolov5s_twin(8, 2, 42),
        "retinanet" => rtoss_models::retinanet_twin(8, 2, 42),
        _ => unreachable!("model names are fixed in main"),
    }
    .expect("twin builds");
    if let Some(e) = entry {
        RTossPruner::new(e)
            .prune_graph(&mut m.graph)
            .expect("prunes");
    }
    let engine = SparseModel::compile(&m.graph).expect("compiles");
    let serial = ExecConfig::serial();
    let exec = ExecConfig::with_threads(args.threads);
    let shape = [1, 3, args.image, args.image];
    let x = init::uniform(&mut init::rng(10), &shape, 0.0, 1.0);

    // Plan first so compilation happens outside all timed regions.
    let summary = engine.plan_summary(&shape).expect("plans");
    let (plan_ms, par_ms, interp_ms) = time_trio_ms(
        args.reps,
        || engine.forward_with(&x, &serial).expect("serial plan"),
        || engine.forward_with(&x, &exec).expect("parallel plan"),
        || {
            engine
                .forward_interpreted_with(&x, &exec)
                .expect("interpreted forward")
        },
    );

    let mut counts = std::collections::BTreeMap::new();
    for step in &summary.steps {
        if step.format != "-" {
            *counts.entry(step.format.to_string()).or_insert(0u64) += 1;
        }
    }
    let formats = counts
        .into_iter()
        .map(|(format, steps)| FormatCount { format, steps })
        .collect();

    PlanRow {
        model: model.to_string(),
        mode: mode.to_string(),
        compression: engine.compression_ratio(),
        interp_ms,
        plan_ms,
        par_ms,
        arena_bytes: summary.arena_bytes,
        peak_live_bytes: summary.peak_live_bytes,
        retained_bytes: summary.retained_bytes,
        formats,
    }
}

fn main() {
    let args = parse_args();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "plan_bench: {s}x{s} input, {r} reps, {t} threads, host has {host_cores} core(s)\n",
        s = args.image,
        r = args.reps,
        t = args.threads
    );

    let variants: [(&str, Option<EntryPattern>); 4] = [
        ("dense", None),
        ("4EP", Some(EntryPattern::Four)),
        ("3EP", Some(EntryPattern::Three)),
        ("2EP", Some(EntryPattern::Two)),
    ];
    let mut rows = Vec::new();
    for model in ["yolov5s", "retinanet"] {
        for &(mode, entry) in &variants {
            eprintln!("plan_bench: measuring {model} {mode}...");
            rows.push(measure(model, mode, entry, &args));
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} {}", r.model, r.mode),
                format!("{:.2}x", r.compression),
                format!("{:.2}", r.interp_ms),
                format!("{:.2}", r.plan_ms),
                format!("{:.2}", r.par_ms),
                format!("{:.2}x", r.par_scaling()),
                format!("{:.2}x", r.speedup()),
                format!("{}", r.arena_bytes / 1024),
                format!("{}", r.peak_live_bytes / 1024),
                format!("{}", r.retained_bytes / 1024),
                format!("{:.0}%", 100.0 * r.memory_saving()),
                r.formats
                    .iter()
                    .map(|f| format!("{}:{}", f.format, f.steps))
                    .collect::<Vec<_>>()
                    .join(" "),
            ]
        })
        .collect();
    let headers = [
        "config",
        "compress",
        "interp ms",
        "plan ms",
        "par ms",
        "par x",
        "speedup",
        "arena KiB",
        "live KiB",
        "interp KiB",
        "mem saved",
        "formats",
    ];
    let title = "Compile-before-run: planned (fused, arena) vs per-call interpreter";
    print_table(title, &headers, &table);

    let report = PlanBenchReport {
        image: args.image as u64,
        reps: args.reps as u64,
        threads: args.threads as u64,
        host_cores: host_cores as u64,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: PlanBenchReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report, "serde round-trip must be lossless");

    std::fs::create_dir_all(&args.out_dir).expect("output dir");
    let json_path = format!("{}/plan_bench.json", args.out_dir);
    std::fs::write(&json_path, &json).expect("write json report");
    let mut text = format!("{title}\n\n{}\n", headers.join(" | "));
    for row in &table {
        text.push_str(&row.join(" | "));
        text.push('\n');
    }
    text.push_str(&format!(
        "\nplan = serial plan (width 1); par = the same plan at graph-level width {t}\n\
         on the persistent worker pool; par x = plan ms / par ms (host: {host_cores} core(s)).\n\
         arena = activation bytes the plan allocates (slots reused after last consumer);\n\
         live = liveness lower bound; interp = bytes the interpreter retains per forward.\n\
         Outputs are bit-identical across all paths (rtoss-verify RV052).\n",
        t = args.threads
    ));
    let txt_path = format!("{}/plan_bench.txt", args.out_dir);
    std::fs::write(&txt_path, &text).expect("write text report");
    println!("\nreports: {txt_path}, {json_path} (serde round-trip verified)");

    if args.gate_par {
        if host_cores > 1 && args.threads > 1 {
            // The interleaved min-of-reps timer is stable, but gate with
            // a 5% jitter allowance so a noisy CI neighbour cannot flip
            // a genuinely-parallel run into a failure.
            let slow: Vec<&PlanRow> = report
                .rows
                .iter()
                .filter(|r| r.par_ms > r.plan_ms * 1.05)
                .collect();
            if slow.is_empty() {
                println!(
                    "gate-par: parallel plan >= serial plan on all {} rows",
                    report.rows.len()
                );
            } else {
                for r in &slow {
                    eprintln!(
                        "gate-par: {} {} parallel plan {:.2} ms slower than serial {:.2} ms",
                        r.model, r.mode, r.par_ms, r.plan_ms
                    );
                }
                eprintln!("gate-par: FAILED on {} row(s)", slow.len());
                std::process::exit(1);
            }
        } else {
            println!(
                "gate-par: skipped (host has {host_cores} core(s), threads={}) — \
                 a single-core host only measures scheduler overhead, not scaling",
                args.threads
            );
        }
    }
}
