//! Regenerates **Fig. 6**: inference speedups of every framework over
//! the Base Model, on the RTX 2080 Ti and the Jetson TX2 — plus a
//! fully *measured* CPU series from this machine's sparse executors.
//!
//! The device-model series runs each method's measured sparsity through
//! the calibrated latency models. The CPU series times real dense /
//! pattern-grouped / unstructured convolutions (`rtoss-sparse`) on a
//! representative 3×3 layer, demonstrating the paper's §II.B claim that
//! semi-structured sparsity converts into wall-clock speedup while
//! unstructured sparsity does not.
//!
//! ```text
//! fig6 [--threads N] [--verify] [--no-plan]
//! ```
//!
//! `--threads` sets the intra-op tile-parallelism of the measured CPU
//! and model series (defaults to `RTOSS_THREADS` or the core count).
//! `--verify` runs the rtoss-verify static checks over every pruned
//! artifact about to be timed and refuses to benchmark (exit 1) if any
//! invariant is violated — a broken model would produce a fast but
//! meaningless number. `--no-plan` times the end-to-end model series
//! through the per-call graph interpreter instead of the compiled
//! execution plan (the pre-plan baseline).

use rtoss_bench::{print_table, run_roster};
use rtoss_core::baselines::MagnitudePruner;
use rtoss_core::pattern::canonical_set;
use rtoss_core::prune3x3::prune_3x3_weights;
use rtoss_hw::DeviceModel;
use rtoss_models::{retinanet, yolov5s, DetectorModel};
use rtoss_sparse::runtime::measure_layer_with;
use rtoss_tensor::{init, ExecConfig};

/// Paper Fig. 6 approximate speedups vs BM: (method, 2080 Ti, TX2).
const PAPER_YOLO: &[(&str, f64, f64)] = &[
    ("PD", 1.74, 2.06),
    ("NMS", 1.2, 1.3),
    ("NS", 1.4, 1.5),
    ("PF", 1.4, 1.5),
    ("NP", 1.3, 1.4),
    ("R-TOSS (3EP)", 1.86, 2.12),
    ("R-TOSS (2EP)", 1.97, 2.15),
];
const PAPER_RETINA: &[(&str, f64, f64)] = &[
    ("PD", 1.4, 1.5),
    ("NMS", 1.2, 1.2),
    ("NS", 1.3, 1.3),
    ("PF", 1.3, 1.3),
    ("NP", 1.25, 1.3),
    ("R-TOSS (3EP)", 1.87, 1.56),
    ("R-TOSS (2EP)", 2.1, 1.87),
];

fn sweep(name: &str, build: impl Fn() -> DetectorModel, paper: &[(&str, f64, f64)]) {
    let rtx = DeviceModel::rtx_2080ti();
    let tx2 = DeviceModel::jetson_tx2();
    let runs = run_roster(build);
    let bm_rtx = rtx.latency_ms(&runs[0].workload);
    let bm_tx2 = tx2.latency_ms(&runs[0].workload);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let s_rtx = bm_rtx / rtx.latency_ms(&r.workload);
            let s_tx2 = bm_tx2 / tx2.latency_ms(&r.workload);
            let (p_rtx, p_tx2) = paper
                .iter()
                .find(|(n, _, _)| *n == r.name)
                .map(|&(_, a, b)| (format!("{a}"), format!("{b}")))
                .unwrap_or(("1.0".into(), "1.0".into()));
            vec![
                r.name.clone(),
                format!("{s_rtx:.2}x"),
                p_rtx,
                format!("{s_tx2:.2}x"),
                p_tx2,
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 6 ({name}): speedup vs BM"),
        &[
            "Method",
            "2080 Ti (sim)",
            "2080 Ti (paper)",
            "TX2 (sim)",
            "TX2 (paper)",
        ],
        &rows,
    );
}

/// Measured CPU series: one representative 3×3 layer, three executors.
fn measured_cpu_series(exec: &ExecConfig) {
    let x = init::uniform(&mut init::rng(7), &[1, 64, 40, 40], -1.0, 1.0);
    let mut rows = Vec::new();
    for (label, k) in [("R-TOSS (2EP)", 2usize), ("R-TOSS (3EP)", 3), ("PD/4EP", 4)] {
        let mut w = init::uniform(&mut init::rng(8), &[64, 64, 3, 3], -1.0, 1.0);
        prune_3x3_weights(&mut w, &canonical_set(k).expect("pattern set")).expect("prune succeeds");
        let t = measure_layer_with(&x, &w, 1, 1, 3, exec).expect("measurement succeeds");
        rows.push(vec![
            label.to_string(),
            format!("{:.2}x", t.pattern_speedup()),
            format!("{:.2}x", t.unstructured_speedup()),
        ]);
    }
    // NMS-style unstructured mask at 2EP-equivalent sparsity.
    {
        let w = init::uniform(&mut init::rng(9), &[64, 64, 3, 3], -1.0, 1.0);
        let p = MagnitudePruner::new(7.0 / 9.0).expect("valid sparsity");
        let mask = {
            // Reuse the pruner's criterion through a throwaway graph.
            let mut g = rtoss_nn::Graph::new();
            let xin = g.add_input("x");
            let conv = rtoss_nn::layers::Conv2d::from_weight(w.clone(), 1, 1);
            let id = g.add_layer("c", Box::new(conv), xin).expect("graph builds");
            g.set_outputs(vec![id]).expect("outputs set");
            use rtoss_core::Pruner;
            p.prune_graph(&mut g).expect("prune succeeds");
            g.conv(id).expect("conv").weight().value.clone()
        };
        let t = measure_layer_with(&x, &mask, 1, 1, 3, exec).expect("measurement succeeds");
        rows.push(vec![
            "NMS (unstructured, same sparsity as 2EP)".to_string(),
            format!("{:.2}x", t.pattern_speedup()),
            format!("{:.2}x", t.unstructured_speedup()),
        ]);
    }
    print_table(
        "Fig. 6 (measured on this CPU): 64x64x3x3 layer, 40x40 input",
        &[
            "Pruning",
            "pattern-grouped executor",
            "per-weight COO executor",
        ],
        &rows,
    );
}

/// End-to-end measured series: the compiled sparse engine on the
/// unpruned vs pruned twin (same executor, so the speedup isolates the
/// work the pruning actually removes — the paper's BM-relative framing).
fn measured_model_series(exec: &ExecConfig, planning: bool) {
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    use rtoss_sparse::runtime::measure_model_planning;
    let x = init::uniform(&mut init::rng(10), &[1, 3, 64, 64], 0.0, 1.0);
    let time_engine = |entry: Option<EntryPattern>| -> (f64, f64) {
        let mut m = rtoss_models::yolov5s_twin(16, 3, 42).expect("twin builds");
        if let Some(e) = entry {
            RTossPruner::new(e)
                .prune_graph(&mut m.graph)
                .expect("pruning succeeds");
        }
        let t =
            measure_model_planning(&mut m.graph, &x, 5, exec, planning).expect("timing succeeds");
        (t.dense_s, t.sparse_s)
    };
    let (_, bm_engine) = time_engine(None);
    let mut rows = vec![vec![
        "BM".to_string(),
        format!("{:.2} ms", bm_engine * 1e3),
        "1.00x".to_string(),
    ]];
    for entry in [EntryPattern::Three, EntryPattern::Two] {
        let (_, t) = time_engine(Some(entry));
        rows.push(vec![
            format!("R-TOSS ({})", entry.label()),
            format!("{:.2} ms", t * 1e3),
            format!("{:.2}x", bm_engine / t),
        ]);
    }
    let title = if planning {
        "Fig. 6 (measured end-to-end): YOLOv5s twin through the sparse engine"
    } else {
        "Fig. 6 (measured end-to-end, --no-plan interpreter): YOLOv5s twin through the sparse engine"
    };
    print_table(
        title,
        &["Pruning", "engine latency", "speedup vs BM"],
        &rows,
    );
}

fn parse_args() -> (ExecConfig, bool, bool) {
    let mut exec = ExecConfig::default();
    let mut verify = false;
    let mut planning = true;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => {
                let raw = it.next().unwrap_or_else(|| {
                    eprintln!("fig6: missing value for --threads");
                    std::process::exit(2);
                });
                let n: usize = raw.parse().unwrap_or_else(|_| {
                    eprintln!("fig6: --threads takes a number, got {raw:?}");
                    std::process::exit(2);
                });
                exec = ExecConfig::with_threads(n);
            }
            "--verify" => verify = true,
            "--no-plan" => planning = false,
            other => {
                eprintln!(
                    "fig6: unknown flag {other}\nusage: fig6 [--threads N] [--verify] [--no-plan]"
                );
                std::process::exit(2);
            }
        }
    }
    (exec, verify, planning)
}

/// Pre-flight: statically verify every artifact this harness is about
/// to time. Refuses to benchmark ill-formed models (exit 1).
fn preflight(exec: &ExecConfig) {
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    let mut report = rtoss_verify::Report::new();
    // The end-to-end model series: pruned twins through the sparse engine.
    for entry in [EntryPattern::Three, EntryPattern::Two] {
        let mut m = rtoss_models::yolov5s_twin(16, 3, 42).expect("twin builds");
        RTossPruner::new(entry)
            .prune_graph(&mut m.graph)
            .expect("pruning succeeds");
        report.extend(rtoss_verify::check_model(&m.graph, &[1, 3, 64, 64]).diagnostics);
        let engine = rtoss_sparse::SparseModel::compile(&m.graph).expect("compiles");
        report.extend(rtoss_verify::check_sparse_model(&engine).diagnostics);
    }
    // The CPU layer series: pruned 64x64x3x3 weights in compressed form.
    for k in [2usize, 3, 4] {
        let mut w = init::uniform(&mut init::rng(8), &[64, 64, 3, 3], -1.0, 1.0);
        prune_3x3_weights(&mut w, &canonical_set(k).expect("pattern set")).expect("prune succeeds");
        let pc = rtoss_sparse::PatternCompressedConv::from_dense(&w, 1, 1).expect("compresses");
        report.extend(rtoss_verify::check_pattern_layer(
            &format!("{k}EP layer"),
            &pc,
        ));
    }
    // The executor the timed runs will deal tiles through.
    report.extend(rtoss_verify::check_tile_partition(64, exec.threads.max(1)).diagnostics);
    if report.has_errors() {
        eprint!("{}", report.render());
        eprintln!("fig6: refusing to benchmark ill-formed artifacts");
        std::process::exit(1);
    }
    eprintln!(
        "pre-flight verify: clean ({} findings)",
        report.diagnostics.len()
    );
}

fn main() {
    let (exec, verify, planning) = parse_args();
    if verify {
        preflight(&exec);
    }
    eprintln!("device-model series: YOLOv5s...");
    sweep(
        "YOLOv5s",
        || yolov5s(80, 42).expect("yolov5s builds"),
        PAPER_YOLO,
    );
    eprintln!("device-model series: RetinaNet...");
    sweep(
        "RetinaNet",
        || retinanet(80, 42).expect("retinanet builds"),
        PAPER_RETINA,
    );
    eprintln!("measured CPU series ({} threads)...", exec.threads);
    measured_cpu_series(&exec);
    eprintln!("measured end-to-end model series...");
    measured_model_series(&exec, planning);
    println!(
        "\nShape check: R-TOSS (2EP) is the fastest on both platforms, as in\n\
         the paper. The measured CPU series confirms that pattern pruning's\n\
         skipped weights convert into real wall-clock speedup (approaching\n\
         the k/9 bound at 2EP), with pattern grouping ahead of the per-weight\n\
         COO path; the GPU-scale locality penalty of unstructured sparsity\n\
         is modelled by the device models' realization factors (rtoss-hw)."
    );
}
