//! Per-layer profile report over the sparse executors.
//!
//! Traces repeated forward passes of the pruned (2EP / 3EP) and dense
//! scaled YOLOv5s and RetinaNet twins, attributes self-time to each
//! `layer:*` span with [`rtoss_obs::Profile`], and renders the top-N
//! layers per configuration — the "where does the millisecond go"
//! table that tells you which layers the pruning actually sped up.
//!
//! ```text
//! obs_profile [--image N] [--threads N] [--repeats N] [--top N] [--out PATH]
//!             [--no-plan]
//! ```
//!
//! By default the engines run through compiled execution plans, and the
//! per-layer table carries two extra columns joined from the plan:
//! the epilogue fusion applied to each step (`affine+act` marks a conv
//! that absorbed its BN and activation) and the arena slot holding its
//! output. `--no-plan` profiles the per-call interpreter instead (no
//! plan columns). Writes the combined report to
//! `results/obs/profile.txt` by default.

use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_obs as obs;
use rtoss_sparse::SparseModel;
use rtoss_tensor::{init, ExecConfig};
use std::collections::HashMap;
use std::fmt::Write as _;

struct Args {
    image: usize,
    threads: usize,
    repeats: usize,
    top: usize,
    out: String,
    plan: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        image: 32,
        threads: rtoss_tensor::exec::default_threads(),
        repeats: 5,
        top: 12,
        out: "results/obs/profile.txt".to_string(),
        plan: true,
    };
    fn usage_error(msg: &str) -> ! {
        eprintln!("obs_profile: {msg}");
        eprintln!(
            "usage: obs_profile [--image N] [--threads N] [--repeats N] [--top N] [--out PATH] \
             [--no-plan]"
        );
        std::process::exit(2);
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} takes a number, got {raw:?}")))
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--image" => args.image = number(&flag, &value()),
            "--threads" => args.threads = number(&flag, &value()),
            "--repeats" => args.repeats = number(&flag, &value()),
            "--top" => args.top = number(&flag, &value()),
            "--out" => args.out = value(),
            "--no-plan" => args.plan = false,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

/// Compiles one (model, pruning) configuration into a sparse engine.
fn build(model: &str, entry: Option<EntryPattern>, seed: u64) -> SparseModel {
    let mut m = match model {
        "yolov5s" => rtoss_models::yolov5s_twin(8, 2, seed),
        "retinanet" => rtoss_models::retinanet_twin(8, 2, seed),
        _ => unreachable!("model names are fixed below"),
    }
    .expect("twin builds");
    if let Some(e) = entry {
        RTossPruner::new(e)
            .prune_graph(&mut m.graph)
            .expect("prunes");
    }
    SparseModel::compile(&m.graph).expect("compiles")
}

/// Per-step facts joined from the compiled plan into the layer table.
struct PlanCols {
    fused: &'static str,
    slot: usize,
    /// Conv format the autotuner selected; `-` for non-conv steps.
    format: &'static str,
    /// The winning candidate's measured min-of-reps time; `None` when
    /// the choice was heuristic or forced (no measurement ran).
    tuned_ns: Option<u64>,
}

/// Per-layer table with the plan join: fusion kind, arena slot, and the
/// autotuned conv format per step, looked up by graph node name
/// (absorbed BN/activation nodes execute inside their conv's epilogue
/// and so have no row of their own). `plan` is `None` under
/// `--no-plan`.
fn render_layers(
    layers: &[&obs::SpanStat],
    top: usize,
    repeats: usize,
    plan: Option<&HashMap<String, PlanCols>>,
) -> String {
    let shown = if top == 0 {
        layers.len()
    } else {
        top.min(layers.len())
    };
    let total_self: u64 = layers.iter().map(|s| s.self_ns).sum();
    let name_w = layers[..shown]
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>7}  {:>12}  {:>6}  {:>10}  {:>5}  {:>7}  {:>9}",
        "name", "count", "self(ms/it)", "self%", "fused", "slot", "format", "tuned(us)"
    );
    for s in &layers[..shown] {
        let pct = if total_self == 0 {
            0.0
        } else {
            100.0 * s.self_ns as f64 / total_self as f64
        };
        let cols = plan.and_then(|p| p.get(s.name.trim_start_matches("layer:")));
        let (fused, slot, fmt, tuned) = match cols {
            Some(c) => (
                c.fused,
                c.slot.to_string(),
                c.format,
                c.tuned_ns
                    .map_or("-".to_string(), |ns| format!("{:.1}", ns as f64 / 1e3)),
            ),
            None => ("-", "-".to_string(), "-", "-".to_string()),
        };
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>12.3}  {:>5.1}%  {:>10}  {:>5}  {:>7}  {:>9}",
            s.name,
            s.count,
            s.self_ns as f64 / 1e6 / repeats as f64,
            pct,
            fused,
            slot,
            fmt,
            tuned
        );
    }
    if layers.len() > shown {
        let _ = writeln!(out, "... {} more", layers.len() - shown);
    }
    out
}

/// Traces `repeats` forward passes and returns the per-span profile.
fn profile_engine(engine: &SparseModel, args: &Args, seed: u64) -> obs::Profile {
    let exec = ExecConfig::with_threads(args.threads);
    let input = init::uniform(
        &mut init::rng(seed),
        &[1, 3, args.image, args.image],
        0.0,
        1.0,
    );
    // One untraced warmup so allocator effects land outside the trace.
    engine.forward_with(&input, &exec).expect("forward");
    obs::reset();
    for _ in 0..args.repeats {
        engine.forward_with(&input, &exec).expect("forward");
    }
    obs::Profile::from_trace(&obs::drain())
}

fn main() {
    let args = parse_args();
    obs::set_enabled(true);
    obs::set_sample_every(1);

    let configs: [(&str, &str, Option<EntryPattern>); 6] = [
        ("yolov5s", "dense", None),
        ("yolov5s", "2EP", Some(EntryPattern::Two)),
        ("yolov5s", "3EP", Some(EntryPattern::Three)),
        ("retinanet", "dense", None),
        ("retinanet", "2EP", Some(EntryPattern::Two)),
        ("retinanet", "3EP", Some(EntryPattern::Three)),
    ];

    let mut report = format!(
        "obs_profile: per-layer self time, {} repeats, {}x{} input, {} threads\n\
         (layer spans only; self time excludes nested child spans)\n",
        args.repeats, args.image, args.image, args.threads
    );
    for (model, mode, entry) in configs {
        let engine = build(model, entry, 0x5EED).with_planning(args.plan);
        let plan_map = if args.plan {
            let summary = engine
                .plan_summary(&[1, 3, args.image, args.image])
                .expect("plans");
            report.push_str(&format!(
                "\n== {model} {mode}: arena {} KiB (peak live {} KiB, interpreter would retain {} KiB) ==\n",
                summary.arena_bytes / 1024,
                summary.peak_live_bytes / 1024,
                summary.retained_bytes / 1024
            ));
            Some(
                summary
                    .steps
                    .iter()
                    .map(|s| {
                        let tuned_ns = s
                            .autotune_ns
                            .iter()
                            .find(|(cand, _)| *cand == s.format)
                            .map(|&(_, ns)| ns);
                        (
                            s.name.clone(),
                            PlanCols {
                                fused: s.fused,
                                slot: s.out_slot,
                                format: s.format,
                                tuned_ns,
                            },
                        )
                    })
                    .collect::<HashMap<_, _>>(),
            )
        } else {
            None
        };
        let profile = profile_engine(&engine, &args, 0x5EED);
        let layers = profile.with_prefix("layer:");
        assert!(
            !layers.is_empty(),
            "{model}/{mode}: traced run produced no layer spans"
        );
        let total_ms: f64 = layers.iter().map(|s| s.self_ns as f64 / 1e6).sum();
        if plan_map.is_none() {
            report.push_str(&format!("\n== {model} {mode} ==\n"));
        }
        report.push_str(&format!(
            "{} layer spans, {:.3} ms total layer self time per iteration\n",
            layers.len(),
            total_ms / args.repeats as f64
        ));
        report.push_str(&render_layers(
            &layers,
            args.top,
            args.repeats,
            plan_map.as_ref(),
        ));
    }

    print!("{report}");
    let out = std::path::Path::new(&args.out);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("output dir");
    }
    std::fs::write(out, &report).expect("write report");
    println!("\nreport: {}", args.out);
}
