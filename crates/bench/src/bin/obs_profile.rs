//! Per-layer profile report over the sparse executors.
//!
//! Traces repeated forward passes of the pruned (2EP / 3EP) and dense
//! scaled YOLOv5s and RetinaNet twins, attributes self-time to each
//! `layer:*` span with [`rtoss_obs::Profile`], and renders the top-N
//! layers per configuration — the "where does the millisecond go"
//! table that tells you which layers the pruning actually sped up.
//!
//! ```text
//! obs_profile [--image N] [--threads N] [--repeats N] [--top N] [--out PATH]
//! ```
//!
//! Writes the combined report to `results/obs/profile.txt` by default.

use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_obs as obs;
use rtoss_sparse::SparseModel;
use rtoss_tensor::{init, ExecConfig};

struct Args {
    image: usize,
    threads: usize,
    repeats: usize,
    top: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        image: 32,
        threads: rtoss_tensor::exec::default_threads(),
        repeats: 5,
        top: 12,
        out: "results/obs/profile.txt".to_string(),
    };
    fn usage_error(msg: &str) -> ! {
        eprintln!("obs_profile: {msg}");
        eprintln!(
            "usage: obs_profile [--image N] [--threads N] [--repeats N] [--top N] [--out PATH]"
        );
        std::process::exit(2);
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} takes a number, got {raw:?}")))
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--image" => args.image = number(&flag, &value()),
            "--threads" => args.threads = number(&flag, &value()),
            "--repeats" => args.repeats = number(&flag, &value()),
            "--top" => args.top = number(&flag, &value()),
            "--out" => args.out = value(),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

/// Compiles one (model, pruning) configuration into a sparse engine.
fn build(model: &str, entry: Option<EntryPattern>, seed: u64) -> SparseModel {
    let mut m = match model {
        "yolov5s" => rtoss_models::yolov5s_twin(8, 2, seed),
        "retinanet" => rtoss_models::retinanet_twin(8, 2, seed),
        _ => unreachable!("model names are fixed below"),
    }
    .expect("twin builds");
    if let Some(e) = entry {
        RTossPruner::new(e)
            .prune_graph(&mut m.graph)
            .expect("prunes");
    }
    SparseModel::compile(&m.graph).expect("compiles")
}

/// Traces `repeats` forward passes and returns the per-span profile.
fn profile_engine(engine: &SparseModel, args: &Args, seed: u64) -> obs::Profile {
    let exec = ExecConfig::with_threads(args.threads);
    let input = init::uniform(
        &mut init::rng(seed),
        &[1, 3, args.image, args.image],
        0.0,
        1.0,
    );
    // One untraced warmup so allocator effects land outside the trace.
    engine.forward_with(&input, &exec).expect("forward");
    obs::reset();
    for _ in 0..args.repeats {
        engine.forward_with(&input, &exec).expect("forward");
    }
    obs::Profile::from_trace(&obs::drain())
}

fn main() {
    let args = parse_args();
    obs::set_enabled(true);
    obs::set_sample_every(1);

    let configs: [(&str, &str, Option<EntryPattern>); 6] = [
        ("yolov5s", "dense", None),
        ("yolov5s", "2EP", Some(EntryPattern::Two)),
        ("yolov5s", "3EP", Some(EntryPattern::Three)),
        ("retinanet", "dense", None),
        ("retinanet", "2EP", Some(EntryPattern::Two)),
        ("retinanet", "3EP", Some(EntryPattern::Three)),
    ];

    let mut report = format!(
        "obs_profile: per-layer self time, {} repeats, {}x{} input, {} threads\n\
         (layer spans only; self time excludes nested child spans)\n",
        args.repeats, args.image, args.image, args.threads
    );
    for (model, mode, entry) in configs {
        let engine = build(model, entry, 0x5EED);
        let profile = profile_engine(&engine, &args, 0x5EED);
        let layers = profile.with_prefix("layer:");
        assert!(
            !layers.is_empty(),
            "{model}/{mode}: traced run produced no layer spans"
        );
        let total_ms: f64 = layers.iter().map(|s| s.self_ns as f64 / 1e6).sum();
        report.push_str(&format!(
            "\n== {model} {mode}: {} layers, {:.3} ms total layer self time ==\n",
            layers.len(),
            total_ms / args.repeats as f64
        ));
        report.push_str(&profile.render_table("layer:", args.top));
    }

    print!("{report}");
    let out = std::path::Path::new(&args.out);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("output dir");
    }
    std::fs::write(out, &report).expect("write report");
    println!("\nreport: {}", args.out);
}
