//! Per-difficulty evaluation (extension of Fig. 8's tiny-object story):
//! KITTI scores Easy / Moderate / Hard splits separately; pruning damage
//! concentrates on Hard (small or occluded) objects, which is why the
//! paper's qualitative figure features a tiny car.
//!
//! Trains the YOLOv5s twin once, then compares per-tier mAP for the
//! Base Model, PD, and R-TOSS (2EP) after fine-tuning.
//!
//! Run with `--release` (a few minutes on one core); `--quick` for a
//! smoke version.

use rtoss::train::{evaluate_twin_tiered, load_state, save_state, train_twin, TrainConfig};
use rtoss_bench::print_table;
use rtoss_core::baselines::PatDnn;
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_data::scene::{generate_dataset, SceneConfig};
use rtoss_data::Difficulty;
use rtoss_models::yolov5s_twin;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (epochs, scenes_n, base) = if quick { (3, 48, 8) } else { (18, 300, 16) };

    eprintln!("[difficulty] generating scenes (crowded config for occlusions)...");
    let cfg = SceneConfig {
        min_objects: 2,
        max_objects: 4,
        ..SceneConfig::default()
    };
    let train_scenes = generate_dataset(&cfg, scenes_n, 5000);
    let eval_scenes = generate_dataset(&cfg, 60, 6000);

    eprintln!("[difficulty] training the twin...");
    let mut model = yolov5s_twin(base, 3, 42).expect("twin builds");
    let tcfg = TrainConfig {
        epochs,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    train_twin(&mut model, &train_scenes, &tcfg).expect("training succeeds");
    let state = save_state(&mut model);

    let ft = TrainConfig {
        epochs: epochs / 2 + 1,
        batch_size: 8,
        lr: 0.015,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    let methods: Vec<(String, Option<Box<dyn Pruner>>)> = vec![
        ("BM".into(), None),
        ("PD".into(), Some(Box::new(PatDnn::default()))),
        (
            "R-TOSS (2EP)".into(),
            Some(Box::new(RTossPruner::new(EntryPattern::Two))),
        ),
    ];
    let mut rows = Vec::new();
    for (name, pruner) in methods {
        eprintln!("[difficulty] method {name}...");
        let mut m = yolov5s_twin(base, 3, 42).expect("twin builds");
        load_state(&mut m, &state).expect("state loads");
        if let Some(p) = pruner {
            p.prune_graph(&mut m.graph).expect("pruning succeeds");
            train_twin(&mut m, &train_scenes, &ft).expect("fine-tune succeeds");
        }
        let tiered =
            evaluate_twin_tiered(&mut m, &eval_scenes, 0.25, 0.5).expect("evaluation succeeds");
        let cell = |d: Difficulty| {
            tiered
                .tier(d)
                .map(|r| format!("{:.1}", r.map_percent()))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            name,
            cell(Difficulty::Easy),
            cell(Difficulty::Moderate),
            cell(Difficulty::Hard),
        ]);
    }
    print_table(
        "Per-difficulty mAP@0.5 (YOLOv5s twin, crowded synthetic KITTI)",
        &["Method", "Easy", "Moderate", "Hard"],
        &rows,
    );
    println!(
        "\nShape check: mAP decreases from Easy to Hard for every method, and\n\
         pruning widens the gap most on Hard objects — the small/occluded\n\
         detections the paper's Fig. 8 uses to separate the frameworks."
    );
}
