//! Renders a `fleet_telemetry.json` snapshot (written by
//! `fleet_bench --telemetry`) as a plain-text operator dashboard:
//! per-tenant admission lanes and burn-rate sparklines, per-replica
//! queue/tier gauges, and the alert transition log.
//!
//! ```text
//! fleet_dashboard [--in PATH] [--out PATH]
//! ```
//!
//! Defaults to reading `results/fleet/fleet_telemetry.json` and
//! printing to stdout; `--out` additionally writes the rendering to a
//! file (CI uploads it next to the raw JSON).

use rtoss_bench::format_table;
use rtoss_fleet::{BurnPoint, TelemetrySnapshot};
use std::fmt::Write as _;

fn usage_error(msg: &str) -> ! {
    eprintln!("fleet_dashboard: {msg}");
    eprintln!("usage: fleet_dashboard [--in PATH] [--out PATH]");
    std::process::exit(2);
}

/// Fixed-width short-burn sparkline, height scaled to the series peak.
/// Longer series are downsampled by max-pooling so a breach spike
/// never disappears between columns.
fn sparkline(burns: &[BurnPoint], fire_burn: f64) -> String {
    const RAMP: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    const WIDTH: usize = 80;
    if burns.is_empty() {
        return String::new();
    }
    let peak = burns.iter().map(|b| b.short).fold(fire_burn, f64::max);
    let columns = burns.len().min(WIDTH);
    (0..columns)
        .map(|c| {
            let lo = c * burns.len() / columns;
            let hi = ((c + 1) * burns.len() / columns).max(lo + 1);
            let v = burns[lo..hi].iter().map(|b| b.short).fold(0.0, f64::max);
            if v <= 0.0 {
                ' '
            } else {
                let frac = (v / peak).clamp(0.0, 1.0);
                RAMP[((frac * (RAMP.len() - 1) as f64).round()) as usize]
            }
        })
        .collect()
}

fn ms(ts_ns: u64) -> String {
    format!("{:.1}", ts_ns as f64 / 1e6)
}

/// Renders the full dashboard text for one snapshot.
fn render(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet telemetry: {} ms windows x {}, admission objective {:.2} \
         (fire {:.1}, resolve {:.1}), deadline objective {:.2}",
        snap.window_ns as f64 / 1e6,
        snap.windows,
        snap.admission_policy.objective,
        snap.admission_policy.fire_burn,
        snap.admission_policy.resolve_burn,
        snap.deadline_policy.objective,
    );
    out.push('\n');

    let tenant_rows: Vec<Vec<String>> = snap
        .tenants
        .iter()
        .map(|t| {
            let (short, long) = t.burns.last().map_or((0.0, 0.0), |b| (b.short, b.long));
            let peak = t.burns.iter().map(|b| b.short).fold(0.0, f64::max);
            vec![
                t.id.clone(),
                t.class.clone(),
                t.totals.offered.to_string(),
                t.totals.admitted.to_string(),
                t.totals.throttled.to_string(),
                t.totals.shed.to_string(),
                t.late.to_string(),
                format!("{short:.2}/{long:.2}"),
                format!("{peak:.2}"),
                if t.firing { "FIRING" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&format_table(
        "Tenants (admission SLO)",
        &[
            "tenant",
            "class",
            "offered",
            "admitted",
            "throttled",
            "shed",
            "late",
            "burn s/l",
            "peak",
            "state",
        ],
        &tenant_rows,
    ));
    out.push('\n');
    for t in &snap.tenants {
        if !t.burns.is_empty() {
            let _ = writeln!(
                out,
                "  {:<16} [{}]",
                t.id,
                sparkline(&t.burns, snap.admission_policy.fire_burn)
            );
        }
    }
    out.push('\n');

    let replica_rows: Vec<Vec<String>> = snap
        .replicas
        .iter()
        .map(|r| {
            let queue = r.queue_frac.last().map_or(0.0, |w| w.last);
            let tier = r.tier.last().map_or(0.0, |w| w.last);
            let (short, long) = r.burns.last().map_or((0.0, 0.0), |b| (b.short, b.long));
            vec![
                r.replica.to_string(),
                format!("{queue:.2}"),
                format!("{tier:.0}"),
                format!("{short:.2}/{long:.2}"),
                if r.firing { "FIRING" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&format_table(
        "Replicas (deadline SLO)",
        &["replica", "queue frac", "tier", "burn s/l", "state"],
        &replica_rows,
    ));
    out.push('\n');

    if snap.alerts.is_empty() {
        let _ = writeln!(out, "no alert transitions");
    } else {
        let alert_rows: Vec<Vec<String>> = snap
            .alerts
            .iter()
            .map(|a| {
                vec![
                    ms(a.ts_ns),
                    a.rule.clone(),
                    a.subject.clone(),
                    a.state.clone(),
                    format!("{:.2}", a.burn_short),
                    format!("{:.2}", a.burn_long),
                ]
            })
            .collect();
        out.push_str(&format_table(
            "Alert transitions",
            &[
                "t (ms)",
                "rule",
                "subject",
                "state",
                "burn short",
                "burn long",
            ],
            &alert_rows,
        ));
    }
    let _ = writeln!(
        out,
        "\nflight dumps: {} rendered, {} suppressed",
        snap.dump_count, snap.dumps_suppressed
    );
    out
}

fn main() {
    let mut input = "results/fleet/fleet_telemetry.json".to_string();
    let mut output: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--in" => input = value(),
            "--out" => output = Some(value()),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    let text = std::fs::read_to_string(&input)
        .unwrap_or_else(|e| usage_error(&format!("cannot read {input}: {e}")));
    let snap: TelemetrySnapshot = serde_json::from_str(&text)
        .unwrap_or_else(|e| usage_error(&format!("{input} is not a telemetry snapshot: {e}")));
    let rendering = render(&snap);
    print!("{rendering}");
    if let Some(path) = output {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("output dir");
        }
        std::fs::write(&path, &rendering).expect("write output");
        println!("dashboard: {path}");
    }
}
