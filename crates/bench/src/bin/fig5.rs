//! Regenerates **Fig. 5**: mAP comparison across all frameworks on
//! YOLOv5s and RetinaNet.
//!
//! Two tiers (DESIGN.md §2):
//!
//! - default: the analytic accuracy model applied to *measured*
//!   full-scale pruning statistics (fast);
//! - `--twin`: the empirical tier — trains the scaled twins on
//!   synthetic KITTI, prunes with each method, fine-tunes, and measures
//!   real mAP@0.5 through the full detection pipeline (slow; run with
//!   `--release`).

use rtoss::train::{evaluate_twin, load_state, save_state, train_twin, TrainConfig};
use rtoss_bench::{print_table, run_roster};
use rtoss_core::accuracy::AccuracyModel;
use rtoss_core::baselines::all_baselines;
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_data::scene::{generate_dataset, SceneConfig};
use rtoss_models::{retinanet, yolov5s, yolov5s_twin, DetectorModel};

/// Paper Fig. 5 approximate bar values (mAP, KITTI).
const PAPER_YOLO: &[(&str, f64)] = &[
    ("BM", 74.2),
    ("PD", 79.0),
    ("NMS", 73.0),
    ("NS", 68.0),
    ("PF", 67.0),
    ("NP", 70.0),
    ("R-TOSS (3EP)", 78.58),
    ("R-TOSS (2EP)", 76.42),
];
const PAPER_RETINA: &[(&str, f64)] = &[
    ("BM", 77.5),
    ("PD", 70.0),
    ("NMS", 71.9),
    ("NS", 66.0),
    ("PF", 65.0),
    ("NP", 68.0),
    ("R-TOSS (3EP)", 79.45),
    ("R-TOSS (2EP)", 82.9),
];

fn analytic(
    name: &str,
    build: impl Fn() -> DetectorModel,
    acc: AccuracyModel,
    paper: &[(&str, f64)],
) {
    let runs = run_roster(build);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let paper_v = paper
                .iter()
                .find(|(n, _)| *n == r.name)
                .map(|&(_, v)| format!("{v}"))
                .unwrap_or_else(|| "-".into());
            vec![
                r.name.clone(),
                format!("{:.2}", acc.estimate(&r.stats)),
                format!("{:.3}", r.stats.retention),
                format!("{:.3}", r.stats.filter_cut),
                paper_v,
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 5 ({name}): mAP, analytic tier"),
        &[
            "Method",
            "mAP (model)",
            "L2 retention",
            "Filter cut",
            "Paper (approx)",
        ],
        &rows,
    );
}

fn empirical_twin() {
    const SEED: u64 = 42;
    const BASE: usize = 16;
    const CLASSES: usize = 3;
    eprintln!("[twin] generating synthetic KITTI (train 300 / eval 60 scenes)...");
    let train_scenes = generate_dataset(&SceneConfig::default(), 300, 1000);
    let eval_scenes = generate_dataset(&SceneConfig::default(), 60, 2000);

    eprintln!("[twin] training the shared base model...");
    let mut base = yolov5s_twin(BASE, CLASSES, SEED).expect("twin builds");
    let cfg = TrainConfig {
        epochs: 20,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    train_twin(&mut base, &train_scenes, &cfg).expect("training succeeds");
    let state = save_state(&mut base);
    let bm_map = evaluate_twin(&mut base, &eval_scenes, 0.25, 0.5)
        .expect("evaluation succeeds")
        .map_percent();

    let finetune = TrainConfig {
        epochs: 30,
        batch_size: 8,
        lr: 0.02,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    let mut rows = vec![vec!["BM".to_string(), format!("{bm_map:.1}")]];
    let mut pruners: Vec<Box<dyn Pruner>> = all_baselines();
    pruners.push(Box::new(RTossPruner::new(EntryPattern::Three)));
    pruners.push(Box::new(RTossPruner::new(EntryPattern::Two)));
    for p in pruners {
        eprintln!("[twin] {}: prune + fine-tune + evaluate...", p.name());
        let mut m = yolov5s_twin(BASE, CLASSES, SEED).expect("twin builds");
        load_state(&mut m, &state).expect("state loads");
        p.prune_graph(&mut m.graph).expect("pruning succeeds");
        train_twin(&mut m, &train_scenes, &finetune).expect("fine-tune succeeds");
        let map = evaluate_twin(&mut m, &eval_scenes, 0.25, 0.5)
            .expect("evaluation succeeds")
            .map_percent();
        rows.push(vec![p.name(), format!("{map:.1}")]);
    }
    print_table(
        "Fig. 5 (YOLOv5s twin): mAP@0.5, empirical tier",
        &["Method", "mAP (measured)"],
        &rows,
    );
}

fn main() {
    let twin_mode = std::env::args().any(|a| a == "--twin");
    eprintln!("analytic tier: full-scale YOLOv5s...");
    analytic(
        "YOLOv5s",
        || yolov5s(80, 42).expect("yolov5s builds"),
        AccuracyModel::yolov5s_kitti(),
        PAPER_YOLO,
    );
    eprintln!("analytic tier: full-scale RetinaNet...");
    analytic(
        "RetinaNet",
        || retinanet(80, 42).expect("retinanet builds"),
        AccuracyModel::retinanet_kitti(),
        PAPER_RETINA,
    );
    if twin_mode {
        empirical_twin();
    } else {
        println!("\n(run with --twin --release for the empirical scaled-twin tier)");
    }
    println!(
        "\nShape check (analytic tier): R-TOSS variants sit at or above BM;\n\
         structured pruning (NS, PF) sits clearly below; NMS stays near BM.\n\
         In the twin tier the capacity effect dominates (EXPERIMENTS.md):\n\
         pattern pruning still beats filter pruning by >24 mAP points at\n\
         matched-or-higher sparsity, but 2EP on a 0.3M-param twin removes\n\
         needed capacity that the 7M-param original can spare."
    );
}
