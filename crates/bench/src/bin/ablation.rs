//! Ablation study of R-TOSS's design choices (the decisions DESIGN.md
//! §4 calls out):
//!
//! - **A.** the 1×1 transformation (Algorithm 3) on vs off,
//! - **B.** DFS layer grouping (Algorithm 1) on vs off (wall-clock cost
//!   of the pruning pass; resulting sparsity is identical),
//! - **C.** pattern-budget sweep for 3EP (how many of the 22 connected
//!   patterns are actually needed — the paper settles on 9),
//! - **D.** the adjacency filter on vs off (disconnected patterns score
//!   marginally better L2 but forfeit semi-structured regularity).

use rtoss_bench::print_table;
use rtoss_core::accuracy::{prune_stats, snapshot_weights, AccuracyModel};
use rtoss_core::pattern::{select_patterns, select_patterns_unfiltered};
use rtoss_core::prune3x3::prune_3x3_weights;
use rtoss_core::{EntryPattern, Pruner, RTossConfig, RTossPruner};
use rtoss_models::yolov5s;
use rtoss_tensor::init;
use std::time::Instant;

fn ablation_1x1() {
    let acc = AccuracyModel::yolov5s_kitti();
    let mut rows = Vec::new();
    for (label, prune_1x1) in [
        ("with 1x1 transformation", true),
        ("3x3-only (prior work)", false),
    ] {
        let mut m = yolov5s(80, 42).expect("builds");
        let snap = snapshot_weights(&m.graph);
        let cfg = RTossConfig {
            prune_1x1,
            ..RTossConfig::new(EntryPattern::Two)
        };
        let report = RTossPruner::with_config(cfg)
            .prune_graph(&mut m.graph)
            .expect("prunes");
        let stats = prune_stats(&snap, &m.graph);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}x", report.compression_ratio()),
            format!("{:.1}%", report.sparsity_for_kernel(1) * 100.0),
            format!("{:.1}%", report.sparsity_for_kernel(3) * 100.0),
            format!("{:.2}", acc.estimate(&stats)),
        ]);
    }
    print_table(
        "Ablation A: the 1x1 transformation (YOLOv5s, 2EP)",
        &[
            "Variant",
            "Compression",
            "1x1 sparsity",
            "3x3 sparsity",
            "est. mAP",
        ],
        &rows,
    );
}

fn ablation_grouping() {
    let mut rows = Vec::new();
    for (label, use_groups) in [
        ("DFS grouping (Alg. 1)", true),
        ("per-layer selection", false),
    ] {
        let mut m = yolov5s(80, 42).expect("builds");
        let cfg = RTossConfig {
            use_groups,
            ..RTossConfig::new(EntryPattern::Three)
        };
        let start = Instant::now();
        let report = RTossPruner::with_config(cfg)
            .prune_graph(&mut m.graph)
            .expect("prunes");
        let elapsed = start.elapsed().as_secs_f64();
        rows.push(vec![
            label.to_string(),
            format!("{:.3} s", elapsed),
            format!("{}", report.group_count),
            format!("{:.2}x", report.compression_ratio()),
        ]);
    }
    print_table(
        "Ablation B: DFS layer grouping (YOLOv5s, 3EP, full-scale prune pass)",
        &["Variant", "Prune time", "Groups", "Compression"],
        &rows,
    );
}

fn ablation_budget() {
    // Retention of best-pattern selection vs number of available
    // patterns, on a large random kernel population.
    let kernels = init::uniform(&mut init::rng(5), &[4096, 1, 3, 3], -1.0, 1.0);
    let dense_l2 = kernels.l2_norm() as f64;
    let mut rows = Vec::new();
    for budget in [1usize, 3, 6, 9, 15, 22] {
        let set = select_patterns(3, budget, 20_000, 0x5EED).expect("selects");
        let mut w = kernels.clone();
        prune_3x3_weights(&mut w, &set).expect("prunes");
        let retention = w.l2_norm() as f64 / dense_l2;
        rows.push(vec![format!("{}", set.len()), format!("{retention:.4}")]);
    }
    print_table(
        "Ablation C: 3EP pattern budget vs L2 retention (4096 random kernels)",
        &["Patterns available", "L2 retention"],
        &rows,
    );
    println!(
        "Retention saturates well before all 22 connected patterns — the\n\
         paper's 9-pattern 3EP budget captures almost all of it, and fewer\n\
         patterns means better kernel grouping at inference (section IV.C)."
    );
}

fn ablation_adjacency() {
    let kernels = init::uniform(&mut init::rng(6), &[4096, 1, 3, 3], -1.0, 1.0);
    let dense_l2 = kernels.l2_norm() as f64;
    let mut rows = Vec::new();
    for (label, set) in [
        (
            "adjacent only (paper)",
            select_patterns(3, 9, 20_000, 0x5EED).expect("selects"),
        ),
        (
            "unfiltered C(9,3)",
            select_patterns_unfiltered(3, 9, 20_000, 0x5EED).expect("selects"),
        ),
    ] {
        let connected = set.patterns().iter().filter(|p| p.is_connected()).count();
        let mut w = kernels.clone();
        prune_3x3_weights(&mut w, &set).expect("prunes");
        let retention = w.l2_norm() as f64 / dense_l2;
        rows.push(vec![
            label.to_string(),
            format!("{}/{}", connected, set.len()),
            format!("{retention:.4}"),
        ]);
    }
    print_table(
        "Ablation D: adjacency filter (3EP, 9-pattern budget)",
        &["Candidate set", "Connected patterns", "L2 retention"],
        &rows,
    );
    println!(
        "Dropping the filter buys almost no retention while destroying the\n\
         connectedness the sparse executor's regularity (and the paper's\n\
         semi-structured claim) depend on."
    );
}

fn main() {
    eprintln!("running ablation A (1x1 transformation)...");
    ablation_1x1();
    eprintln!("running ablation B (DFS grouping)...");
    ablation_grouping();
    eprintln!("running ablation C (pattern budget)...");
    ablation_budget();
    eprintln!("running ablation D (adjacency filter)...");
    ablation_adjacency();
}
