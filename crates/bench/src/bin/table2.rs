//! Regenerates **Table 2**: model size vs execution time on the Jetson
//! TX2, for YOLOv5 / YOLOX / RetinaNet / YOLOv7 / YOLOR / DETR.
//!
//! The simulated column is the TX2 device model's prediction from each
//! detector's parameter count and MAC profile; the device model was
//! calibrated by least squares over exactly these six rows (see
//! `rtoss-hw`), so the per-row residual shows how well a two-term
//! cost model explains the paper's measurements.

use rtoss_bench::print_table;
use rtoss_hw::{DeviceModel, SparsityStructure, Workload};
use rtoss_models::others::comparison_profiles;

fn main() {
    let tx2 = DeviceModel::jetson_tx2();
    let rows: Vec<Vec<String>> = comparison_profiles()
        .into_iter()
        .filter(|p| p.paper_tx2_seconds.is_some())
        .map(|p| {
            let w = Workload {
                dense_macs: (p.gmacs * 1e9) as u64,
                effective_macs: (p.gmacs * 1e9) as u64,
                weight_bytes: (p.params_m * 1e6 * 4.0) as u64,
                structure: SparsityStructure::Dense,
            };
            let sim = tx2.latency_s(&w);
            let paper = p.paper_tx2_seconds.unwrap_or(f64::NAN);
            vec![
                p.name.to_string(),
                format!("{:.2}", p.params_m),
                format!("{paper:.4}"),
                format!("{sim:.4}"),
                format!("{:+.1}%", (sim - paper) / paper * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table 2: model size vs execution time (Jetson TX2)",
        &[
            "Model",
            "Params (M)",
            "Exec time (s, paper)",
            "Exec time (s, simulated)",
            "Residual",
        ],
        &rows,
    );
    println!(
        "\nShape check: execution time grows with model size in both columns;\n\
         DETR is the largest residual (transformer attention is not a conv\n\
         MAC workload — documented deviation, EXPERIMENTS.md)."
    );
}
