//! Regenerates **Fig. 8**: qualitative detection comparison on one
//! synthetic KITTI test scene using the RetinaNet twin — Base Model vs
//! NP vs PD vs R-TOSS (2EP).
//!
//! Trains the twin once, transplants the trained state into a fresh
//! twin per method, prunes, fine-tunes briefly, runs inference on the
//! same held-out scene, prints each method's detections (class,
//! confidence) and writes annotated PPM images to `results/fig8/`.
//!
//! Run with `--release`; the default budget takes a few minutes on one
//! core.

use rtoss::train::{detect_scene, load_state, save_state, train_twin, TrainConfig};
use rtoss_bench::print_table;
use rtoss_core::baselines::{NeuralPruning, PatDnn};
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_data::ppm::{write_ppm_with_boxes, Overlay};
use rtoss_data::scene::{generate_dataset, KittiClass, SceneConfig};
use rtoss_data::BBox;
use rtoss_models::retinanet_twin;
use std::path::Path;

const SEED: u64 = 42;
const BASE: usize = 16;
const CLASSES: usize = 3;

fn class_color(class: usize) -> [f32; 3] {
    match class {
        0 => [1.0, 1.0, 0.0], // Car: yellow
        1 => [1.0, 0.0, 0.0], // Pedestrian: red
        _ => [0.0, 1.0, 1.0], // Cyclist: cyan
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (epochs, scenes_n) = if quick { (4, 48) } else { (20, 300) };

    eprintln!("[fig8] generating scenes and training the RetinaNet twin...");
    let train_scenes = generate_dataset(&SceneConfig::default(), scenes_n, 3000);
    let test_scene = &generate_dataset(&SceneConfig::default(), 1, 4000)[0];

    let mut base = retinanet_twin(BASE, CLASSES, SEED).expect("twin builds");
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        lr: 0.03,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    train_twin(&mut base, &train_scenes, &cfg).expect("training succeeds");
    let state = save_state(&mut base);

    let out_dir = Path::new("results/fig8");
    std::fs::create_dir_all(out_dir).expect("output dir");
    // Ground-truth reference image.
    let gt_overlays: Vec<Overlay> = test_scene
        .truths
        .iter()
        .map(|t| Overlay {
            bbox: t.bbox,
            color: [1.0, 1.0, 1.0],
            label: KittiClass::from_index(t.class).name().to_string(),
        })
        .collect();
    write_ppm_with_boxes(
        &out_dir.join("ground_truth.ppm"),
        &test_scene.image,
        &gt_overlays,
    )
    .expect("ppm written");

    let finetune = TrainConfig {
        epochs: (3 * epochs) / 4,
        batch_size: 8,
        lr: 0.015,
        momentum: 0.9,
        schedule: rtoss_nn::optim::LrSchedule::Constant,
    };
    let methods: Vec<(String, Option<Box<dyn Pruner>>)> = vec![
        ("BM".into(), None),
        ("NP".into(), Some(Box::new(NeuralPruning::default()))),
        ("PD".into(), Some(Box::new(PatDnn::default()))),
        (
            "R-TOSS (2EP)".into(),
            Some(Box::new(RTossPruner::new(EntryPattern::Two))),
        ),
    ];

    let mut rows = Vec::new();
    for (name, pruner) in methods {
        eprintln!("[fig8] method {name}...");
        let mut m = retinanet_twin(BASE, CLASSES, SEED).expect("twin builds");
        load_state(&mut m, &state).expect("state loads");
        if let Some(p) = pruner {
            p.prune_graph(&mut m.graph).expect("pruning succeeds");
            train_twin(&mut m, &train_scenes, &finetune).expect("fine-tune succeeds");
        }
        let dets = detect_scene(&mut m, test_scene, 0.20).expect("inference succeeds");
        let overlays: Vec<Overlay> = dets
            .iter()
            .map(|d| Overlay {
                bbox: BBox::new(d.bbox.cx, d.bbox.cy, d.bbox.w, d.bbox.h),
                color: class_color(d.class),
                label: format!("{} {:.2}", KittiClass::from_index(d.class).name(), d.score),
            })
            .collect();
        let file = out_dir.join(format!(
            "{}.ppm",
            name.to_lowercase().replace([' ', '(', ')'], "")
        ));
        write_ppm_with_boxes(&file, &test_scene.image, &overlays).expect("ppm written");
        let det_list = if dets.is_empty() {
            "(none)".to_string()
        } else {
            dets.iter()
                .map(|d| format!("{} {:.2}", KittiClass::from_index(d.class).name(), d.score))
                .collect::<Vec<_>>()
                .join(", ")
        };
        rows.push(vec![
            name,
            format!("{}", dets.len()),
            det_list,
            file.display().to_string(),
        ]);
    }

    let truth_list = test_scene
        .truths
        .iter()
        .map(|t| KittiClass::from_index(t.class).name().to_string())
        .collect::<Vec<_>>()
        .join(", ");
    println!("\nGround truth: {truth_list} (results/fig8/ground_truth.ppm)");
    print_table(
        "Fig. 8: qualitative comparison on one KITTI-like scene (RetinaNet twin)",
        &["Method", "#Det", "Detections (class, confidence)", "Image"],
        &rows,
    );
    println!(
        "\nShape check: R-TOSS (2EP) retains the Base Model's detections\n\
         with comparable confidence, while NP and PD drop or down-weight\n\
         objects — the paper's Fig. 8 story."
    );
}
