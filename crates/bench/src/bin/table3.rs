//! Regenerates **Table 3**: sensitivity analysis of R-TOSS entry
//! patterns (5EP/4EP/3EP/2EP) on full-scale YOLOv5s and RetinaNet —
//! reduction ratio, mAP, inference time and energy on the RTX 2080 Ti.
//!
//! Reduction ratios are *measured* (real pattern pruning of the
//! full-scale weight tensors); latency/energy run the measured sparsity
//! through the calibrated 2080 Ti model; mAP uses the analytic accuracy
//! model (tier b, DESIGN.md §2).

use rtoss_bench::{print_table, run_entry_sweep};
use rtoss_core::accuracy::AccuracyModel;
use rtoss_hw::DeviceModel;
use rtoss_models::{retinanet, yolov5s, DetectorModel};

/// Paper Table 3 values: (variant, ratio, mAP, ms, J) per model.
const PAPER_YOLO: &[(&str, f64, f64, f64, f64)] = &[
    ("R-TOSS (5EP)", 1.79, 72.6, 11.09, 0.97),
    ("R-TOSS (4EP)", 2.24, 70.45, 10.98, 0.91),
    ("R-TOSS (3EP)", 2.9, 78.58, 6.9, 0.478),
    ("R-TOSS (2EP)", 4.4, 76.42, 6.5, 0.454),
];
const PAPER_RETINA: &[(&str, f64, f64, f64, f64)] = &[
    ("R-TOSS (5EP)", 1.45, 66.09, 157.24, 14.27),
    ("R-TOSS (4EP)", 1.6, 75.8, 150.58, 13.62),
    ("R-TOSS (3EP)", 2.4, 79.45, 72.98, 6.45),
    ("R-TOSS (2EP)", 2.89, 82.9, 64.83, 5.50),
];

fn sweep(
    name: &str,
    build: impl Fn() -> DetectorModel,
    acc: AccuracyModel,
    paper: &[(&str, f64, f64, f64, f64)],
) {
    let dev = DeviceModel::rtx_2080ti();
    let runs = run_entry_sweep(build);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .zip(paper)
        .map(|(r, &(pname, p_ratio, p_map, p_ms, p_j))| {
            assert_eq!(r.name, pname, "variant order mismatch");
            let ms = dev.latency_ms(&r.workload);
            let j = dev.energy_j(&r.workload);
            vec![
                r.name.clone(),
                format!("{:.2}x / {p_ratio}x", r.report.compression_ratio()),
                format!("{:.2} / {p_map}", acc.estimate(&r.stats)),
                format!("{ms:.2} / {p_ms}",),
                format!("{j:.3} / {p_j}"),
            ]
        })
        .collect();
    print_table(
        &format!("Table 3 ({name}): measured / paper"),
        &[
            "Variant",
            "Reduction ratio",
            "mAP",
            "Inference (ms, 2080 Ti)",
            "Energy (J)",
        ],
        &rows,
    );
}

fn main() {
    eprintln!("building full-scale YOLOv5s and pruning 4 variants...");
    sweep(
        "YOLOv5s",
        || yolov5s(80, 42).expect("yolov5s builds"),
        AccuracyModel::yolov5s_kitti(),
        PAPER_YOLO,
    );
    eprintln!("building full-scale RetinaNet and pruning 4 variants...");
    sweep(
        "RetinaNet",
        || retinanet(80, 42).expect("retinanet builds"),
        AccuracyModel::retinanet_kitti(),
        PAPER_RETINA,
    );
    println!(
        "\nShape check: reduction ratio, speed and energy all improve\n\
         monotonically from 5EP to 2EP, as in the paper. Known deviation:\n\
         the paper's non-monotonic 4EP/5EP mAP rows are not reproduced by\n\
         the smooth accuracy model (EXPERIMENTS.md)."
    );
}
