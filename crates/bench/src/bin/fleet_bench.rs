//! Fleet overload benchmark: the accuracy-tier degradation curve.
//!
//! Builds a dense / 3EP / 2EP tier stack from the same seeded YOLOv5s
//! twin (identical weights before pruning, each variant compiled to the
//! planned sparse engine), calibrates the fleet's saturating load from
//! the dense engine's measured service time, then sweeps offered load
//! across multiples of that saturation point. Every load point is
//! replayed **twice on the same seeded arrival schedule**: once with
//! the degradation controller enabled (replicas swap to sparser, faster
//! R-TOSS variants under pressure) and once with the controller off
//! (pinned dense — the no-degradation baseline). The headline curve is
//! deadline-hit-rate vs. load; the cost axis is the frame-weighted
//! modelled mAP of what was actually served.
//!
//! ```text
//! fleet_bench [--replicas N] [--workers N] [--max-batch N] [--image N]
//!             [--duration SECS] [--seed N] [--deadline-ms N]
//!             [--burst F] [--loads F,F,...] [--out PATH] [--strict]
//!             [--telemetry]
//! ```
//!
//! `--telemetry` turns the windowed SLO telemetry plane on for every
//! arm (bench-scaled burn-rate ranges), validates each settled
//! snapshot with the RV080–RV083 passes (including the ledger
//! cross-check and every flight dump), and writes the artifacts of the
//! highest >= 2x degraded arm next to the report:
//! `fleet_telemetry.json`, `fleet_telemetry.prom`, and
//! `fleet_flight.json`. Combined with `--strict` it also requires the
//! bulk tenant's admission alert to fire *and* resolve at that point —
//! the breach-and-recovery acceptance gate.
//!
//! `--deadline-ms 0` (the default) auto-derives the deadline from the
//! calibrated dense service time (8x the mean single-frame latency), so
//! the benchmark stays meaningful across machines. `--burst F` replaces
//! the Poisson arrivals with the on/off-modulated bursty schedule
//! (burstiness factor `F >= 1`; `1` is plain Poisson). `--strict` exits
//! non-zero unless degradation strictly beats the baseline's
//! deadline-hit-rate at every load point at or above 2x saturation —
//! the acceptance gate CI runs.
//!
//! Both terminal fleet snapshots of every load point are checked with
//! the rtoss-verify RV062/RV063 passes (tenant-ledger conservation,
//! replica-state consistency); a violation aborts with exit 1. Writes
//! `fleet_bench.json` and a plain-text `fleet_bench.txt` table next to
//! each other under `results/fleet/` by default.

use rtoss_bench::format_table;
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_fleet::loadgen::{
    bursty_schedule, poisson_schedule, run_fleet_open_loop, FleetLoadSummary, TenantLoad,
};
use rtoss_fleet::{
    Fleet, FleetConfig, FlightDump, SloClass, TelemetryConfig, TelemetrySnapshot, TenantSpec,
    TierControllerConfig, TierSpec,
};
use rtoss_models::yolov5s_twin;
use rtoss_serve::{BackpressurePolicy, ServeConfig, ServeModel};
use rtoss_sparse::SparseModel;
use rtoss_tensor::{init, ExecConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Served-frame count of one accuracy tier (summed over replicas).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TierMixRow {
    /// Tier name (`dense`, `3EP`, `2EP`).
    tier: String,
    /// Frames served on this tier across the whole fleet.
    frames: u64,
}

/// One arm (controller on or off) of one load point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ArmRow {
    /// Whether the degradation controller was enabled.
    degradation: bool,
    /// Client-side load summary (per-tenant outcomes included).
    summary: FleetLoadSummary,
    /// Fraction of offered requests completed within deadline.
    deadline_hit_rate: f64,
    /// Frame-weighted modelled mAP of everything served (0 when the
    /// arm served nothing).
    served_map: f64,
    /// Served frames per tier.
    tier_mix: Vec<TierMixRow>,
    /// Controller moves toward sparser tiers during the run.
    tier_downgrades: u64,
    /// Controller moves back toward dense during the run.
    tier_upgrades: u64,
    /// Requests routed to their hash-affine replica.
    routed_affinity: u64,
    /// Requests spilled to the least-outstanding replica.
    routed_spill: u64,
}

/// Both arms of one offered-load multiplier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LoadPoint {
    /// Offered load as a multiple of the calibrated saturating rate.
    multiplier: f64,
    /// Offered load, requests/second.
    qps: f64,
    /// Requests in the (shared) schedule.
    requests: u64,
    /// Controller-enabled arm.
    degraded: ArmRow,
    /// Pinned-dense baseline arm.
    baseline: ArmRow,
}

/// The full degradation-curve report written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FleetBenchReport {
    /// Schedule / weight seed.
    seed: u64,
    /// Replicas in the fleet.
    replicas: u64,
    /// Workers per replica.
    workers: u64,
    /// Micro-batch cap.
    max_batch: u64,
    /// Input image side, pixels.
    image: u64,
    /// Per-request deadline, milliseconds (auto-derived when the flag
    /// was 0).
    deadline_ms: f64,
    /// Burstiness factor (1 = Poisson arrivals).
    burst: f64,
    /// Mean dense single-frame service time, milliseconds (calibration).
    dense_frame_ms: f64,
    /// Calibrated saturating load, requests/second.
    sat_qps: f64,
    /// Target seconds per load point.
    duration_s: f64,
    /// Whether every >= 2x point had degradation strictly beat the
    /// baseline's deadline-hit-rate.
    degradation_wins_overload: bool,
    /// One entry per load multiplier.
    points: Vec<LoadPoint>,
}

struct Args {
    replicas: usize,
    workers: usize,
    max_batch: usize,
    image: usize,
    duration_s: f64,
    seed: u64,
    deadline_ms: f64,
    burst: f64,
    loads: Vec<f64>,
    out: String,
    strict: bool,
    telemetry: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        replicas: 2,
        workers: 2,
        max_batch: 4,
        image: 32,
        duration_s: 2.0,
        seed: 42,
        deadline_ms: 0.0,
        burst: 1.0,
        loads: vec![0.5, 1.0, 2.0, 3.0],
        out: "results/fleet/fleet_bench.json".to_string(),
        strict: false,
        telemetry: false,
    };
    fn usage_error(msg: &str) -> ! {
        eprintln!("fleet_bench: {msg}");
        eprintln!(
            "usage: fleet_bench [--replicas N] [--workers N] [--max-batch N] [--image N] \
             [--duration SECS] [--seed N] [--deadline-ms N] [--burst F] [--loads F,F,...] \
             [--out PATH] [--strict] [--telemetry]"
        );
        std::process::exit(2);
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} takes a number, got {raw:?}")))
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--replicas" => args.replicas = number(&flag, &value()),
            "--workers" => args.workers = number(&flag, &value()),
            "--max-batch" => args.max_batch = number(&flag, &value()),
            "--image" => args.image = number(&flag, &value()),
            "--duration" => args.duration_s = number(&flag, &value()),
            "--seed" => args.seed = number(&flag, &value()),
            "--deadline-ms" => args.deadline_ms = number(&flag, &value()),
            "--burst" => args.burst = number(&flag, &value()),
            "--loads" => {
                args.loads = value()
                    .split(',')
                    .map(|s| number("--loads", s.trim()))
                    .collect();
            }
            "--out" => args.out = value(),
            "--strict" => args.strict = true,
            "--telemetry" => args.telemetry = true,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    if args.burst < 1.0 {
        usage_error("--burst must be >= 1");
    }
    if args.loads.is_empty() {
        usage_error("--loads must name at least one multiplier");
    }
    args
}

/// Compiles one variant of the seeded twin to a planned sparse engine.
fn build_tier(entry: Option<EntryPattern>, seed: u64) -> Arc<dyn ServeModel> {
    let mut model = yolov5s_twin(8, 2, seed).expect("model builds");
    if let Some(e) = entry {
        RTossPruner::new(e)
            .prune_graph(&mut model.graph)
            .expect("prunes");
    }
    Arc::new(
        SparseModel::compile(&model.graph)
            .expect("compiles")
            .with_planning(true),
    )
}

/// Effective mean single-frame service time of `model`, milliseconds,
/// measured with `concurrency` threads running forwards back to back —
/// an isolated single-thread timing overestimates capacity badly
/// (memory contention between workers is the real bottleneck), so the
/// saturation point is calibrated under the same concurrency the fleet
/// will serve with.
fn calibrate_frame_ms(
    model: &Arc<dyn ServeModel>,
    image: usize,
    seed: u64,
    concurrency: usize,
) -> f64 {
    let exec = ExecConfig::with_threads(1);
    let probe = init::uniform(&mut init::rng(seed), &[1, 3, image, image], 0.0, 1.0);
    // Warm the plan cache so compilation is not timed.
    model.run_batch(&probe, &exec).expect("warmup runs");
    let reps = 30;
    let concurrency = concurrency.max(1);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            let probe = probe.clone();
            s.spawn(move || {
                for _ in 0..reps {
                    model.run_batch(&probe, &exec).expect("forward runs");
                }
            });
        }
    });
    // Aggregate mean: wall time spread over every frame served, scaled
    // back to per-worker service time.
    t0.elapsed().as_secs_f64() * 1e3 * concurrency as f64 / (reps * concurrency) as f64
}

/// The three-tenant mix every load point replays: latency-critical gold
/// traffic, standard silver, best-effort bulk.
fn tenant_mix() -> Vec<TenantLoad> {
    vec![
        TenantLoad {
            id: "gold-cams".into(),
            weight: 3.0,
            streams: 4,
        },
        TenantLoad {
            id: "silver-cams".into(),
            weight: 2.0,
            streams: 4,
        },
        TenantLoad {
            id: "bulk-reprocess".into(),
            weight: 1.0,
            streams: 2,
        },
    ]
}

/// The telemetry-plane artifacts of one arm: the settled snapshot, its
/// Prometheus rendering, and every flight dump the run triggered.
struct TelemetryArtifacts {
    snapshot: TelemetrySnapshot,
    prom: String,
    dumps: Vec<FlightDump>,
}

/// Blocks until every SLO monitor has resolved (the burn ranges drain
/// once load stops) or `timeout` elapses; returns the settled snapshot.
fn wait_for_resolve(tel: &rtoss_fleet::FleetTelemetry, timeout: Duration) -> TelemetrySnapshot {
    let t0 = Instant::now();
    loop {
        let snap = tel.snapshot();
        let quiet =
            snap.tenants.iter().all(|t| !t.firing) && snap.replicas.iter().all(|r| !r.firing);
        if quiet || t0.elapsed() > timeout {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs the RV080–RV083 passes over one arm's settled telemetry; a
/// violation aborts the benchmark, same contract as RV062/RV063.
fn verify_telemetry(artifacts: &TelemetryArtifacts, ledger: &rtoss_fleet::FleetSnapshot) {
    let mut check = rtoss_verify::check_telemetry_windows(&artifacts.snapshot);
    check.extend(
        rtoss_verify::check_telemetry_conservation(&artifacts.snapshot, Some(ledger)).diagnostics,
    );
    check.extend(rtoss_verify::check_alert_log(&artifacts.snapshot).diagnostics);
    for (i, dump) in artifacts.dumps.iter().enumerate() {
        let label = format!("flight dump[{i}] ({})", dump.reason);
        check.extend(rtoss_verify::check_flight_dump(&label, &dump.json).diagnostics);
    }
    if check.has_errors() {
        eprint!("{}", check.render());
        eprintln!("fleet_bench: telemetry failed RV080-RV083 verification");
        std::process::exit(1);
    }
}

/// Runs one arm of one load point on a fresh fleet and returns its row
/// (plus the telemetry artifacts when `--telemetry` is on).
#[allow(clippy::too_many_arguments)]
fn run_arm(
    tiers: &[(TierSpec, Arc<dyn ServeModel>)],
    args: &Args,
    deadline: Duration,
    schedule: &[Duration],
    degradation: bool,
) -> (ArmRow, Option<TelemetryArtifacts>) {
    // Quotas are set far above the offered load: this benchmark curves
    // pressure degradation, not token-bucket throttling.
    let tenants = tenant_mix()
        .iter()
        .map(|t| {
            let class = match t.id.as_str() {
                "gold-cams" => SloClass::Gold,
                "silver-cams" => SloClass::Silver,
                _ => SloClass::Bulk,
            };
            let mut spec = TenantSpec::new(&t.id, class, 1e9, 1e9);
            // One uniform deadline across classes so the aggregate
            // hit-rate compares like for like between arms.
            spec.deadline = Some(deadline);
            spec
        })
        .collect();
    let fleet = Fleet::start(
        tiers.to_vec(),
        FleetConfig {
            replicas: args.replicas,
            tenants,
            controller: degradation.then(TierControllerConfig::default),
            telemetry: args.telemetry.then(TelemetryConfig::bench),
            control_interval: Duration::from_millis(5),
            serve: ServeConfig {
                workers: args.workers,
                queue_capacity: 32,
                policy: BackpressurePolicy::ShedExpired,
                max_batch: args.max_batch,
                batch_timeout: Duration::from_millis(1),
                energy: None,
                exec: ExecConfig::with_threads(1),
                prewarm: Some(vec![1, 3, args.image, args.image]),
            },
            ..FleetConfig::default()
        },
    )
    .expect("fleet starts");

    let side = args.image;
    let seed = args.seed;
    let summary = run_fleet_open_loop(&fleet, schedule, &tenant_mix(), seed ^ 0xF1EE7, |i| {
        init::uniform(
            &mut init::rng(seed ^ i as u64),
            &[1, 3, side, side],
            0.0,
            1.0,
        )
    });
    // Let the burn ranges drain before shutdown so the settled snapshot
    // carries the full firing -> resolved transition, then capture the
    // telemetry plane (the Arc outlives the fleet).
    let artifacts = fleet.telemetry().map(|tel| {
        let snapshot = wait_for_resolve(&tel, Duration::from_secs(4));
        TelemetryArtifacts {
            prom: snapshot.to_prometheus(),
            dumps: tel.dumps(),
            snapshot,
        }
    });
    let snapshot = fleet.shutdown();

    // A benchmark over a leaky ledger reports fiction: conservation and
    // replica-state consistency are preconditions for the numbers.
    let mut check = rtoss_verify::check_fleet_ledger(&snapshot);
    check.extend(rtoss_verify::check_fleet_replicas(&snapshot).diagnostics);
    if check.has_errors() {
        eprint!("{}", check.render());
        eprintln!("fleet_bench: fleet snapshot failed RV062/RV063 verification");
        std::process::exit(1);
    }
    if let Some(a) = &artifacts {
        verify_telemetry(a, &snapshot);
    }

    let row = ArmRow {
        degradation,
        deadline_hit_rate: summary.deadline_hit_rate(),
        summary,
        served_map: snapshot.served_map_mean().unwrap_or(0.0),
        tier_mix: snapshot
            .tier_mix()
            .into_iter()
            .map(|(tier, frames)| TierMixRow { tier, frames })
            .collect(),
        tier_downgrades: snapshot.tier_downgrades,
        tier_upgrades: snapshot.tier_upgrades,
        routed_affinity: snapshot.routed_affinity,
        routed_spill: snapshot.routed_spill,
    };
    (row, artifacts)
}

/// Writes `text` to `path`, creating parent directories.
fn write_output(path: &str, text: &str) {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        std::fs::create_dir_all(dir).expect("output dir");
    }
    std::fs::write(p, text).expect("write output");
}

fn mix_cell(arm: &ArmRow) -> String {
    arm.tier_mix
        .iter()
        .map(|t| format!("{}:{}", t.tier, t.frames))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let args = parse_args();
    if args.telemetry {
        rtoss_obs::set_series_enabled(true);
    }

    println!(
        "fleet_bench: {} replicas x {} workers, max batch {}, image {}, seed {}, \
         burst {}, ~{:.1}s per load point",
        args.replicas,
        args.workers,
        args.max_batch,
        args.image,
        args.seed,
        args.burst,
        args.duration_s
    );
    println!("fleet_bench: building dense/3EP/2EP tier stack...");
    let tiers: Vec<(TierSpec, Arc<dyn ServeModel>)> = vec![
        (TierSpec::new("dense", 75.0), build_tier(None, args.seed)),
        (
            TierSpec::new("3EP", 73.9),
            build_tier(Some(EntryPattern::Three), args.seed),
        ),
        (
            TierSpec::new("2EP", 72.6),
            build_tier(Some(EntryPattern::Two), args.seed),
        ),
    ];

    let dense_frame_ms = calibrate_frame_ms(
        &tiers[0].1,
        args.image,
        args.seed,
        args.replicas * args.workers,
    );
    // Saturation estimate: every worker on every replica serving
    // single-frame batches of the dense tier back to back.
    let sat_qps = (args.replicas * args.workers) as f64 * 1e3 / dense_frame_ms;
    let deadline_ms = if args.deadline_ms > 0.0 {
        args.deadline_ms
    } else {
        (8.0 * dense_frame_ms).max(5.0)
    };
    let deadline = Duration::from_secs_f64(deadline_ms / 1e3);
    println!(
        "fleet_bench: dense frame {:.2} ms -> saturation ~{:.0} qps, deadline {:.1} ms",
        dense_frame_ms, sat_qps, deadline_ms
    );

    let mut points = Vec::new();
    let mut telemetry_artifacts: Vec<(f64, TelemetryArtifacts)> = Vec::new();
    for &multiplier in &args.loads {
        let qps = multiplier * sat_qps;
        let n = (qps * args.duration_s).ceil().max(8.0) as usize;
        let point_seed = args.seed.wrapping_add((multiplier * 1e3) as u64);
        let schedule = if args.burst > 1.0 {
            bursty_schedule(point_seed, qps, n, args.burst)
        } else {
            poisson_schedule(point_seed, qps, n)
        };
        println!(
            "fleet_bench: load {multiplier}x ({qps:.0} qps, {n} requests) degradation on/off..."
        );
        let (degraded, artifacts) = run_arm(&tiers, &args, deadline, &schedule, true);
        let (baseline, _) = run_arm(&tiers, &args, deadline, &schedule, false);
        if let Some(a) = artifacts {
            telemetry_artifacts.push((multiplier, a));
        }
        points.push(LoadPoint {
            multiplier,
            qps,
            requests: n as u64,
            degraded,
            baseline,
        });
    }

    let degradation_wins_overload = points
        .iter()
        .filter(|p| p.multiplier >= 2.0)
        .all(|p| p.degraded.deadline_hit_rate > p.baseline.deadline_hit_rate);

    let mut rows = Vec::new();
    for p in &points {
        for arm in [&p.degraded, &p.baseline] {
            rows.push(vec![
                format!("{:.1}x", p.multiplier),
                if arm.degradation { "degrade" } else { "pinned" }.to_string(),
                format!("{:.0}", p.qps),
                format!("{:.1}%", 100.0 * arm.deadline_hit_rate),
                format!("{:.2}", arm.summary.p50_ms),
                format!("{:.2}", arm.summary.p99_ms),
                format!("{:.1}", arm.served_map),
                format!("{}", arm.tier_downgrades),
                mix_cell(arm),
            ]);
        }
    }
    let table = format_table(
        "Fleet degradation curve (deadline-hit-rate under overload)",
        &[
            "load", "arm", "qps", "hit", "p50 ms", "p99 ms", "mAP", "downs", "tier mix",
        ],
        &rows,
    );
    print!("{table}");
    println!(
        "\ndegradation {} the pinned-dense baseline at every >= 2x load point",
        if degradation_wins_overload {
            "strictly beats"
        } else {
            "DOES NOT beat"
        }
    );

    let report = FleetBenchReport {
        seed: args.seed,
        replicas: args.replicas as u64,
        workers: args.workers as u64,
        max_batch: args.max_batch as u64,
        image: args.image as u64,
        deadline_ms,
        burst: args.burst,
        dense_frame_ms,
        sat_qps,
        duration_s: args.duration_s,
        degradation_wins_overload,
        points,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: FleetBenchReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report, "serde round-trip must be lossless");
    write_output(&args.out, &json);
    let txt_out = std::path::Path::new(&args.out)
        .with_extension("txt")
        .to_string_lossy()
        .into_owned();
    write_output(&txt_out, &table);
    println!("report: {} + {}", args.out, txt_out);

    if args.telemetry {
        write_telemetry_artifacts(&args, &telemetry_artifacts);
    }

    if args.strict && !degradation_wins_overload {
        eprintln!("fleet_bench: --strict: degradation failed to beat the baseline under overload");
        std::process::exit(1);
    }
}

/// Writes the telemetry artifacts of the most-overloaded degraded arm
/// next to the report, and under `--strict` requires the bulk tenant's
/// admission alert to have fired *and* resolved there.
fn write_telemetry_artifacts(args: &Args, artifacts: &[(f64, TelemetryArtifacts)]) {
    let Some((multiplier, chosen)) = artifacts
        .iter()
        .max_by(|(a, _), (b, _)| a.total_cmp(b))
        .map(|(m, a)| (*m, a))
    else {
        eprintln!("fleet_bench: --telemetry produced no artifacts (no degraded arm ran)");
        std::process::exit(1);
    };
    let dir = std::path::Path::new(&args.out)
        .parent()
        .map_or_else(|| ".".to_string(), |d| d.to_string_lossy().into_owned());
    let snap_json =
        serde_json::to_string_pretty(&chosen.snapshot).expect("telemetry snapshot serializes");
    let snap_path = format!("{dir}/fleet_telemetry.json");
    let prom_path = format!("{dir}/fleet_telemetry.prom");
    write_output(&snap_path, &snap_json);
    write_output(&prom_path, &chosen.prom);
    let mut written = vec![snap_path, prom_path];
    if let Some(dump) = chosen.dumps.first() {
        let flight_path = format!("{dir}/fleet_flight.json");
        write_output(&flight_path, &dump.json);
        written.push(flight_path);
    }
    let bulk_fired = chosen
        .snapshot
        .alerts
        .iter()
        .any(|a| a.rule == "admission" && a.subject.starts_with("bulk") && a.state == "firing");
    let bulk_resolved =
        chosen.snapshot.alerts.iter().any(|a| {
            a.rule == "admission" && a.subject.starts_with("bulk") && a.state == "resolved"
        });
    println!(
        "telemetry: {multiplier}x arm, {} alert transition(s), {} flight dump(s), \
         bulk admission fired={bulk_fired} resolved={bulk_resolved}",
        chosen.snapshot.alerts.len(),
        chosen.dumps.len(),
    );
    println!("telemetry artifacts: {}", written.join(" + "));
    if args.strict && !(bulk_fired && bulk_resolved) {
        eprintln!(
            "fleet_bench: --strict --telemetry: bulk admission alert did not fire and resolve \
             at the {multiplier}x point"
        );
        std::process::exit(1);
    }
}
