//! Regenerates **Fig. 4**: sparsity (compression) ratio achieved by
//! every framework on YOLOv5s and RetinaNet, normalised to the Base
//! Model.
//!
//! Every number here is *measured*: each pruner runs on the full-scale
//! weight tensors and the compression ratio is counted from the
//! surviving weights.

use rtoss_bench::{print_table, run_roster};
use rtoss_models::{retinanet, yolov5s, DetectorModel};

/// Approximate ratios read off the paper's Fig. 4 bars (normalised to
/// BM = 1): printed alongside for shape comparison.
const PAPER_YOLO: &[(&str, f64)] = &[
    ("BM", 1.0),
    ("PD", 3.2),
    ("NMS", 2.5),
    ("NS", 1.7),
    ("PF", 1.7),
    ("NP", 1.9),
    ("R-TOSS (3EP)", 2.9),
    ("R-TOSS (2EP)", 4.4),
];
const PAPER_RETINA: &[(&str, f64)] = &[
    ("BM", 1.0),
    ("PD", 2.2),
    ("NMS", 1.9),
    ("NS", 1.5),
    ("PF", 1.5),
    ("NP", 1.7),
    ("R-TOSS (3EP)", 2.4),
    ("R-TOSS (2EP)", 2.89),
];

fn sweep(name: &str, build: impl Fn() -> DetectorModel, paper: &[(&str, f64)]) {
    let runs = run_roster(build);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let paper_v = paper
                .iter()
                .find(|(n, _)| *n == r.name)
                .map(|&(_, v)| format!("{v}"))
                .unwrap_or_else(|| "-".into());
            vec![
                r.name.clone(),
                format!("{:.2}x", r.report.compression_ratio()),
                format!("{:.1}%", r.report.overall_sparsity() * 100.0),
                paper_v,
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 4 ({name}): sparsity ratio vs BM"),
        &[
            "Method",
            "Compression (measured)",
            "Sparsity",
            "Paper (approx)",
        ],
        &rows,
    );
}

fn main() {
    eprintln!("building and pruning full-scale YOLOv5s with 8 methods...");
    sweep(
        "YOLOv5s",
        || yolov5s(80, 42).expect("yolov5s builds"),
        PAPER_YOLO,
    );
    eprintln!("building and pruning full-scale RetinaNet with 8 methods...");
    sweep(
        "RetinaNet",
        || retinanet(80, 42).expect("retinanet builds"),
        PAPER_RETINA,
    );
    println!(
        "\nShape check: R-TOSS (2EP) achieves the highest compression on both\n\
         models; R-TOSS (3EP) and PD bracket the unstructured/structured\n\
         baselines, matching the paper's Fig. 4 ordering."
    );
}
