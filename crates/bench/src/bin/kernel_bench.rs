//! Microkernel sparsity sweep: where does each conv format win?
//!
//! Times one 3×3 conv layer at every pruning level (2EP/3EP/4EP taps
//! per kernel, plus the unpruned dense weight) through all four
//! executors — the scalar reference walk, the register-tiled pattern
//! microkernel, the COO path, and the dense 9-tap microkernel — and
//! reports the fig6-style crossover: pattern-tiled wins at high
//! sparsity, dense wins once most taps survive, and COO loses at equal
//! nnz because its irregular dispatch defeats the monomorphized inner
//! loops. Each row also compiles the layer through the plan-time
//! *timed* autotuner and reports which format it picked, so the sweep
//! doubles as an end-to-end check that the tuner tracks the
//! measurements.
//!
//! ```text
//! kernel_bench [--reps N] [--image N] [--channels N] [--out-dir PATH] [--gate]
//! ```
//!
//! `--gate` exits non-zero when the pattern-tiled kernel is slower
//! than the scalar reference (beyond a 5% jitter allowance) on any
//! pattern-pruned row — the whole point of the microkernel layer. The
//! gate self-skips when a timer-stability calibration shows the host
//! cannot produce repeatable minima (noisy CI neighbours).
//!
//! Writes `results/kernels/kernel_bench.txt` + `.json` by default.
//! All four executors are bit-identical by construction (rtoss-verify
//! RV092), so the deltas here are pure kernel-strategy effects.

use rtoss_bench::print_table;
use rtoss_core::pattern::canonical_set;
use rtoss_core::prune3x3::prune_3x3_weights;
use rtoss_sparse::exec::{
    conv2d_dense_into_with, conv2d_pattern_scalar_into_with, conv2d_pattern_sparse_into_with,
    conv2d_unstructured_into_with, conv_output_shape,
};
use rtoss_sparse::{
    coo_from_pattern, AutotuneMode, ExecutionPlan, FormatChoice, PatternCompressedConv,
    PlanOptions, SparseModel,
};
use rtoss_tensor::exec::Epilogue;
use rtoss_tensor::{init, ExecConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One sparsity level's measurements, all executors, milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KernelRow {
    /// Pruning level: "2EP", "3EP", "4EP", or "dense".
    mode: String,
    /// Fraction of the dense weight tensor that survived pruning.
    density: f64,
    /// Scalar reference executor, best-of-reps ms.
    scalar_ms: f64,
    /// Register-tiled pattern microkernel, best-of-reps ms.
    tiled_ms: f64,
    /// COO executor (same weights, per-run dynamic taps), best-of-reps ms.
    coo_ms: f64,
    /// Dense 9-tap microkernel (zeros included), best-of-reps ms.
    dense_ms: f64,
    /// Format the plan-time timed autotuner picked for this layer.
    autotune_pick: String,
}

impl KernelRow {
    /// Tiled speedup over the scalar reference (>1 = tiling wins).
    fn tiled_speedup(&self) -> f64 {
        self.scalar_ms / self.tiled_ms
    }
    /// Fastest measured format for this row, first-of-min tie-break in
    /// the same candidate order the autotuner uses.
    fn fastest(&self) -> &'static str {
        let candidates = [
            ("pattern", self.tiled_ms),
            ("coo", self.coo_ms),
            ("dense", self.dense_ms),
        ];
        let mut best = 0;
        for (i, &(_, ms)) in candidates.iter().enumerate() {
            if ms < candidates[best].1 {
                best = i;
            }
        }
        candidates[best].0
    }
}

/// The full report written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KernelBenchReport {
    /// Input image side, pixels.
    image: u64,
    /// Channels (both in and out) of the swept layer.
    channels: u64,
    /// Timed repetitions per cell.
    reps: u64,
    /// Relative spread of two back-to-back scalar calibration minima —
    /// the gate self-skips above [`CALIBRATION_SPREAD`].
    timer_spread: f64,
    /// One row per pruning level.
    rows: Vec<KernelRow>,
}

/// Max relative disagreement between two calibration minima before the
/// host is declared too noisy to gate on.
const CALIBRATION_SPREAD: f64 = 0.15;

struct Args {
    reps: usize,
    image: usize,
    channels: usize,
    out_dir: String,
    gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        reps: 20,
        image: 64,
        channels: 32,
        out_dir: "results/kernels".to_string(),
        gate: false,
    };
    fn usage_error(msg: &str) -> ! {
        eprintln!("kernel_bench: {msg}");
        eprintln!(
            "usage: kernel_bench [--reps N] [--image N] [--channels N] [--out-dir PATH] [--gate]"
        );
        std::process::exit(2);
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
        raw.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} takes a number, got {raw:?}")))
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("missing value for {flag}")))
        };
        match flag.as_str() {
            "--reps" => args.reps = number(&flag, &value()),
            "--image" => args.image = number(&flag, &value()),
            "--channels" => args.channels = number(&flag, &value()),
            "--out-dir" => args.out_dir = value(),
            "--gate" => args.gate = true,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

/// Builds the swept layer: a seeded 3×3 conv pruned to `entries` taps
/// per kernel (`None` = unpruned dense weight).
fn build_layer(channels: usize, entries: Option<usize>) -> PatternCompressedConv {
    let mut w = init::uniform(&mut init::rng(0x6B), &[channels, channels, 3, 3], -1.0, 1.0);
    if let Some(n) = entries {
        let set = canonical_set(n).expect("canonical set");
        prune_3x3_weights(&mut w, &set).expect("prunes");
    }
    PatternCompressedConv::from_dense(&w, 1, 1).expect("compresses")
}

/// One timed call of `f`, milliseconds, output pinned so the work
/// cannot be optimized away.
fn call_ms(out: &mut [f32], f: &mut impl FnMut(&mut [f32])) -> f64 {
    let start = Instant::now();
    f(out);
    let ms = 1e3 * start.elapsed().as_secs_f64();
    std::hint::black_box(out[0]);
    ms
}

/// Interleaved min-of-reps over all four executors: one frame each per
/// rep, so clock drift and co-tenant noise hit every path equally.
fn time_quad_ms(
    reps: usize,
    out: &mut [f32],
    scalar: &mut impl FnMut(&mut [f32]),
    tiled: &mut impl FnMut(&mut [f32]),
    coo: &mut impl FnMut(&mut [f32]),
    dense: &mut impl FnMut(&mut [f32]),
) -> (f64, f64, f64, f64) {
    scalar(out); // warm-up
    tiled(out);
    coo(out);
    dense(out);
    let mut ms = [f64::INFINITY; 4];
    for _ in 0..reps {
        ms[0] = ms[0].min(call_ms(out, scalar));
        ms[1] = ms[1].min(call_ms(out, tiled));
        ms[2] = ms[2].min(call_ms(out, coo));
        ms[3] = ms[3].min(call_ms(out, dense));
    }
    (ms[0], ms[1], ms[2], ms[3])
}

/// Compiles a one-conv graph holding this exact layer through the
/// timed autotuner and returns the format it picked.
fn autotune_pick(layer: &PatternCompressedConv, image: usize) -> String {
    let dense_w = layer.to_dense();
    let mut g = rtoss_nn::Graph::new();
    let x = g.add_input("x");
    let c = g
        .add_layer(
            "swept",
            Box::new(rtoss_nn::layers::Conv2d::from_weight(dense_w, 1, 1)),
            x,
        )
        .expect("valid node");
    g.set_outputs(vec![c]).expect("valid output");
    let engine = SparseModel::compile(&g).expect("engine compiles");
    let opts = PlanOptions {
        format: FormatChoice::Auto,
        autotune: AutotuneMode::Timed { reps: 3 },
    };
    let plan = ExecutionPlan::compile_with(&engine, &[1, layer.in_channels(), image, image], &opts)
        .expect("plan compiles");
    plan.summary_for(&engine).steps[0].format.to_string()
}

fn measure(mode: &str, entries: Option<usize>, args: &Args) -> KernelRow {
    let layer = build_layer(args.channels, entries);
    let coo = coo_from_pattern(&layer);
    let dense = layer.to_dense();
    let x_shape = [1, args.channels, args.image, args.image];
    let x = init::uniform(&mut init::rng(0x6C), &x_shape, -1.0, 1.0);
    let bias = vec![0.125f32; args.channels];
    let exec = ExecConfig::serial();
    let out_shape = conv_output_shape(
        &x_shape,
        layer.in_channels(),
        layer.out_channels(),
        3,
        1,
        1,
        "kernel_bench",
    )
    .expect("shape valid");
    let mut out = vec![0.0f32; out_shape.iter().product()];
    let xs = x.as_slice();

    let (scalar_ms, tiled_ms, coo_ms, dense_ms) = time_quad_ms(
        args.reps,
        &mut out,
        &mut |o| {
            conv2d_pattern_scalar_into_with(
                xs,
                &x_shape,
                &layer,
                Some(&bias),
                &Epilogue::NONE,
                o,
                &exec,
            )
            .map(|_| ())
            .expect("scalar runs")
        },
        &mut |o| {
            conv2d_pattern_sparse_into_with(
                xs,
                &x_shape,
                &layer,
                Some(&bias),
                &Epilogue::NONE,
                o,
                &exec,
            )
            .map(|_| ())
            .expect("tiled runs")
        },
        &mut |o| {
            conv2d_unstructured_into_with(
                xs,
                &x_shape,
                &coo,
                Some(&bias),
                &Epilogue::NONE,
                o,
                &exec,
            )
            .map(|_| ())
            .expect("coo runs")
        },
        &mut |o| {
            conv2d_dense_into_with(
                xs,
                &x_shape,
                &dense,
                1,
                1,
                Some(&bias),
                &Epilogue::NONE,
                o,
                &exec,
            )
            .map(|_| ())
            .expect("dense runs")
        },
    );

    let total = (layer.out_channels() * layer.in_channels() * 9) as f64;
    KernelRow {
        mode: mode.to_string(),
        density: layer.stored_weights() as f64 / total,
        scalar_ms,
        tiled_ms,
        coo_ms,
        dense_ms,
        autotune_pick: autotune_pick(&layer, args.image),
    }
}

/// Times the scalar path twice (min-of-reps each) and returns the
/// relative spread of the two minima: a stable host repeats its
/// minimum; a noisy one does not, and the gate must not trust it.
fn calibrate_timer(args: &Args) -> f64 {
    let layer = build_layer(args.channels, Some(3));
    let x_shape = [1, args.channels, args.image, args.image];
    let x = init::uniform(&mut init::rng(0x6D), &x_shape, -1.0, 1.0);
    let bias = vec![0.125f32; args.channels];
    let exec = ExecConfig::serial();
    let mut out = vec![0.0f32; x_shape.iter().product::<usize>()];
    let mut run = |o: &mut [f32]| {
        conv2d_pattern_scalar_into_with(
            x.as_slice(),
            &x_shape,
            &layer,
            Some(&bias),
            &Epilogue::NONE,
            o,
            &exec,
        )
        .map(|_| ())
        .expect("calibration runs")
    };
    run(&mut out); // warm-up
    let mut pass = |reps: usize, out: &mut [f32]| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            best = best.min(call_ms(out, &mut run));
        }
        best
    };
    let a = pass(args.reps.max(5), &mut out);
    let b = pass(args.reps.max(5), &mut out);
    (a - b).abs() / a.min(b)
}

fn main() {
    let args = parse_args();
    println!(
        "kernel_bench: {c}ch {s}x{s} input, {r} reps per executor\n",
        c = args.channels,
        s = args.image,
        r = args.reps
    );

    let timer_spread = calibrate_timer(&args);
    let variants: [(&str, Option<usize>); 4] = [
        ("2EP", Some(2)),
        ("3EP", Some(3)),
        ("4EP", Some(4)),
        ("dense", None),
    ];
    let mut rows = Vec::new();
    for &(mode, entries) in &variants {
        eprintln!("kernel_bench: measuring {mode}...");
        rows.push(measure(mode, entries, &args));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.0}%", 100.0 * r.density),
                format!("{:.3}", r.scalar_ms),
                format!("{:.3}", r.tiled_ms),
                format!("{:.3}", r.coo_ms),
                format!("{:.3}", r.dense_ms),
                format!("{:.2}x", r.tiled_speedup()),
                r.fastest().to_string(),
                r.autotune_pick.clone(),
            ]
        })
        .collect();
    let headers = [
        "mode",
        "density",
        "scalar ms",
        "tiled ms",
        "coo ms",
        "dense ms",
        "tiled x",
        "fastest",
        "autotune",
    ];
    let title = "Conv microkernels across sparsity: scalar vs tiled vs COO vs dense";
    print_table(title, &headers, &table);

    let report = KernelBenchReport {
        image: args.image as u64,
        channels: args.channels as u64,
        reps: args.reps as u64,
        timer_spread,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: KernelBenchReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report, "serde round-trip must be lossless");

    std::fs::create_dir_all(&args.out_dir).expect("output dir");
    let json_path = format!("{}/kernel_bench.json", args.out_dir);
    std::fs::write(&json_path, &json).expect("write json report");
    let mut text = format!("{title}\n\n{}\n", headers.join(" | "));
    for row in &table {
        text.push_str(&row.join(" | "));
        text.push('\n');
    }
    text.push_str(&format!(
        "\nscalar = per-tap reference walk; tiled = register-tiled pattern microkernel\n\
         (monomorphized per tap arity); coo = same weights through per-run dynamic taps;\n\
         dense = 9-tap microkernel including stored zeros. fastest = measured minimum;\n\
         autotune = format the plan-time timed tuner picked for the same layer.\n\
         Timer calibration spread: {timer_spread:.3} (gate trusts the host below {CALIBRATION_SPREAD}).\n\
         All executors are bit-identical (rtoss-verify RV092); deltas are strategy only.\n"
    ));
    let txt_path = format!("{}/kernel_bench.txt", args.out_dir);
    std::fs::write(&txt_path, &text).expect("write text report");
    println!("\nreports: {txt_path}, {json_path} (serde round-trip verified)");

    if args.gate {
        if timer_spread > CALIBRATION_SPREAD {
            println!(
                "gate: skipped (calibration spread {timer_spread:.3} > {CALIBRATION_SPREAD}) — \
                 this host cannot produce repeatable minima, so a pass or fail here would \
                 measure the neighbours, not the kernels"
            );
            return;
        }
        // The microkernel layer exists to beat the scalar walk on
        // pattern-pruned layers; allow 5% jitter so one noisy minimum
        // cannot flip a genuinely-faster kernel into a CI failure.
        let slow: Vec<&KernelRow> = report
            .rows
            .iter()
            .filter(|r| r.mode != "dense" && r.tiled_ms > r.scalar_ms * 1.05)
            .collect();
        if slow.is_empty() {
            println!(
                "gate: tiled kernel >= scalar reference on all pattern-pruned rows ({} checked)",
                report.rows.iter().filter(|r| r.mode != "dense").count()
            );
        } else {
            for r in &slow {
                eprintln!(
                    "gate: {} tiled {:.3} ms slower than scalar {:.3} ms",
                    r.mode, r.tiled_ms, r.scalar_ms
                );
            }
            eprintln!("gate: FAILED on {} row(s)", slow.len());
            std::process::exit(1);
        }
    }
}
