//! Regenerates the **§III kernel census**: the fraction of 1×1
//! convolution layers in YOLOv5s, RetinaNet, and DETR that motivates
//! the 1×1 transformation (paper: 68.42%, 56.14%, 63.46%).

use rtoss_bench::print_table;
use rtoss_models::others::detr_census_spec;
use rtoss_models::{retinanet, yolov5s};

fn main() {
    eprintln!("building model specs...");
    let specs = [
        (yolov5s(80, 1).expect("yolov5s builds").spec, 68.42),
        (retinanet(80, 1).expect("retinanet builds").spec, 56.14),
        (detr_census_spec(), 63.46),
    ];
    let rows: Vec<Vec<String>> = specs
        .iter()
        .map(|(spec, paper)| {
            let c = spec.census();
            vec![
                spec.name.clone(),
                format!("{}", spec.conv_layer_count()),
                format!("{}", c.layers_1x1),
                format!("{:.2}%", c.layer_fraction_1x1() * 100.0),
                format!("{paper}%"),
                format!("{:.2}%", c.kernel_fraction_1x1() * 100.0),
                format!("{:.2} M", spec.params_millions()),
            ]
        })
        .collect();
    print_table(
        "Kernel census (paper section III)",
        &[
            "Model",
            "Conv layers",
            "1x1 layers",
            "1x1 fraction",
            "Paper",
            "1x1 kernels (O*I)",
            "Params",
        ],
        &rows,
    );
    println!(
        "\nNote: the layer-granularity census matches the paper for YOLOv5s\n\
         and RetinaNet. DETR lands higher because we map every transformer\n\
         projection/FFN matrix to a 1x1 conv (documented in EXPERIMENTS.md);\n\
         the qualitative claim — a majority of kernels are 1x1 and would be\n\
         ignored by 3x3-only pattern pruning — holds for all three."
    );
}
