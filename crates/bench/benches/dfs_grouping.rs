//! Algorithm 1 (DFS layer grouping) cost on the twin and full YOLOv5s
//! graphs — the step that amortises pattern selection across groups.

use criterion::{criterion_group, criterion_main, Criterion};
use rtoss_core::dfs::group_layers;
use rtoss_models::{yolov5s, yolov5s_twin};

fn bench_dfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfs_grouping");
    group.sample_size(10);
    let twin = yolov5s_twin(8, 3, 1).unwrap();
    group.bench_function("twin_graph", |b| b.iter(|| group_layers(&twin.graph)));
    let full = yolov5s(80, 1).unwrap();
    group.bench_function("full_yolov5s_graph", |b| {
        b.iter(|| group_layers(&full.graph))
    });
    group.finish();
}

criterion_group!(benches, bench_dfs);
criterion_main!(benches);
