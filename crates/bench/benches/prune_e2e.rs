//! End-to-end pruning pass cost: R-TOSS (with and without DFS grouping)
//! vs the PATDNN baseline on the YOLOv5s twin.

use criterion::{criterion_group, criterion_main, Criterion};
use rtoss_core::baselines::PatDnn;
use rtoss_core::{EntryPattern, Pruner, RTossConfig, RTossPruner};
use rtoss_models::yolov5s_twin;

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_e2e_twin");
    group.sample_size(10);
    group.bench_function("rtoss_2ep_grouped", |b| {
        b.iter(|| {
            let mut m = yolov5s_twin(8, 3, 1).unwrap();
            RTossPruner::new(EntryPattern::Two)
                .prune_graph(&mut m.graph)
                .unwrap()
        })
    });
    group.bench_function("rtoss_2ep_ungrouped", |b| {
        b.iter(|| {
            let mut m = yolov5s_twin(8, 3, 1).unwrap();
            let cfg = RTossConfig {
                use_groups: false,
                ..RTossConfig::new(EntryPattern::Two)
            };
            RTossPruner::with_config(cfg)
                .prune_graph(&mut m.graph)
                .unwrap()
        })
    });
    group.bench_function("patdnn", |b| {
        b.iter(|| {
            let mut m = yolov5s_twin(8, 3, 1).unwrap();
            PatDnn::default().prune_graph(&mut m.graph).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prune);
criterion_main!(benches);
