//! Algorithm 3 (1x1 kernel pooling) throughput on layer sizes from the
//! full-scale models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtoss_core::pattern::canonical_set;
use rtoss_core::prune1x1::prune_1x1_weights;
use rtoss_tensor::init;

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_1x1");
    group.sample_size(10);
    let set = canonical_set(2).unwrap();
    for (o, i) in [(64usize, 64usize), (256, 128), (512, 512)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{o}x{i}")),
            &(o, i),
            |b, &(o, i)| {
                let w = init::uniform(&mut init::rng(5), &[o, i, 1, 1], -1.0, 1.0);
                b.iter(|| {
                    let mut w = w.clone();
                    prune_1x1_weights(&mut w, &set).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
