//! Dense vs pattern-grouped vs unstructured convolution (the measured
//! substrate behind Fig. 6's CPU series), plus a thread-scaling sweep
//! of the tiled parallel executors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtoss_core::pattern::canonical_set;
use rtoss_core::prune3x3::prune_3x3_weights;
use rtoss_sparse::exec::{
    conv2d_pattern_sparse, conv2d_pattern_sparse_with, conv2d_unstructured,
    conv2d_unstructured_with,
};
use rtoss_sparse::{ExecConfig, PatternCompressedConv, UnstructuredSparseConv};
use rtoss_tensor::{init, ops};

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_3x3_64ch_32px");
    group.sample_size(10);
    let x = init::uniform(&mut init::rng(1), &[1, 64, 32, 32], -1.0, 1.0);

    let dense_w = init::uniform(&mut init::rng(2), &[64, 64, 3, 3], -1.0, 1.0);
    group.bench_function("dense", |b| {
        b.iter(|| ops::conv2d(&x, &dense_w, None, 1, 1).unwrap())
    });

    for k in [2usize, 3, 4] {
        let mut w = dense_w.clone();
        prune_3x3_weights(&mut w, &canonical_set(k).unwrap()).unwrap();
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("pattern", format!("{k}EP")),
            &pc,
            |b, pc| b.iter(|| conv2d_pattern_sparse(&x, pc, None).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("coo", format!("{k}EP")), &un, |b, un| {
            b.iter(|| conv2d_unstructured(&x, un, None).unwrap())
        });
    }
    group.finish();
}

/// Thread scaling of the tiled executors: the same 2EP-pruned layer run
/// at 1/2/4/8 intra-op threads through all three execution paths.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_thread_scaling_2EP");
    group.sample_size(10);
    // A wide layer (many output planes) so there are enough tiles to
    // spread across 8 workers.
    let x = init::uniform(&mut init::rng(3), &[2, 64, 32, 32], -1.0, 1.0);
    let mut w = init::uniform(&mut init::rng(4), &[64, 64, 3, 3], -1.0, 1.0);
    prune_3x3_weights(&mut w, &canonical_set(2).unwrap()).unwrap();
    let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
    let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();

    for threads in [1usize, 2, 4, 8] {
        let exec = ExecConfig::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("dense", threads), &exec, |b, exec| {
            b.iter(|| ops::conv2d_with(&x, &w, None, 1, 1, exec).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pattern", threads), &exec, |b, exec| {
            b.iter(|| conv2d_pattern_sparse_with(&x, &pc, None, exec).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("coo", threads), &exec, |b, exec| {
            b.iter(|| conv2d_unstructured_with(&x, &un, None, exec).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv, bench_thread_scaling);
criterion_main!(benches);
