//! Dense vs pattern-grouped vs unstructured convolution (the measured
//! substrate behind Fig. 6's CPU series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtoss_core::pattern::canonical_set;
use rtoss_core::prune3x3::prune_3x3_weights;
use rtoss_sparse::exec::{conv2d_pattern_sparse, conv2d_unstructured};
use rtoss_sparse::{PatternCompressedConv, UnstructuredSparseConv};
use rtoss_tensor::{init, ops};

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_3x3_64ch_32px");
    group.sample_size(10);
    let x = init::uniform(&mut init::rng(1), &[1, 64, 32, 32], -1.0, 1.0);

    let dense_w = init::uniform(&mut init::rng(2), &[64, 64, 3, 3], -1.0, 1.0);
    group.bench_function("dense", |b| {
        b.iter(|| ops::conv2d(&x, &dense_w, None, 1, 1).unwrap())
    });

    for k in [2usize, 3, 4] {
        let mut w = dense_w.clone();
        prune_3x3_weights(&mut w, &canonical_set(k).unwrap()).unwrap();
        let pc = PatternCompressedConv::from_dense(&w, 1, 1).unwrap();
        let un = UnstructuredSparseConv::from_dense(&w, 1, 1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("pattern", format!("{k}EP")),
            &pc,
            |b, pc| b.iter(|| conv2d_pattern_sparse(&x, pc, None).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("coo", format!("{k}EP")), &un, |b, un| {
            b.iter(|| conv2d_unstructured(&x, un, None).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
