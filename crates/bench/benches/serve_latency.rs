//! Microbench: serving-path overhead and micro-batch throughput.
//!
//! Compares a direct `SparseModel::forward` call against the same
//! request travelling the full serving path (queue → micro-batch →
//! worker → ticket), and measures batched-pass throughput at several
//! micro-batch sizes. The gap between the two is the serving stack's
//! overhead budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_serve::{BackpressurePolicy, ServeConfig, Server};
use rtoss_sparse::SparseModel;
use rtoss_tensor::{init, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn engine() -> SparseModel {
    let mut model = rtoss_models::yolov5s_twin(4, 2, 11).expect("model builds");
    RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut model.graph)
        .expect("prunes");
    SparseModel::compile(&model.graph).expect("compiles")
}

fn probe(seed: u64) -> Tensor {
    init::uniform(&mut init::rng(seed), &[1, 3, 32, 32], 0.0, 1.0)
}

fn bench_direct_vs_served(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_latency");
    group.sample_size(10);

    let direct_engine = engine();
    let x = probe(1);
    group.bench_function("direct_forward", |b| {
        b.iter(|| direct_engine.forward(&x).expect("forward"))
    });

    let server = Server::start(
        Arc::new(engine()),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            batch_timeout: Duration::ZERO,
            policy: BackpressurePolicy::Block,
            ..ServeConfig::default()
        },
    );
    group.bench_function("served_single", |b| {
        b.iter(|| {
            server
                .submit(probe(2), None)
                .expect("submit")
                .wait()
                .expect("serve")
        })
    });
    group.finish();
    server.shutdown();
}

fn bench_batched_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_batched");
    group.sample_size(10);
    let direct_engine = engine();
    for &batch in &[1usize, 2, 4, 8] {
        let inputs: Vec<Tensor> = (0..batch).map(|i| probe(100 + i as u64)).collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        group.bench_with_input(
            BenchmarkId::new("forward_batch", batch),
            &refs,
            |b, refs| b.iter(|| direct_engine.forward_batch(refs).expect("batched")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_direct_vs_served, bench_batched_throughput);
criterion_main!(benches);
