//! Pattern-selection throughput: Algorithm 2's inner loop (best-pattern
//! search by masked L2) and the sect. IV.B L2-frequency derivation.

use criterion::{criterion_group, criterion_main, Criterion};
use rtoss_core::pattern::{canonical_set, select_patterns};
use rtoss_tensor::init;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_selection");
    group.sample_size(10);

    let set2 = canonical_set(2).unwrap();
    let set3 = canonical_set(3).unwrap();
    let kernels = init::uniform(&mut init::rng(3), &[1024, 9], -1.0, 1.0);
    group.bench_function("best_for_1024_kernels_2EP", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1024 {
                acc += set2.best_for(&kernels.as_slice()[i * 9..(i + 1) * 9]).0;
            }
            acc
        })
    });
    group.bench_function("best_for_1024_kernels_3EP", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1024 {
                acc += set3.best_for(&kernels.as_slice()[i * 9..(i + 1) * 9]).0;
            }
            acc
        })
    });
    group.bench_function("derive_3EP_set_5000_samples", |b| {
        b.iter(|| select_patterns(3, 9, 5_000, 7).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
