//! Windowed time-series: fixed rings of aligned time buckets.
//!
//! Every metric here is a ring of `spec.windows` slots, each slot
//! holding the aggregate for one **aligned** wall-clock window
//! (`[k·window_ns, (k+1)·window_ns)` of the trace epoch — a sample
//! landing exactly on a boundary belongs to the window it opens). A
//! slot is reused once the ring wraps, so the structure holds the last
//! `windows · window_ns` nanoseconds of history at fixed memory.
//!
//! Design constraints, mirroring [`crate::trace`]:
//!
//! 1. **One atomic load when off.** Every public record method checks
//!    [`series_enabled`] first — a single relaxed atomic load, no
//!    timestamp, no allocation — so serving hot paths instrument
//!    unconditionally.
//! 2. **O(1), lock-cheap record when on.** A sample indexes its slot
//!    directly (`window_index % windows`) and lands with a handful of
//!    atomic adds. The per-metric rotation mutex is taken only when a
//!    slot crosses into a new window — once per `window_ns` per metric,
//!    never on the steady-state path.
//! 3. **No lost samples.** Slot rotation is epoch-guarded: writers
//!    announce themselves on a per-slot in-flight counter before
//!    checking the slot's window tag, and the rotator parks the tag
//!    (tag 0) and waits for in-flight writers to finish before it
//!    harvests and zeroes the cells. Conservation therefore holds
//!    exactly: `total == Σ live windows + evicted` for every lane,
//!    which `rtoss-verify` checks per window across lanes (RV081).
//!
//! Timestamps are nanoseconds since the trace epoch ([`crate::now_ns`]
//! / [`crate::ts_ns`]) — a monotonic source. A sample older than what
//! its slot currently holds (possible after delays longer than the
//! whole ring) is counted in `late` instead of corrupting a newer
//! window.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Environment variable that turns series recording on (`1`, `true`,
/// `on`).
pub const SERIES_ENV: &str = "RTOSS_SERIES";

// 0 = uninitialised (read env on first query), 1 = off, 2 = on.
static SERIES_ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether windowed-series recording is globally enabled. The first
/// call reads [`SERIES_ENV`]; [`set_series_enabled`] overrides it.
#[inline]
pub fn series_enabled() -> bool {
    match SERIES_ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_series_enabled(),
    }
}

#[cold]
fn init_series_enabled() -> bool {
    let on = std::env::var(SERIES_ENV)
        .map(|v| matches!(v.trim(), "1" | "true" | "on"))
        .unwrap_or(false);
    // Racing initialisers agree (both read the same env).
    SERIES_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turns series recording on or off programmatically (overrides
/// [`SERIES_ENV`]).
pub fn set_series_enabled(on: bool) {
    SERIES_ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Ring geometry: aligned window width and slot count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Width of one aligned window, nanoseconds (min 1).
    pub window_ns: u64,
    /// Number of ring slots (min 2): the series keeps the last
    /// `windows` windows.
    pub windows: usize,
}

impl WindowSpec {
    /// Builds a spec, clamping to the minimums (1 ns, 2 slots).
    pub fn new(window_ns: u64, windows: usize) -> Self {
        WindowSpec {
            window_ns: window_ns.max(1),
            windows: windows.max(2),
        }
    }

    /// Index of the window containing `ts_ns` (half-open: a timestamp
    /// exactly on a boundary opens the new window).
    #[inline]
    pub fn window_index(&self, ts_ns: u64) -> u64 {
        ts_ns / self.window_ns
    }

    /// Total history the ring can hold, nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.window_ns.saturating_mul(self.windows as u64)
    }
}

impl Default for WindowSpec {
    /// 250 ms windows × 256 slots = 64 s of history.
    fn default() -> Self {
        WindowSpec::new(250_000_000, 256)
    }
}

// ---------------------------------------------------------------------
// The shared ring engine: N u64 lanes per slot, epoch-guarded rotation.
// ---------------------------------------------------------------------

/// One live window read out of a ring: window index plus one value per
/// lane.
type RawWindow = (u64, Vec<u64>);

#[derive(Debug)]
struct WindowRing {
    spec: WindowSpec,
    lanes: usize,
    /// Per-slot window tag: `window_index + 1`; 0 = empty or rotating.
    tags: Box<[AtomicU64]>,
    /// Per-slot in-flight writer count (rotation waits on it).
    active: Box<[AtomicU64]>,
    /// `windows × lanes` cells, slot-major.
    cells: Box<[AtomicU64]>,
    /// Per-lane totals harvested from slots that rotated out.
    evicted: Box<[AtomicU64]>,
    /// Samples that arrived after their window's slot was reused.
    late: AtomicU64,
    rotate: Mutex<()>,
}

impl WindowRing {
    fn new(spec: WindowSpec, lanes: usize) -> Self {
        let slots = spec.windows;
        WindowRing {
            spec,
            lanes,
            tags: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            active: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            cells: (0..slots * lanes).map(|_| AtomicU64::new(0)).collect(),
            evicted: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            late: AtomicU64::new(0),
            rotate: Mutex::new(()),
        }
    }

    #[inline]
    fn slot_cells(&self, slot: usize) -> &[AtomicU64] {
        &self.cells[slot * self.lanes..(slot + 1) * self.lanes]
    }

    /// Applies `add` to the slot for `ts_ns`'s window, rotating the
    /// slot first if it still holds an older window. Returns `false`
    /// when the sample is too old to land (counted in `late`).
    ///
    /// `harvest` receives the evicted slot's cells (already summed into
    /// `evicted`) — gauges use it to reset non-additive lanes.
    fn record_at(
        &self,
        ts_ns: u64,
        add: impl Fn(&[AtomicU64]),
        reset_extra: impl Fn(&[AtomicU64]),
    ) -> bool {
        let tag = self.spec.window_index(ts_ns) + 1;
        let slot = ((tag - 1) % self.spec.windows as u64) as usize;
        // Announce before reading the tag: the rotator parks the tag
        // and then waits for `active` to drain, so a writer that saw
        // the old tag finishes before the cells are harvested. The
        // SeqCst pair (this RMW / the rotator's park-store + drain-
        // loads) is a store-load fence both sides rely on.
        self.active[slot].fetch_add(1, Ordering::SeqCst);
        let seen = self.tags[slot].load(Ordering::SeqCst);
        if seen == tag {
            add(self.slot_cells(slot));
            self.active[slot].fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        self.active[slot].fetch_sub(1, Ordering::SeqCst);
        if seen > tag {
            self.late.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // Slot holds an older window (or is parked): rotate under the
        // mutex, then land the sample. Loop because another thread may
        // rotate first — to our tag (just add) or past it (late).
        loop {
            let guard = self.rotate.lock().unwrap_or_else(|e| e.into_inner());
            let seen = self.tags[slot].load(Ordering::SeqCst);
            if seen == tag {
                drop(guard);
                self.active[slot].fetch_add(1, Ordering::SeqCst);
                if self.tags[slot].load(Ordering::SeqCst) == tag {
                    add(self.slot_cells(slot));
                    self.active[slot].fetch_sub(1, Ordering::SeqCst);
                    return true;
                }
                self.active[slot].fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            if seen > tag {
                self.late.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            // Park the slot: writers arriving now fall into this same
            // rotate path and queue on the mutex we hold.
            self.tags[slot].store(0, Ordering::SeqCst);
            while self.active[slot].load(Ordering::SeqCst) != 0 {
                std::hint::spin_loop();
            }
            let cells = self.slot_cells(slot);
            if seen != 0 {
                for (lane, cell) in cells.iter().enumerate() {
                    self.evicted[lane].fetch_add(cell.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            }
            for cell in cells {
                cell.store(0, Ordering::Relaxed);
            }
            reset_extra(cells);
            add(cells);
            self.tags[slot].store(tag, Ordering::SeqCst);
            return true;
        }
    }

    /// Live windows (index + per-lane values), sorted by window index.
    /// Taken under the rotation mutex so no slot is mid-harvest.
    fn read(&self) -> Vec<RawWindow> {
        let _guard = self.rotate.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<RawWindow> = Vec::new();
        for slot in 0..self.spec.windows {
            let tag = self.tags[slot].load(Ordering::SeqCst);
            if tag == 0 {
                continue;
            }
            let values = self
                .slot_cells(slot)
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            out.push((tag - 1, values));
        }
        out.sort_unstable_by_key(|(w, _)| *w);
        out
    }

    /// Sums `lane` over the live windows overlapping the trailing
    /// `range_ns` before `now_ns` (aligned: includes the window
    /// containing `now - range`).
    fn range_lane(&self, now_ns: u64, range_ns: u64, lane: usize) -> u64 {
        let hi = self.spec.window_index(now_ns);
        let lo = self.spec.window_index(now_ns.saturating_sub(range_ns));
        let mut sum = 0u64;
        for slot in 0..self.spec.windows {
            let tag = self.tags[slot].load(Ordering::SeqCst);
            if tag == 0 {
                continue;
            }
            let w = tag - 1;
            if w >= lo && w <= hi {
                sum += self.slot_cells(slot)[lane].load(Ordering::Relaxed);
            }
        }
        sum
    }

    fn evicted_lane(&self, lane: usize) -> u64 {
        self.evicted[lane].load(Ordering::Relaxed)
    }

    fn late(&self) -> u64 {
        self.late.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Counter.
// ---------------------------------------------------------------------

/// One live window of a [`WindowedCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSample {
    /// Window start, nanoseconds since the trace epoch (aligned).
    pub start_ns: u64,
    /// Samples recorded in this window.
    pub count: u64,
    /// Sum of the sample values.
    pub sum: u64,
}

/// Point-in-time view of one windowed counter, self-describing enough
/// for `rtoss-verify`'s RV080/RV081 passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Metric name (caller-chosen, e.g. `"offered"`).
    pub name: String,
    /// Window width, nanoseconds.
    pub window_ns: u64,
    /// Live windows, sorted by start.
    pub windows: Vec<WindowSample>,
    /// Grand total of accepted samples (count).
    pub total_count: u64,
    /// Grand total of accepted sample values.
    pub total_sum: u64,
    /// Count harvested from windows that rotated out of the ring.
    pub evicted_count: u64,
    /// Value sum harvested from windows that rotated out.
    pub evicted_sum: u64,
    /// Samples dropped because their window had already been reused.
    pub late: u64,
}

const CTR_COUNT: usize = 0;
const CTR_SUM: usize = 1;

/// A windowed counter: per-window `count` and `sum` plus exact grand
/// totals (`total == Σ live + evicted`, late samples tallied apart).
#[derive(Debug)]
pub struct WindowedCounter {
    ring: WindowRing,
    total_count: AtomicU64,
    total_sum: AtomicU64,
}

impl WindowedCounter {
    /// A zeroed counter over `spec`.
    pub fn new(spec: WindowSpec) -> Self {
        WindowedCounter {
            ring: WindowRing::new(spec, 2),
            total_count: AtomicU64::new(0),
            total_sum: AtomicU64::new(0),
        }
    }

    /// Ring geometry.
    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    /// Records one sample of value 1 at `ts_ns`.
    #[inline]
    pub fn incr_at(&self, ts_ns: u64) {
        self.add_at(ts_ns, 1);
    }

    /// Records one sample of `value` at `ts_ns` (nanoseconds since the
    /// trace epoch). One relaxed atomic load and out when recording is
    /// disabled.
    #[inline]
    pub fn add_at(&self, ts_ns: u64, value: u64) {
        if !series_enabled() {
            return;
        }
        let landed = self.ring.record_at(
            ts_ns,
            |cells| {
                cells[CTR_COUNT].fetch_add(1, Ordering::Relaxed);
                cells[CTR_SUM].fetch_add(value, Ordering::Relaxed);
            },
            |_| {},
        );
        if landed {
            self.total_count.fetch_add(1, Ordering::Relaxed);
            self.total_sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Live windows, sorted by start.
    pub fn samples(&self) -> Vec<WindowSample> {
        self.ring
            .read()
            .into_iter()
            .map(|(w, v)| WindowSample {
                start_ns: w * self.ring.spec.window_ns,
                count: v[CTR_COUNT],
                sum: v[CTR_SUM],
            })
            .collect()
    }

    /// `(count, sum)` over the trailing `range_ns` before `now_ns`
    /// (whole aligned windows, including the partial current one).
    pub fn range(&self, now_ns: u64, range_ns: u64) -> (u64, u64) {
        (
            self.ring.range_lane(now_ns, range_ns, CTR_COUNT),
            self.ring.range_lane(now_ns, range_ns, CTR_SUM),
        )
    }

    /// Grand totals `(count, sum)` of every accepted sample.
    pub fn total(&self) -> (u64, u64) {
        (
            self.total_count.load(Ordering::Relaxed),
            self.total_sum.load(Ordering::Relaxed),
        )
    }

    /// Samples dropped as too old (their window's slot was reused).
    pub fn late(&self) -> u64 {
        self.ring.late()
    }

    /// Self-describing snapshot for export and verification.
    pub fn snapshot(&self, name: &str) -> SeriesSnapshot {
        let (total_count, total_sum) = self.total();
        SeriesSnapshot {
            name: name.to_string(),
            window_ns: self.ring.spec.window_ns,
            windows: self.samples(),
            total_count,
            total_sum,
            evicted_count: self.ring.evicted_lane(CTR_COUNT),
            evicted_sum: self.ring.evicted_lane(CTR_SUM),
            late: self.late(),
        }
    }
}

// ---------------------------------------------------------------------
// Counter set: named lanes sharing one ring, for cross-lane
// conservation laws (offered == admitted + throttled + shed per window).
// ---------------------------------------------------------------------

/// One live window of a [`WindowedSet`]: start plus one count per lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetSample {
    /// Window start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Per-lane counts, in constructor lane order.
    pub counts: Vec<u64>,
}

/// Several named counters sharing one window ring, so samples recorded
/// with the same timestamp land in the **same** window of every lane —
/// the property that makes per-window conservation checks exact.
#[derive(Debug)]
pub struct WindowedSet {
    ring: WindowRing,
    lane_names: Vec<&'static str>,
    totals: Box<[AtomicU64]>,
}

impl WindowedSet {
    /// A zeroed set with one lane per name (at least one).
    pub fn new(spec: WindowSpec, lanes: &[&'static str]) -> Self {
        assert!(!lanes.is_empty(), "a windowed set needs at least one lane");
        WindowedSet {
            ring: WindowRing::new(spec, lanes.len()),
            lane_names: lanes.to_vec(),
            totals: (0..lanes.len()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Ring geometry.
    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    /// Lane names in lane order.
    pub fn lanes(&self) -> &[&'static str] {
        &self.lane_names
    }

    /// Adds 1 to `lane` in the window containing `ts_ns`. One relaxed
    /// atomic load and out when recording is disabled.
    #[inline]
    pub fn incr_at(&self, ts_ns: u64, lane: usize) {
        if !series_enabled() {
            return;
        }
        debug_assert!(lane < self.lane_names.len());
        let landed = self.ring.record_at(
            ts_ns,
            |cells| {
                cells[lane].fetch_add(1, Ordering::Relaxed);
            },
            |_| {},
        );
        if landed {
            self.totals[lane].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds 1 to lanes `a` and `b` in the window containing `ts_ns` as
    /// **one** sample: either both land or both are dropped as late.
    /// Recording the lanes separately would let a racing rotation
    /// split them (one harvested, one late), silently breaking
    /// cross-lane conservation laws by one.
    #[inline]
    pub fn incr_pair_at(&self, ts_ns: u64, a: usize, b: usize) {
        if !series_enabled() {
            return;
        }
        debug_assert!(a < self.lane_names.len() && b < self.lane_names.len());
        let landed = self.ring.record_at(
            ts_ns,
            |cells| {
                cells[a].fetch_add(1, Ordering::Relaxed);
                cells[b].fetch_add(1, Ordering::Relaxed);
            },
            |_| {},
        );
        if landed {
            self.totals[a].fetch_add(1, Ordering::Relaxed);
            self.totals[b].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Live windows, sorted by start.
    pub fn samples(&self) -> Vec<SetSample> {
        self.ring
            .read()
            .into_iter()
            .map(|(w, counts)| SetSample {
                start_ns: w * self.ring.spec.window_ns,
                counts,
            })
            .collect()
    }

    /// Sum of `lane` over the trailing `range_ns` before `now_ns`.
    pub fn range_lane(&self, now_ns: u64, range_ns: u64, lane: usize) -> u64 {
        self.ring.range_lane(now_ns, range_ns, lane)
    }

    /// Grand total of `lane` across the whole run.
    pub fn total_lane(&self, lane: usize) -> u64 {
        self.totals[lane].load(Ordering::Relaxed)
    }

    /// Count harvested from rotated-out windows for `lane`.
    pub fn evicted_lane(&self, lane: usize) -> u64 {
        self.ring.evicted_lane(lane)
    }

    /// Samples dropped as too old.
    pub fn late(&self) -> u64 {
        self.ring.late()
    }

    /// One [`SeriesSnapshot`] per lane (shared windows), named
    /// `"{prefix}{lane}"`. Lane counts double as both `count` and
    /// `sum` (every sample has value 1).
    pub fn snapshots(&self, prefix: &str) -> Vec<SeriesSnapshot> {
        let windows = self.samples();
        self.lane_names
            .iter()
            .enumerate()
            .map(|(lane, lane_name)| SeriesSnapshot {
                name: format!("{prefix}{lane_name}"),
                window_ns: self.ring.spec.window_ns,
                windows: windows
                    .iter()
                    .map(|w| WindowSample {
                        start_ns: w.start_ns,
                        count: w.counts[lane],
                        sum: w.counts[lane],
                    })
                    .collect(),
                total_count: self.total_lane(lane),
                total_sum: self.total_lane(lane),
                evicted_count: self.evicted_lane(lane),
                evicted_sum: self.evicted_lane(lane),
                late: self.late(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Gauge.
// ---------------------------------------------------------------------

const GAUGE_COUNT: usize = 0;
const GAUGE_LAST: usize = 1;
const GAUGE_MIN: usize = 2;
const GAUGE_MAX: usize = 3;

/// One live window of a [`WindowedGauge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSample {
    /// Window start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Observations in this window.
    pub count: u64,
    /// Last observed value.
    pub last: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

/// A windowed gauge: per-window last/min/max of an observed value
/// (queue depth, tier index, occupancy fraction). Values are stored as
/// `f64` bit patterns; min/max use CAS loops, so concurrent observers
/// cannot lose an extremum.
#[derive(Debug)]
pub struct WindowedGauge {
    ring: WindowRing,
}

impl WindowedGauge {
    /// A zeroed gauge over `spec`.
    pub fn new(spec: WindowSpec) -> Self {
        WindowedGauge {
            ring: WindowRing::new(spec, 4),
        }
    }

    /// Ring geometry.
    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    /// Observes `value` at `ts_ns`. One relaxed atomic load and out
    /// when recording is disabled.
    pub fn set_at(&self, ts_ns: u64, value: f64) {
        if !series_enabled() {
            return;
        }
        let bits = value.to_bits();
        let update = |cells: &[AtomicU64]| {
            cells[GAUGE_COUNT].fetch_add(1, Ordering::Relaxed);
            cells[GAUGE_LAST].store(bits, Ordering::Relaxed);
            for (lane, keep_new) in [(GAUGE_MIN, value), (GAUGE_MAX, value)] {
                let want_min = lane == GAUGE_MIN;
                let cell = &cells[lane];
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let cur_v = f64::from_bits(cur);
                    let replace = if want_min {
                        keep_new < cur_v
                    } else {
                        keep_new > cur_v
                    };
                    if !replace {
                        break;
                    }
                    match cell.compare_exchange_weak(
                        cur,
                        bits,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
            }
        };
        // A fresh slot starts min at +inf and max at -inf so the first
        // observation wins both races.
        self.ring.record_at(ts_ns, update, |cells| {
            cells[GAUGE_MIN].store(f64::INFINITY.to_bits(), Ordering::Relaxed);
            cells[GAUGE_MAX].store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        });
    }

    /// Live windows, sorted by start.
    pub fn samples(&self) -> Vec<GaugeSample> {
        self.ring
            .read()
            .into_iter()
            .map(|(w, v)| GaugeSample {
                start_ns: w * self.ring.spec.window_ns,
                count: v[GAUGE_COUNT],
                last: f64::from_bits(v[GAUGE_LAST]),
                min: f64::from_bits(v[GAUGE_MIN]),
                max: f64::from_bits(v[GAUGE_MAX]),
            })
            .collect()
    }

    /// The most recent observation, if any window is live.
    pub fn last(&self) -> Option<f64> {
        self.samples().last().map(|s| s.last)
    }
}

// ---------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------

/// One live window of a [`WindowedHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Window start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Per-bucket counts; `buckets.len() == bounds.len() + 1` (the
    /// last bucket is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Total samples (`Σ buckets`).
    pub count: u64,
    /// Sum of the recorded values.
    pub sum: u64,
}

/// A windowed histogram over caller-chosen inclusive upper bounds
/// (ascending); values above the last bound land in an overflow
/// bucket. Per-window bucket counts plus count/sum.
#[derive(Debug)]
pub struct WindowedHistogram {
    ring: WindowRing,
    bounds: Vec<u64>,
}

impl WindowedHistogram {
    /// A zeroed histogram over `spec` with the given ascending
    /// inclusive upper bounds (at least one).
    pub fn new(spec: WindowSpec, bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        WindowedHistogram {
            // Lanes: bounds+1 buckets, then count, then sum.
            ring: WindowRing::new(spec, bounds.len() + 3),
            bounds: bounds.to_vec(),
        }
    }

    /// Ring geometry.
    pub fn spec(&self) -> WindowSpec {
        self.ring.spec
    }

    /// The inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records `value` at `ts_ns`. One relaxed atomic load and out
    /// when recording is disabled.
    pub fn record_at(&self, ts_ns: u64, value: u64) {
        if !series_enabled() {
            return;
        }
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        let count_lane = self.bounds.len() + 1;
        let sum_lane = self.bounds.len() + 2;
        self.ring.record_at(
            ts_ns,
            |cells| {
                cells[bucket].fetch_add(1, Ordering::Relaxed);
                cells[count_lane].fetch_add(1, Ordering::Relaxed);
                cells[sum_lane].fetch_add(value, Ordering::Relaxed);
            },
            |_| {},
        );
    }

    /// Live windows, sorted by start.
    pub fn samples(&self) -> Vec<HistogramSample> {
        let buckets = self.bounds.len() + 1;
        self.ring
            .read()
            .into_iter()
            .map(|(w, v)| HistogramSample {
                start_ns: w * self.ring.spec.window_ns,
                buckets: v[..buckets].to_vec(),
                count: v[buckets],
                sum: v[buckets + 1],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn spec_ms(window_ms: u64, windows: usize) -> WindowSpec {
        WindowSpec::new(window_ms * 1_000_000, windows)
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = test_lock();
        set_series_enabled(false);
        let c = WindowedCounter::new(spec_ms(10, 4));
        c.add_at(0, 5);
        c.incr_at(1);
        set_series_enabled(true);
        assert!(c.samples().is_empty());
        assert_eq!(c.total(), (0, 0));
        set_series_enabled(false);
    }

    #[test]
    fn counter_buckets_align_and_conserve() {
        let _g = test_lock();
        set_series_enabled(true);
        let w = 10_000_000; // 10 ms
        let c = WindowedCounter::new(WindowSpec::new(w, 8));
        c.add_at(0, 1);
        c.add_at(w - 1, 2); // same window
        c.add_at(w, 3); // boundary opens the next window
        c.add_at(3 * w + 5, 4);
        let s = c.samples();
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.iter().map(|x| x.start_ns).collect::<Vec<_>>(),
            vec![0, w, 3 * w]
        );
        assert_eq!((s[0].count, s[0].sum), (2, 3));
        assert_eq!((s[1].count, s[1].sum), (1, 3));
        assert_eq!((s[2].count, s[2].sum), (1, 4));
        assert_eq!(c.total(), (4, 10));
        assert_eq!(c.late(), 0);
        let snap = c.snapshot("demo");
        assert_eq!(snap.total_count, 4);
        assert_eq!(snap.evicted_count, 0);
        set_series_enabled(false);
    }

    #[test]
    fn ring_wrap_evicts_into_totals_and_old_samples_go_late() {
        let _g = test_lock();
        set_series_enabled(true);
        let w = 1_000_000;
        let c = WindowedCounter::new(WindowSpec::new(w, 4));
        for k in 0..10u64 {
            c.add_at(k * w, k + 1);
        }
        let s = c.samples();
        assert_eq!(s.len(), 4, "ring keeps the last 4 windows");
        assert_eq!(s[0].start_ns, 6 * w);
        let live: u64 = s.iter().map(|x| x.count).sum();
        let (total, _) = c.total();
        let snap = c.snapshot("wrap");
        assert_eq!(total, live + snap.evicted_count, "conservation across wrap");
        // A monotonic clock can still deliver a sample whose window
        // rotated out long ago (e.g. a long-delayed drain): dropped as
        // late, never written into a newer window.
        c.add_at(0, 99);
        assert_eq!(c.late(), 1);
        assert_eq!(c.total(), (total, snap.total_sum));
        set_series_enabled(false);
    }

    #[test]
    fn range_sums_trailing_windows() {
        let _g = test_lock();
        set_series_enabled(true);
        let w = 1_000_000;
        let c = WindowedCounter::new(WindowSpec::new(w, 16));
        for k in 0..8u64 {
            c.add_at(k * w + 1, 1);
        }
        let now = 7 * w + 2;
        // Trailing 2 ms from within window 7 covers windows 5, 6, 7.
        let (count, _) = c.range(now, 2 * w);
        assert_eq!(count, 3);
        let (all, _) = c.range(now, 100 * w);
        assert_eq!(all, 8);
        set_series_enabled(false);
    }

    #[test]
    fn set_lanes_share_windows() {
        let _g = test_lock();
        set_series_enabled(true);
        let w = 1_000_000;
        let s = WindowedSet::new(WindowSpec::new(w, 8), &["offered", "admitted", "shed"]);
        for k in 0..6u64 {
            let ts = k * w / 2;
            s.incr_at(ts, 0);
            s.incr_at(ts, if k % 3 == 0 { 2 } else { 1 });
        }
        for win in s.samples() {
            let offered = win.counts[0];
            assert_eq!(
                offered,
                win.counts[1] + win.counts[2],
                "per-window conservation at {}",
                win.start_ns
            );
        }
        assert_eq!(s.total_lane(0), 6);
        assert_eq!(s.total_lane(1) + s.total_lane(2), 6);
        let snaps = s.snapshots("tenant/");
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].name, "tenant/offered");
        set_series_enabled(false);
    }

    #[test]
    fn gauge_tracks_last_min_max_per_window() {
        let _g = test_lock();
        set_series_enabled(true);
        let w = 1_000_000;
        let g = WindowedGauge::new(WindowSpec::new(w, 4));
        g.set_at(10, 3.0);
        g.set_at(20, 1.0);
        g.set_at(30, 2.0);
        g.set_at(w + 1, 7.5);
        let s = g.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(
            (s[0].count, s[0].last, s[0].min, s[0].max),
            (3, 2.0, 1.0, 3.0)
        );
        assert_eq!((s[1].count, s[1].last), (1, 7.5));
        assert_eq!(g.last(), Some(7.5));
        set_series_enabled(false);
    }

    #[test]
    fn histogram_buckets_by_inclusive_bound() {
        let _g = test_lock();
        set_series_enabled(true);
        let h = WindowedHistogram::new(spec_ms(1, 4), &[10, 100]);
        h.record_at(0, 10); // first bucket (inclusive)
        h.record_at(0, 11); // second
        h.record_at(0, 1000); // overflow
        let s = h.samples();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].buckets, vec![1, 1, 1]);
        assert_eq!(s[0].count, 3);
        assert_eq!(s[0].sum, 1021);
        set_series_enabled(false);
    }

    #[test]
    fn concurrent_recording_conserves_counts() {
        let _g = test_lock();
        set_series_enabled(true);
        let w = 50_000; // 50 µs windows: rotations happen constantly
        let c = std::sync::Arc::new(WindowedCounter::new(WindowSpec::new(w, 8)));
        let threads = 4;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.incr_at(crate::now_ns());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot("conc");
        let live: u64 = snap.windows.iter().map(|x| x.count).sum();
        // A thread preempted between its now_ns() and the add can land
        // after its window rotated out (counted late) — but nothing is
        // ever lost silently.
        assert_eq!(snap.total_count + snap.late, threads as u64 * per_thread);
        assert_eq!(
            snap.total_count,
            live + snap.evicted_count,
            "no sample lost across rotations"
        );
        set_series_enabled(false);
    }
}
