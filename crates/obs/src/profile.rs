//! Per-layer profile aggregation: turns a drained [`Trace`] into a
//! self-time table.
//!
//! Self time is the span's duration minus the durations of its
//! *immediate* synchronous children (same thread, interval-contained).
//! For the executor's `layer:*` spans this attributes time to the
//! layer that actually spent it rather than to enclosing phases.

use crate::trace::{EventKind, Trace, TraceEvent};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregated timing for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name (e.g. `layer:model.9.cv2`).
    pub name: String,
    /// Number of occurrences.
    pub count: u64,
    /// Total wall time across occurrences, nanoseconds.
    pub total_ns: u64,
    /// Total self time (total minus immediate children), nanoseconds.
    pub self_ns: u64,
}

impl SpanStat {
    /// Mean wall time per occurrence, milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e6
        }
    }
}

/// A per-name profile built from a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// One entry per distinct span name, sorted by descending self
    /// time.
    pub stats: Vec<SpanStat>,
}

fn span_events(trace: &Trace) -> HashMap<u64, Vec<&TraceEvent>> {
    let mut by_tid: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
    for e in &trace.events {
        if e.kind == EventKind::Span {
            by_tid.entry(e.tid).or_default().push(e);
        }
    }
    by_tid
}

impl Profile {
    /// Builds a profile from every synchronous span in the trace.
    ///
    /// Per thread, spans are sorted by (start ascending, duration
    /// descending) so a parent always precedes its children; a stack
    /// walk then charges each span's duration against its immediate
    /// parent's self time. Async events and instants are ignored.
    pub fn from_trace(trace: &Trace) -> Profile {
        let mut acc: HashMap<&str, SpanStat> = HashMap::new();
        for (_tid, mut spans) in span_events(trace) {
            spans.sort_by(|a, b| a.ts_ns.cmp(&b.ts_ns).then_with(|| b.dur_ns.cmp(&a.dur_ns)));
            // Stack of (end_ns, index into a parallel self-time vec).
            let mut self_ns: Vec<u64> = Vec::with_capacity(spans.len());
            let mut stack: Vec<(u64, usize)> = Vec::new();
            for (i, e) in spans.iter().enumerate() {
                self_ns.push(e.dur_ns);
                let end = e.ts_ns + e.dur_ns;
                while let Some(&(parent_end, _)) = stack.last() {
                    if e.ts_ns >= parent_end {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&(_, parent_idx)) = stack.last() {
                    self_ns[parent_idx] = self_ns[parent_idx].saturating_sub(e.dur_ns);
                }
                stack.push((end, i));
            }
            for (e, s) in spans.iter().zip(&self_ns) {
                let stat = acc.entry(e.name.as_ref()).or_insert_with(|| SpanStat {
                    name: e.name.to_string(),
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
                stat.count += 1;
                stat.total_ns += e.dur_ns;
                stat.self_ns += s;
            }
        }
        let mut stats: Vec<SpanStat> = acc.into_values().collect();
        stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        Profile { stats }
    }

    /// Entries whose name starts with `prefix` (e.g. `"layer:"`), order
    /// preserved.
    pub fn with_prefix(&self, prefix: &str) -> Vec<&SpanStat> {
        self.stats
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    /// Renders a fixed-width top-N table (all rows if `top_n` is 0),
    /// restricted to names starting with `prefix` when non-empty.
    pub fn render_table(&self, prefix: &str, top_n: usize) -> String {
        let rows: Vec<&SpanStat> = if prefix.is_empty() {
            self.stats.iter().collect()
        } else {
            self.with_prefix(prefix)
        };
        let shown = if top_n == 0 {
            rows.len()
        } else {
            top_n.min(rows.len())
        };
        let total_self: u64 = rows.iter().map(|s| s.self_ns).sum();
        let name_w = rows[..shown]
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>12}  {:>12}  {:>6}",
            "name", "count", "self(ms)", "total(ms)", "self%"
        );
        for s in &rows[..shown] {
            let pct = if total_self == 0 {
                0.0
            } else {
                100.0 * s.self_ns as f64 / total_self as f64
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>7}  {:>12.3}  {:>12.3}  {:>5.1}%",
                s.name,
                s.count,
                s.self_ns as f64 / 1e6,
                s.total_ns as f64 / 1e6,
                pct
            );
        }
        if shown < rows.len() {
            let rest: u64 = rows[shown..].iter().map(|s| s.self_ns).sum();
            let pct = if total_self == 0 {
                0.0
            } else {
                100.0 * rest as f64 / total_self as f64
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>7}  {:>12.3}  {:>12}  {:>5.1}%",
                format!("(+{} more)", rows.len() - shown),
                "",
                rest as f64 / 1e6,
                "",
                pct
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(name: &'static str, tid: u64, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: Cow::Borrowed(name),
            kind: EventKind::Span,
            tid,
            ts_ns: ts,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_immediate_children_only() {
        // execute [0, 100) contains layer:a [10, 40) which contains
        // conv2d [15, 35); layer:b [50, 90) is a sibling.
        let trace = Trace {
            events: vec![
                span("conv2d", 1, 15, 20),
                span("layer:a", 1, 10, 30),
                span("layer:b", 1, 50, 40),
                span("execute", 1, 0, 100),
            ],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        let get = |n: &str| p.stats.iter().find(|s| s.name == n).unwrap();
        assert_eq!(get("execute").self_ns, 100 - 30 - 40);
        assert_eq!(get("layer:a").self_ns, 30 - 20);
        assert_eq!(get("layer:a").total_ns, 30);
        assert_eq!(get("conv2d").self_ns, 20);
        assert_eq!(get("layer:b").self_ns, 40);
    }

    #[test]
    fn aggregates_across_occurrences_and_threads() {
        let trace = Trace {
            events: vec![
                span("layer:a", 1, 0, 10),
                span("layer:a", 1, 20, 30),
                span("layer:a", 2, 0, 5),
            ],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        assert_eq!(p.stats.len(), 1);
        assert_eq!(p.stats[0].count, 3);
        assert_eq!(p.stats[0].total_ns, 45);
        assert_eq!(p.stats[0].self_ns, 45);
    }

    #[test]
    fn table_sorts_by_self_time_and_truncates() {
        let trace = Trace {
            events: vec![
                span("layer:small", 1, 0, 10),
                span("layer:big", 1, 100, 1000),
                span("layer:mid", 1, 2000, 500),
                span("other", 1, 3000, 9999),
            ],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        let table = p.render_table("layer:", 2);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].starts_with("layer:big"));
        assert!(lines[2].starts_with("layer:mid"));
        assert!(lines[3].contains("(+1 more)"));
        assert!(!table.contains("other"), "prefix filter applies");
    }
}
