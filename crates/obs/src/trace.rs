//! The tracing core: lock-cheap span recording into per-thread buffers.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost when off.** Opening a span with tracing disabled is
//!    one relaxed atomic load and two thread-local `Cell` reads — no
//!    allocation, no lock, no timestamp. The serving and executor hot
//!    paths are instrumented unconditionally and rely on this.
//! 2. **Lock-cheap when on.** Each thread records into its own bounded
//!    buffer behind a `Mutex` that only the owning thread touches
//!    during recording; the collector locks it at drain time. There is
//!    no shared hot lock.
//! 3. **Deterministic drains.** [`drain`] takes every thread's events
//!    (per-thread order preserved, threads in registration order) and
//!    compacts buffers whose threads have exited.
//!
//! Spans are recorded *at close time* as complete intervals, so within
//! one thread's buffer the event stream is ordered by non-decreasing
//! end timestamp — an invariant `rtoss-verify` checks (RV041).
//!
//! Two knobs control recording:
//!
//! - `RTOSS_TRACE` (or [`set_enabled`]): `1`/`true`/`on` turns the
//!   whole subsystem on; anything else (or unset) leaves it off.
//! - `RTOSS_TRACE_SAMPLE` (or [`set_sample_every`]): keep one out of
//!   every N sampling roots (guard spans opened at depth 0, and
//!   [`batch_scope`] decisions). `1` (the default) keeps everything.

use std::borrow::Cow;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable that turns tracing on (`1`, `true`, `on`).
pub const TRACE_ENV: &str = "RTOSS_TRACE";

/// Environment variable holding the sampling divisor (keep 1 in N).
pub const SAMPLE_ENV: &str = "RTOSS_TRACE_SAMPLE";

/// Hard cap on buffered events per thread; once full, further events
/// are dropped and counted in [`Trace::dropped`].
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

// Global enabled flag: 0 = uninitialised (read env on first query),
// 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

// Sampling divisor: 0 = uninitialised (read env on first query).
static SAMPLE: AtomicU64 = AtomicU64::new(0);

/// Process-wide trace epoch: every timestamp is nanoseconds since this
/// instant. Initialised the first time the trace state is touched.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Whether tracing is globally enabled. The first call reads
/// [`TRACE_ENV`]; [`set_enabled`] overrides it either way.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var(TRACE_ENV)
        .map(|v| matches!(v.trim(), "1" | "true" | "on"))
        .unwrap_or(false);
    // Racing initialisers agree (both read the same env), so a plain
    // store is fine.
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    if on {
        epoch();
    }
    on
}

/// Turns tracing on or off programmatically (overrides [`TRACE_ENV`]).
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The sampling divisor: sampling roots are kept when
/// `root_index % divisor == 0`. The first call reads [`SAMPLE_ENV`].
pub fn sample_every() -> u64 {
    match SAMPLE.load(Ordering::Relaxed) {
        0 => init_sample(),
        n => n,
    }
}

#[cold]
fn init_sample() -> u64 {
    let n = std::env::var(SAMPLE_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    SAMPLE.store(n, Ordering::Relaxed);
    n
}

/// Sets the sampling divisor (min 1) programmatically.
pub fn set_sample_every(n: u64) {
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Nanoseconds since the trace epoch, for `Instant::now()`.
#[inline]
pub fn now_ns() -> u64 {
    ts_ns(Instant::now())
}

/// Nanoseconds since the trace epoch for an arbitrary instant.
/// Instants taken before the epoch (e.g. a request submitted before
/// tracing was enabled) saturate to 0.
pub fn ts_ns(at: Instant) -> u64 {
    at.checked_duration_since(epoch())
        .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// One recorded argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// Owned string.
    Str(String),
    /// Static string (no allocation).
    Static(&'static str),
}

/// Key/value argument list attached to an event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A synchronous span: properly nested within its thread.
    Span,
    /// An asynchronous interval (e.g. a request's queue wait): may
    /// overlap other events on the same thread; grouped by `id` in the
    /// Chrome export.
    Async {
        /// Correlation id (e.g. the request id).
        id: u64,
    },
    /// A point-in-time marker.
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name, e.g. `"execute"` or `"layer:backbone.c3"`.
    pub name: Cow<'static, str>,
    /// Span / async / instant.
    pub kind: EventKind,
    /// Recording thread's stable trace id (dense, from 1).
    pub tid: u64,
    /// Start (or occurrence) time, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Attached arguments.
    pub args: Args,
}

/// A drained set of trace events.
///
/// `events` holds each thread's events contiguously, in the order they
/// were recorded (non-decreasing end timestamp per thread); threads
/// appear in registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All recorded events.
    pub events: Vec<TraceEvent>,
    /// Events discarded because a thread buffer hit
    /// [`MAX_EVENTS_PER_THREAD`].
    pub dropped: u64,
}

impl Trace {
    /// Whether nothing was recorded (and nothing dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }
}

// ---------------------------------------------------------------------
// Per-thread buffers and the global registry.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static BUF: Arc<ThreadBuf> = register_thread();
    /// Open recorded guard spans on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Nested suppression scopes (sampling or explicit).
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
    /// Nested force-record scopes (a sampled-in batch).
    static FORCE: Cell<u32> = const { Cell::new(0) };
    /// Sampling-root counter for this thread.
    static ROOTS: Cell<u64> = const { Cell::new(0) };
}

fn register_thread() -> Arc<ThreadBuf> {
    let buf = Arc::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    });
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(buf.clone());
    buf
}

fn record(event: TraceEvent) {
    BUF.with(|buf| {
        let mut events = buf.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() < MAX_EVENTS_PER_THREAD {
            events.push(event);
        } else {
            buf.dropped.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// The calling thread's stable trace id.
pub fn current_tid() -> u64 {
    BUF.with(|b| b.tid)
}

/// Whether an event recorded right now on this thread would be kept:
/// tracing on and no suppression scope active. Callers use this to
/// skip building argument lists for [`emit_span`]-style raw emission.
#[inline]
pub fn recording() -> bool {
    enabled() && SUPPRESS.with(Cell::get) == 0
}

/// Takes every thread's recorded events (and drop counts), leaving all
/// buffers empty. Buffers owned by threads that have exited are
/// removed from the registry afterwards.
pub fn drain() -> Trace {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut trace = Trace::default();
    for buf in registry.iter() {
        let mut events = buf.events.lock().unwrap_or_else(|e| e.into_inner());
        trace.events.append(&mut *events);
        trace.dropped += buf.dropped.swap(0, Ordering::Relaxed);
    }
    // A live thread holds one clone via its thread-local; count == 1
    // means only the registry is left and the buffer can never fill
    // again.
    registry.retain(|buf| Arc::strong_count(buf) > 1);
    trace
}

/// Drains and discards everything recorded so far.
pub fn reset() {
    drop(drain());
}

// ---------------------------------------------------------------------
// Guard-based spans.
// ---------------------------------------------------------------------

/// RAII handle for an open span; records one [`EventKind::Span`] event
/// on drop (when sampled in). Not `Send`: spans belong to the thread
/// that opened them.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Option<(Cow<'static, str>, u64, Args)>,
    suppressing: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            rec: None,
            suppressing: false,
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.suppressing {
            SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
        }
        if let Some((name, start, args)) = self.rec.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end = now_ns();
            record(TraceEvent {
                name,
                kind: EventKind::Span,
                tid: current_tid(),
                ts_ns: start,
                dur_ns: end.saturating_sub(start),
                args,
            });
        }
    }
}

/// Decides whether a new sampling root is kept, updating the
/// per-thread root counter.
fn roll_sampling_dice() -> bool {
    let n = sample_every();
    if n <= 1 {
        return true;
    }
    ROOTS.with(|r| {
        let i = r.get();
        r.set(i.wrapping_add(1));
        i % n == 0
    })
}

fn open_span(make: impl FnOnce() -> (Cow<'static, str>, Args)) -> SpanGuard {
    if !enabled() || SUPPRESS.with(Cell::get) > 0 {
        return SpanGuard::inert();
    }
    let forced = FORCE.with(Cell::get) > 0;
    let depth = DEPTH.with(Cell::get);
    if !forced && depth == 0 && !roll_sampling_dice() {
        // Sampled out: suppress every descendant until this closes.
        SUPPRESS.with(|s| s.set(s.get() + 1));
        let mut g = SpanGuard::inert();
        g.suppressing = true;
        return g;
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    let (name, args) = make();
    SpanGuard {
        rec: Some((name, now_ns(), args)),
        suppressing: false,
        _not_send: PhantomData,
    }
}

/// Opens a span with a static name and no arguments. Zero allocation
/// on the disabled path *and* the enabled path.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    open_span(|| (Cow::Borrowed(name), Vec::new()))
}

/// Opens a span whose name/arguments are built lazily — the closure
/// runs only when the span is actually recorded, so the disabled path
/// never allocates.
#[inline]
pub fn span_lazy<N, F>(make: F) -> SpanGuard
where
    N: Into<Cow<'static, str>>,
    F: FnOnce() -> (N, Args),
{
    open_span(|| {
        let (name, args) = make();
        (name.into(), args)
    })
}

// ---------------------------------------------------------------------
// Scopes: explicit suppression / forcing (batch-granularity sampling).
// ---------------------------------------------------------------------

/// What a [`batch_scope`] decided for its extent.
#[derive(Debug)]
pub struct ScopeGuard {
    kind: ScopeKind,
    _not_send: PhantomData<*const ()>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Inert,
    Suppress,
    Force,
}

impl ScopeGuard {
    /// Whether events inside this scope are recorded.
    pub fn recording(&self) -> bool {
        self.kind == ScopeKind::Force
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        match self.kind {
            ScopeKind::Inert => {}
            ScopeKind::Suppress => SUPPRESS.with(|s| s.set(s.get().saturating_sub(1))),
            ScopeKind::Force => FORCE.with(|f| f.set(f.get().saturating_sub(1))),
        }
    }
}

/// Opens a sampling scope for one unit of work (the server uses one
/// per micro-batch): rolls the sampling dice once and either records
/// everything inside — including nested guard spans, bypassing their
/// own root sampling — or suppresses it all.
pub fn batch_scope() -> ScopeGuard {
    let kind = if !enabled() {
        ScopeKind::Inert
    } else if roll_sampling_dice() {
        FORCE.with(|f| f.set(f.get() + 1));
        ScopeKind::Force
    } else {
        SUPPRESS.with(|s| s.set(s.get() + 1));
        ScopeKind::Suppress
    };
    ScopeGuard {
        kind,
        _not_send: PhantomData,
    }
}

// ---------------------------------------------------------------------
// Raw emission (retroactive intervals, async events, instants).
// ---------------------------------------------------------------------

/// Records a complete span with explicit endpoints on the calling
/// thread. Used for intervals whose start predates the emitting code
/// path (e.g. a micro-batch measured from its first pop). Subject to
/// [`recording`] — suppressed scopes drop it.
pub fn emit_span(name: impl Into<Cow<'static, str>>, ts_ns: u64, end_ns: u64, args: Args) {
    if !recording() {
        return;
    }
    record(TraceEvent {
        name: name.into(),
        kind: EventKind::Span,
        tid: current_tid(),
        ts_ns,
        dur_ns: end_ns.saturating_sub(ts_ns),
        args,
    });
}

/// Records an async interval (may overlap anything on this thread),
/// correlated by `id` — e.g. one request's queue wait.
pub fn emit_async(
    name: impl Into<Cow<'static, str>>,
    id: u64,
    ts_ns: u64,
    end_ns: u64,
    args: Args,
) {
    if !recording() {
        return;
    }
    record(TraceEvent {
        name: name.into(),
        kind: EventKind::Async { id },
        tid: current_tid(),
        ts_ns,
        dur_ns: end_ns.saturating_sub(ts_ns),
        args,
    });
}

/// Records a point-in-time marker at "now".
pub fn emit_instant(name: impl Into<Cow<'static, str>>, args: Args) {
    if !recording() {
        return;
    }
    record(TraceEvent {
        name: name.into(),
        kind: EventKind::Instant,
        tid: current_tid(),
        ts_ns: now_ns(),
        dur_ns: 0,
        args,
    });
}

/// Records a point-in-time marker whose name/arguments are built
/// lazily — the closure runs only when the event is actually kept, so
/// neither the disabled path nor a suppressed scope (a sampled-out
/// batch) allocates. The instant analogue of [`span_lazy`]; prefer it
/// over `if recording() { emit_instant(...) }`, which still builds its
/// arguments inside scopes that [`recording`] reports as suppressed a
/// moment later.
#[inline]
pub fn emit_instant_lazy<N, F>(make: F)
where
    N: Into<Cow<'static, str>>,
    F: FnOnce() -> (N, Args),
{
    if !recording() {
        return;
    }
    let (name, args) = make();
    record(TraceEvent {
        name: name.into(),
        kind: EventKind::Instant,
        tid: current_tid(),
        ts_ns: now_ns(),
        dur_ns: 0,
        args,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock();
        set_enabled(false);
        reset();
        {
            let _a = span("outer");
            let _b = span_lazy(|| (format!("inner {}", 1), vec![("k", ArgValue::U64(1))]));
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nested_spans_record_contained_intervals() {
        let _g = test_lock();
        set_enabled(true);
        set_sample_every(1);
        reset();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
        }
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.events.len(), 2);
        // Recorded at close: inner first, outer second.
        let inner = &trace.events[0];
        let outer = &trace.events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn sampling_keeps_one_root_in_n() {
        let _g = test_lock();
        set_enabled(true);
        set_sample_every(4);
        reset();
        for _ in 0..8 {
            let _root = span("root");
            let _child = span("child"); // must follow its root's fate
        }
        set_enabled(false);
        set_sample_every(1);
        let trace = drain();
        let roots = trace.events.iter().filter(|e| e.name == "root").count();
        let children = trace.events.iter().filter(|e| e.name == "child").count();
        assert_eq!(roots, 2, "8 roots at 1-in-4 keeps 2");
        assert_eq!(children, roots, "children sampled with their root");
    }

    #[test]
    fn batch_scope_forces_or_suppresses_everything() {
        let _g = test_lock();
        set_enabled(true);
        set_sample_every(2);
        reset();
        let mut kept = 0;
        for _ in 0..4 {
            let scope = batch_scope();
            if scope.recording() {
                kept += 1;
            }
            emit_instant("marker", Vec::new());
            let _s = span("under_scope");
        }
        set_enabled(false);
        set_sample_every(1);
        let trace = drain();
        assert_eq!(kept, 2);
        let markers = trace.events.iter().filter(|e| e.name == "marker").count();
        let spans = trace
            .events
            .iter()
            .filter(|e| e.name == "under_scope")
            .count();
        assert_eq!(markers, 2, "instants follow the scope decision");
        assert_eq!(spans, 2, "guard spans follow the scope decision");
    }

    #[test]
    fn drain_collects_across_threads_and_preserves_tids() {
        let _g = test_lock();
        set_enabled(true);
        set_sample_every(1);
        reset();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s =
                        span_lazy(|| (format!("thread {i}"), vec![("i", ArgValue::U64(i as u64))]));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.events.len(), 3);
        let mut tids: Vec<u64> = trace.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread has its own tid");
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn emit_async_and_retro_spans_are_recorded() {
        let _g = test_lock();
        set_enabled(true);
        set_sample_every(1);
        reset();
        let t0 = now_ns();
        emit_async(
            "queue_wait",
            7,
            t0,
            t0 + 500,
            vec![("req", ArgValue::U64(7))],
        );
        emit_span("assembly", t0 + 500, t0 + 800, Vec::new());
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].kind, EventKind::Async { id: 7 });
        assert_eq!(trace.events[0].dur_ns, 500);
        assert_eq!(trace.events[1].dur_ns, 300);
    }
}
