//! Black-box flight recorder: a bounded ring of recent telemetry,
//! dumped as self-contained JSON on an SLO breach, a worker panic, or
//! an explicit request.
//!
//! The recorder is the "what happened in the last N seconds"
//! post-mortem answer: feeders append spans, instants, series samples,
//! and alert transitions as they happen; the ring keeps the most
//! recent `capacity` entries and counts what it displaced. It is cheap
//! enough to leave always on — one short `Mutex`-guarded `VecDeque`
//! push per entry, and the entry rate is control-plane rate (ticks,
//! refusals, tier changes), not per-layer rate.
//!
//! [`FlightRecorder::dump`] renders everything currently held into one
//! JSON document (entries sorted by timestamp, metadata naming the
//! trigger), built by hand like every exporter in this crate. The
//! document is self-contained: `rtoss-verify` checks its
//! well-formedness and that the covered `[first_ts_ns, last_ts_ns]`
//! window actually contains the triggering instant (RV083).

use crate::chrome::{push_f64, push_json_str};
use crate::slo::{AlertEvent, AlertKind};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded flight entry.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEntry {
    /// A completed interval (e.g. one control tick).
    Span {
        /// Span name.
        name: String,
        /// Start, nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Duration, nanoseconds.
        dur_ns: u64,
    },
    /// A point event (e.g. an admission refusal or a tier change).
    Instant {
        /// Event name.
        name: String,
        /// Occurrence time, nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Free-form detail (tenant, replica, tiers…).
        detail: String,
    },
    /// One series observation (e.g. a per-tick burn rate or queue
    /// depth).
    Sample {
        /// Series name.
        series: String,
        /// Observation time, nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Observed value.
        value: f64,
    },
    /// An SLO alert transition.
    Alert {
        /// Rule name.
        rule: String,
        /// Monitored subject.
        subject: String,
        /// Firing or resolved.
        kind: AlertKind,
        /// Transition time, nanoseconds since the trace epoch.
        ts_ns: u64,
        /// Short-range burn at the transition.
        burn_short: f64,
        /// Long-range burn at the transition.
        burn_long: f64,
    },
}

impl FlightEntry {
    /// The entry's timestamp (span start for spans).
    pub fn ts_ns(&self) -> u64 {
        match self {
            FlightEntry::Span { ts_ns, .. }
            | FlightEntry::Instant { ts_ns, .. }
            | FlightEntry::Sample { ts_ns, .. }
            | FlightEntry::Alert { ts_ns, .. } => *ts_ns,
        }
    }
}

/// Bounded ring of recent [`FlightEntry`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<FlightEntry>>,
    displaced: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            displaced: AtomicU64::new(0),
        }
    }

    /// Maximum entries held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded (or everything displaced).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries pushed out of the ring so far.
    pub fn displaced(&self) -> u64 {
        self.displaced.load(Ordering::Relaxed)
    }

    /// Appends one entry, displacing the oldest when full.
    pub fn record(&self, entry: FlightEntry) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.displaced.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    /// Records a completed interval.
    pub fn span(&self, name: impl Into<String>, ts_ns: u64, dur_ns: u64) {
        self.record(FlightEntry::Span {
            name: name.into(),
            ts_ns,
            dur_ns,
        });
    }

    /// Records a point event.
    pub fn instant(&self, name: impl Into<String>, ts_ns: u64, detail: impl Into<String>) {
        self.record(FlightEntry::Instant {
            name: name.into(),
            ts_ns,
            detail: detail.into(),
        });
    }

    /// Records a series observation.
    pub fn sample(&self, series: impl Into<String>, ts_ns: u64, value: f64) {
        self.record(FlightEntry::Sample {
            series: series.into(),
            ts_ns,
            value,
        });
    }

    /// Records an alert transition.
    pub fn alert(&self, event: &AlertEvent) {
        self.record(FlightEntry::Alert {
            rule: event.rule.clone(),
            subject: event.subject.clone(),
            kind: event.kind,
            ts_ns: event.ts_ns,
            burn_short: event.burn_short,
            burn_long: event.burn_long,
        });
    }

    /// Renders the current ring into one self-contained post-mortem
    /// JSON document, entries sorted by timestamp. `reason` names the
    /// trigger (`"slo-breach"`, `"worker-panic"`, `"manual"`…) and
    /// `trigger_ts_ns` the instant it happened; the recorder itself is
    /// left untouched so later triggers still see the history.
    pub fn dump(&self, reason: &str, trigger_ts_ns: u64) -> String {
        let mut entries: Vec<FlightEntry> = {
            let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            ring.iter().cloned().collect()
        };
        entries.sort_by_key(FlightEntry::ts_ns);
        let first_ts = entries.first().map_or(trigger_ts_ns, FlightEntry::ts_ns);
        let last_ts = entries.last().map_or(trigger_ts_ns, FlightEntry::ts_ns);
        let mut out = String::with_capacity(256 + entries.len() * 96);
        out.push('{');
        out.push_str("\"reason\":");
        push_json_str(&mut out, reason);
        let _ = write!(
            out,
            ",\"trigger_ts_ns\":{trigger_ts_ns},\"dumped_at_ns\":{},\"capacity\":{},\
             \"displaced\":{},\"first_ts_ns\":{first_ts},\"last_ts_ns\":{last_ts},\
             \"entries\":[",
            crate::now_ns(),
            self.capacity,
            self.displaced(),
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_entry(&mut out, e);
        }
        out.push_str("]}");
        out
    }
}

fn push_entry(out: &mut String, e: &FlightEntry) {
    out.push('{');
    match e {
        FlightEntry::Span {
            name,
            ts_ns,
            dur_ns,
        } => {
            out.push_str("\"kind\":\"span\",\"name\":");
            push_json_str(out, name);
            let _ = write!(out, ",\"ts_ns\":{ts_ns},\"dur_ns\":{dur_ns}");
        }
        FlightEntry::Instant {
            name,
            ts_ns,
            detail,
        } => {
            out.push_str("\"kind\":\"instant\",\"name\":");
            push_json_str(out, name);
            let _ = write!(out, ",\"ts_ns\":{ts_ns},\"detail\":");
            push_json_str(out, detail);
        }
        FlightEntry::Sample {
            series,
            ts_ns,
            value,
        } => {
            out.push_str("\"kind\":\"sample\",\"series\":");
            push_json_str(out, series);
            let _ = write!(out, ",\"ts_ns\":{ts_ns},\"value\":");
            push_f64(out, *value);
        }
        FlightEntry::Alert {
            rule,
            subject,
            kind,
            ts_ns,
            burn_short,
            burn_long,
        } => {
            out.push_str("\"kind\":\"alert\",\"rule\":");
            push_json_str(out, rule);
            out.push_str(",\"subject\":");
            push_json_str(out, subject);
            let _ = write!(out, ",\"state\":\"{}\",\"ts_ns\":{ts_ns}", kind.label());
            out.push_str(",\"burn_short\":");
            push_f64(out, *burn_short);
            out.push_str(",\"burn_long\":");
            push_f64(out, *burn_long);
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::AlertKind;

    #[test]
    fn ring_is_bounded_and_counts_displacement() {
        let r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.instant("evt", i * 10, format!("i={i}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.displaced(), 2);
        let dump = r.dump("manual", 45);
        assert!(dump.contains("\"first_ts_ns\":20"));
        assert!(dump.contains("\"last_ts_ns\":40"));
        assert!(dump.contains("\"displaced\":2"));
    }

    #[test]
    fn dump_sorts_entries_and_escapes_strings() {
        let r = FlightRecorder::new(8);
        r.sample("burn\"short\"", 30, 2.5);
        r.span("tick", 10, 5);
        r.alert(&AlertEvent {
            rule: "admission".into(),
            subject: "bulk\nco".into(),
            kind: AlertKind::Firing,
            ts_ns: 20,
            burn_short: 3.0,
            burn_long: 2.1,
        });
        let dump = r.dump("slo-breach", 20);
        let span_pos = dump.find("\"kind\":\"span\"").unwrap();
        let alert_pos = dump.find("\"kind\":\"alert\"").unwrap();
        let sample_pos = dump.find("\"kind\":\"sample\"").unwrap();
        assert!(
            span_pos < alert_pos && alert_pos < sample_pos,
            "sorted by ts"
        );
        assert!(dump.contains("burn\\\"short\\\""));
        assert!(dump.contains("bulk\\nco"));
        assert!(dump.contains("\"state\":\"firing\""));
        assert!(dump.contains("\"trigger_ts_ns\":20"));
    }

    #[test]
    fn empty_dump_degenerates_to_the_trigger_instant() {
        let r = FlightRecorder::new(4);
        let dump = r.dump("manual", 7);
        assert!(dump.contains("\"first_ts_ns\":7"));
        assert!(dump.contains("\"last_ts_ns\":7"));
        assert!(dump.contains("\"entries\":[]"));
    }
}
