//! Prometheus text-format exposition (version 0.0.4) and a matching
//! parser for round-trip checks.
//!
//! This module is format-only: it knows nothing about the serving
//! metrics themselves. `rtoss-serve` converts its
//! `MetricsSnapshot` into [`PromMetric`]s and renders them here;
//! `rtoss-verify` parses the rendered text back and checks the bucket
//! counts against the snapshot (RV044).
//!
//! Histograms follow the Prometheus convention: cumulative
//! `<name>_bucket{le="..."}` samples (ending in `le="+Inf"`), plus
//! `<name>_sum` and `<name>_count`.

use std::borrow::Cow;
use std::fmt::Write as _;

/// A histogram in exposition form.
#[derive(Debug, Clone, PartialEq)]
pub struct PromHistogram {
    /// Per-bucket upper bounds, strictly increasing (the `+Inf` bucket
    /// is implicit and must not be listed here).
    pub upper_bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) sample counts, same length as
    /// `upper_bounds`; samples above the last bound surface only in
    /// `count`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations (≥ the bucket counts' sum; the
    /// excess lands in the implicit `+Inf` bucket).
    pub count: u64,
}

/// The value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum PromValue {
    /// Monotonic counter.
    Counter(f64),
    /// Point-in-time gauge.
    Gauge(f64),
    /// Bucketed histogram.
    Histogram(PromHistogram),
}

/// One metric to expose.
#[derive(Debug, Clone, PartialEq)]
pub struct PromMetric {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// HELP line content.
    pub help: String,
    /// Label key/value pairs applied to every sample of this metric.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: PromValue,
}

impl PromMetric {
    /// A counter metric.
    pub fn counter(name: impl Into<String>, help: impl Into<String>, v: f64) -> Self {
        PromMetric {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: PromValue::Counter(v),
        }
    }

    /// A gauge metric.
    pub fn gauge(name: impl Into<String>, help: impl Into<String>, v: f64) -> Self {
        PromMetric {
            name: name.into(),
            help: help.into(),
            labels: Vec::new(),
            value: PromValue::Gauge(v),
        }
    }

    /// Adds a label pair (builder style).
    #[must_use]
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }
}

/// Coerces `s` into a valid Prometheus name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, a
/// leading digit gets a `_` prefix, and an empty input becomes `"_"`.
/// Valid names pass through without allocating. Metric names and
/// *label keys* go through this at render time — label keys often come
/// from dynamic, caller-controlled strings (tenant ids, replica
/// names), and a hostile key would otherwise break the whole
/// exposition for every scraper.
pub fn sanitize_name(s: &str) -> Cow<'_, str> {
    if valid_name(s) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 1);
    for (i, c) in s.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    Cow::Owned(out)
}

fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn push_label_set(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"", sanitize_name(k));
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

fn push_sample(out: &mut String, name: &str, labels: &[(String, String)], value: f64) {
    out.push_str(name);
    push_label_set(out, labels);
    let _ = writeln!(out, " {}", fmt_value(value));
}

/// Renders metrics in Prometheus text exposition format. Metrics with
/// the same name (e.g. per-variant labelled series) share one
/// HELP/TYPE header, emitted at the first occurrence.
pub fn render(metrics: &[PromMetric]) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    for m in metrics {
        let name = sanitize_name(&m.name);
        if !seen.iter().any(|s| s == name.as_ref()) {
            seen.push(name.clone().into_owned());
            let kind = match m.value {
                PromValue::Counter(_) => "counter",
                PromValue::Gauge(_) => "gauge",
                PromValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {name} {}", m.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
        match &m.value {
            PromValue::Counter(v) | PromValue::Gauge(v) => {
                push_sample(&mut out, &name, &m.labels, *v);
            }
            PromValue::Histogram(h) => {
                let bucket_name = format!("{name}_bucket");
                let mut cumulative = 0u64;
                for (ub, c) in h.upper_bounds.iter().zip(&h.counts) {
                    cumulative += c;
                    let mut labels = m.labels.clone();
                    labels.push(("le".to_string(), fmt_value(*ub)));
                    push_sample(&mut out, &bucket_name, &labels, cumulative as f64);
                }
                let mut labels = m.labels.clone();
                labels.push(("le".to_string(), "+Inf".to_string()));
                push_sample(&mut out, &bucket_name, &labels, h.count as f64);
                push_sample(&mut out, &format!("{name}_sum"), &m.labels, h.sum);
                push_sample(
                    &mut out,
                    &format!("{name}_count"),
                    &m.labels,
                    h.count as f64,
                );
            }
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (e.g. `rtoss_execute_seconds_bucket`).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(raw: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = raw;
    loop {
        rest = rest.trim_start_matches(',').trim_start();
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without `=`"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("line {line_no}: invalid label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    consumed = Some(i + 2); // opening quote + content + closing
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => {
                        return Err(format!("line {line_no}: bad escape {other:?}"));
                    }
                },
                c => value.push(c),
            }
        }
        let consumed =
            consumed.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = &rest[consumed..];
    }
}

/// Parses Prometheus text exposition into samples (comments and blank
/// lines skipped).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
                if close < open {
                    return Err(format!("line {line_no}: mismatched braces"));
                }
                (&line[..open], {
                    let labels = parse_labels(&line[open + 1..close], line_no)?;
                    (labels, line[close + 1..].trim())
                })
            }
            None => {
                let sp = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| format!("line {line_no}: sample without value"))?;
                (&line[..sp], (Vec::new(), line[sp..].trim()))
            }
        };
        let (labels, value_part) = rest;
        let name = name_part.trim().to_string();
        if !valid_name(&name) {
            return Err(format!("line {line_no}: invalid metric name {name:?}"));
        }
        // A timestamp may follow the value; take the first token.
        let value_tok = value_part
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let value = match value_tok {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            tok => tok
                .parse::<f64>()
                .map_err(|_| format!("line {line_no}: bad value {tok:?}"))?,
        };
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram() -> PromMetric {
        PromMetric {
            name: "rtoss_execute_seconds".into(),
            help: "Execute phase latency".into(),
            labels: vec![("variant".into(), "2EP".into())],
            value: PromValue::Histogram(PromHistogram {
                upper_bounds: vec![0.001, 0.002, 0.004],
                counts: vec![3, 2, 1],
                sum: 0.0123,
                count: 7, // one observation above the last bound
            }),
        }
    }

    #[test]
    fn renders_and_parses_counters_and_gauges() {
        let text = render(&[
            PromMetric::counter("rtoss_completed_total", "Requests completed", 42.0),
            PromMetric::gauge("rtoss_mean_batch_size", "Mean batch", 2.5)
                .with_label("variant", "dense"),
        ]);
        assert!(text.contains("# TYPE rtoss_completed_total counter"));
        assert!(text.contains("rtoss_completed_total 42"));
        let samples = parse(&text).expect("round trip");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].label("variant"), Some("dense"));
        assert_eq!(samples[1].value, 2.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render(&[histogram()]);
        let samples = parse(&text).expect("parses");
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "rtoss_execute_seconds_bucket")
            .collect();
        assert_eq!(buckets.len(), 4);
        let values: Vec<f64> = buckets.iter().map(|b| b.value).collect();
        assert_eq!(values, vec![3.0, 5.0, 6.0, 7.0]);
        assert_eq!(buckets[3].label("le"), Some("+Inf"));
        let count = samples
            .iter()
            .find(|s| s.name == "rtoss_execute_seconds_count")
            .expect("count sample");
        assert_eq!(count.value, 7.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "rtoss_execute_seconds_sum")
            .expect("sum sample");
        assert!((sum.value - 0.0123).abs() < 1e-12);
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let text =
            render(&[PromMetric::gauge("g", "a gauge", 1.0).with_label("weird", "a\"b\\c\nd")]);
        let samples = parse(&text).expect("parses");
        assert_eq!(samples[0].label("weird"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn sanitize_name_coerces_and_passes_valid_through() {
        assert!(matches!(sanitize_name("rtoss_ok:name"), Cow::Borrowed(_)));
        assert_eq!(sanitize_name("tenant-a.b c"), "tenant_a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("bulk\"x\"\ny"), "bulk_x__y");
        assert!(valid_name(&sanitize_name("läbel-kéy")));
    }

    #[test]
    fn hostile_tenant_names_round_trip_as_labels() {
        // A tenant id chosen to break both the label key and the value:
        // quotes, backslashes, newlines, unicode, leading digit.
        let hostile = "9bulk\"x\\y\nz-ü";
        let text = render(&[
            PromMetric::counter("rtoss_fleet_admitted_total", "Admitted", 3.0)
                .with_label("tenant", hostile),
            PromMetric::gauge("bad metric\nname", "help", 1.0).with_label(hostile, "v"),
        ]);
        // Every non-comment line must parse back cleanly.
        let samples = parse(&text).expect("hostile names must not corrupt exposition");
        assert_eq!(samples.len(), 2);
        // Label *values* survive verbatim through escaping...
        assert_eq!(samples[0].label("tenant"), Some(hostile));
        // ...while metric names and label *keys* are coerced to the
        // legal charset.
        assert_eq!(samples[1].name, "bad_metric_name");
        assert_eq!(samples[1].labels[0].0, "_9bulk_x_y_z__");
        assert_eq!(samples[1].labels[0].1, "v");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("9bad_name 1").is_err());
        assert!(parse("name{le=\"unterminated} 1").is_err());
        assert!(parse("name_without_value").is_err());
        assert!(parse("name not_a_number").is_err());
    }
}
