//! # rtoss-obs — observability for the R-TOSS serving stack
//!
//! End-to-end tracing, per-layer profiling, and metrics exposition for
//! the sparse serving pipeline. Dependency-free (std only) so every
//! runtime crate — `rtoss-tensor`, `rtoss-sparse`, `rtoss-serve` — can
//! instrument through it without pulling the dependency graph upward.
//!
//! Seven pieces:
//!
//! - [`trace`] — the lock-cheap span/event core: thread-local span
//!   stacks, per-thread buffers drained into a global collector, a
//!   zero-cost disabled path, and sampling (`RTOSS_TRACE`,
//!   `RTOSS_TRACE_SAMPLE`).
//! - [`timeseries`] — windowed time-series: fixed rings of aligned
//!   time buckets (counter / counter-set / gauge / histogram) with
//!   O(1) lock-cheap recording and the same one-atomic-load disabled
//!   path (`RTOSS_SERIES`).
//! - [`slo`] — multi-window burn-rate SLO monitors with
//!   firing/resolved hysteresis, emitting structured alert events.
//! - [`flight`] — the black-box flight recorder: a bounded ring of
//!   recent spans/instants/samples/alerts dumped as post-mortem JSON.
//! - [`chrome`] — exporters: Chrome/Perfetto `trace.json` and a JSONL
//!   structured event log (methods on [`Trace`]).
//! - [`prom`] — Prometheus text exposition: a generic metric model,
//!   renderer, and parser (for round-trip verification).
//! - [`profile`] — per-span self-time aggregation and the top-N layer
//!   table behind the `obs_profile` report.
//!
//! ## Quickstart
//!
//! ```
//! rtoss_obs::set_enabled(true);
//! rtoss_obs::reset();
//! {
//!     let _batch = rtoss_obs::span("execute");
//!     let _layer = rtoss_obs::span("layer:demo");
//! }
//! rtoss_obs::set_enabled(false);
//! let trace = rtoss_obs::drain();
//! assert_eq!(trace.events.len(), 2);
//! let json = trace.to_chrome_json(); // load in ui.perfetto.dev
//! assert!(json.contains("\"ph\":\"X\""));
//! ```
//!
//! The global trace state (enabled flag, sampling divisor, per-thread
//! buffers) is process-wide; tests that toggle it should serialize
//! themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod flight;
pub mod profile;
pub mod prom;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use flight::{FlightEntry, FlightRecorder};
pub use profile::{Profile, SpanStat};
pub use prom::{sanitize_name, PromHistogram, PromMetric, PromSample, PromValue};
pub use slo::{AlertEvent, AlertKind, AlertState, BurnRatePolicy, SloMonitor};
pub use timeseries::{
    series_enabled, set_series_enabled, GaugeSample, HistogramSample, SeriesSnapshot, SetSample,
    WindowSample, WindowSpec, WindowedCounter, WindowedGauge, WindowedHistogram, WindowedSet,
    SERIES_ENV,
};
pub use trace::{
    batch_scope, current_tid, drain, emit_async, emit_instant, emit_instant_lazy, emit_span,
    enabled, now_ns, recording, reset, sample_every, set_enabled, set_sample_every, span,
    span_lazy, ts_ns, ArgValue, Args, EventKind, ScopeGuard, SpanGuard, Trace, TraceEvent,
    MAX_EVENTS_PER_THREAD, SAMPLE_ENV, TRACE_ENV,
};

/// Serializes unit tests that mutate the process-wide trace state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
