//! Exporters: Chrome/Perfetto `trace.json` and JSONL structured logs.
//!
//! The Chrome trace event format is emitted by hand (this crate is
//! dependency-free): a JSON array of event objects that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. Synchronous spans become complete events (`"ph":"X"`),
//! async intervals become legacy async begin/end pairs (`"ph":"b"` /
//! `"ph":"e"`, correlated by `id`), and markers become instant events
//! (`"ph":"i"`). Timestamps are microseconds since the trace epoch.
//!
//! The JSONL exporter writes one self-contained JSON object per event,
//! in drain order — the grep-friendly structured log for offline
//! analysis.

use crate::trace::{ArgValue, EventKind, Trace, TraceEvent};
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Infinity/NaN; stringify so the file stays loadable.
        push_json_str(out, &format!("{v}"));
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        match v {
            ArgValue::U64(u) => {
                let _ = write!(out, "{u}");
            }
            ArgValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(f) => push_f64(out, *f),
            ArgValue::Str(s) => push_json_str(out, s),
            ArgValue::Static(s) => push_json_str(out, s),
        }
    }
    out.push('}');
}

/// Microseconds (Chrome trace unit) from nanoseconds, keeping
/// sub-microsecond resolution as a fraction.
fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn push_common(out: &mut String, e: &TraceEvent, ph: char, ts_ns: u64) {
    out.push_str("{\"name\":");
    push_json_str(out, &e.name);
    let _ = write!(out, ",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{}", e.tid);
    out.push_str(",\"ts\":");
    push_f64(out, us(ts_ns));
}

fn push_event(out: &mut String, e: &TraceEvent) {
    match e.kind {
        EventKind::Span => {
            push_common(out, e, 'X', e.ts_ns);
            out.push_str(",\"dur\":");
            push_f64(out, us(e.dur_ns));
            if !e.args.is_empty() {
                out.push_str(",\"args\":");
                push_args(out, &e.args);
            }
            out.push('}');
        }
        EventKind::Async { id } => {
            // Legacy async begin/end pair on a shared category track.
            push_common(out, e, 'b', e.ts_ns);
            let _ = write!(out, ",\"cat\":\"async\",\"id\":\"0x{id:x}\"");
            if !e.args.is_empty() {
                out.push_str(",\"args\":");
                push_args(out, &e.args);
            }
            out.push_str("},\n");
            push_common(out, e, 'e', e.ts_ns + e.dur_ns);
            let _ = write!(out, ",\"cat\":\"async\",\"id\":\"0x{id:x}\"");
            out.push('}');
        }
        EventKind::Instant => {
            push_common(out, e, 'i', e.ts_ns);
            out.push_str(",\"s\":\"t\"");
            if !e.args.is_empty() {
                out.push_str(",\"args\":");
                push_args(out, &e.args);
            }
            out.push('}');
        }
    }
}

impl Trace {
    /// Renders the trace as a Chrome/Perfetto-loadable JSON array.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 * self.events.len() + 16);
        out.push_str("[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            push_event(&mut out, e);
        }
        out.push_str("\n]\n");
        out
    }

    /// Renders the trace as JSONL: one JSON object per event, drain
    /// order, with raw nanosecond fields.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128 * self.events.len());
        for e in &self.events {
            out.push_str("{\"name\":");
            push_json_str(&mut out, &e.name);
            let kind = match e.kind {
                EventKind::Span => "span",
                EventKind::Async { .. } => "async",
                EventKind::Instant => "instant",
            };
            let _ = write!(
                out,
                ",\"kind\":\"{kind}\",\"tid\":{},\"ts_ns\":{},\"dur_ns\":{}",
                e.tid, e.ts_ns, e.dur_ns
            );
            if let EventKind::Async { id } = e.kind {
                let _ = write!(out, ",\"id\":{id}");
            }
            out.push_str(",\"args\":");
            push_args(&mut out, &e.args);
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn event(name: &'static str, kind: EventKind, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: Cow::Borrowed(name),
            kind,
            tid: 1,
            ts_ns: ts,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn chrome_json_emits_complete_async_and_instant_events() {
        let trace = Trace {
            events: vec![
                event("execute", EventKind::Span, 1_000, 2_000),
                event("queue_wait", EventKind::Async { id: 3 }, 0, 500),
                event("enqueue", EventKind::Instant, 100, 0),
            ],
            dropped: 0,
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"id\":\"0x3\""));
        assert!(json.contains("\"dur\":2"));
    }

    #[test]
    fn escapes_hostile_names_and_args() {
        let mut e = event("weird \"name\"\n", EventKind::Span, 0, 1);
        e.args = vec![
            ("s", ArgValue::Str("a\\b\t".into())),
            ("f", ArgValue::F64(f64::NAN)),
        ];
        let trace = Trace {
            events: vec![e],
            dropped: 0,
        };
        let json = trace.to_chrome_json();
        assert!(json.contains("weird \\\"name\\\"\\n"));
        assert!(json.contains("a\\\\b\\t"));
        assert!(json.contains("\"NaN\""), "NaN stringified: {json}");
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let trace = Trace {
            events: vec![
                event("a", EventKind::Span, 0, 10),
                event("b", EventKind::Async { id: 9 }, 5, 5),
            ],
            dropped: 0,
        };
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("\"id\":9"));
    }
}
