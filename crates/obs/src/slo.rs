//! Multi-window burn-rate SLO evaluation with firing/resolved
//! hysteresis.
//!
//! An SLO is an objective on a good/total ratio — "99% of completed
//! requests hit their deadline", "95% of offered requests are
//! admitted". The **burn rate** over a time range is the observed bad
//! fraction divided by the error budget (`1 - objective`): burn 1.0
//! consumes the budget exactly at the sustainable rate; burn 10 burns
//! a month of budget in three days.
//!
//! Following the SRE multi-window pattern, a [`SloMonitor`] evaluates
//! the burn over a **short** and a **long** trailing range (e.g. 5 s /
//! 60 s — here both are query-time sums over the aligned windows of a
//! [`crate::timeseries::WindowedCounter`], so the storage resolution
//! is independent of the alert ranges):
//!
//! - **fire** when *both* ranges burn at ≥ `fire_burn` — the long
//!   range proves the problem is sustained, the short range proves it
//!   is still happening;
//! - **resolve** only when the short-range burn falls to
//!   ≤ `resolve_burn`, which must sit *below* `fire_burn` — the
//!   hysteresis gap that keeps a boundary-riding signal from flapping.
//!
//! Transitions come out as structured [`AlertEvent`]s carrying the
//! measured burns, so `rtoss-verify` can replay a run's alert log
//! against the policy and reject illegal sequences (RV082).

/// Burn-rate alerting policy for one SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRatePolicy {
    /// Target good/total ratio in `(0, 1)`; error budget is `1 -
    /// objective`.
    pub objective: f64,
    /// Short trailing range, nanoseconds (the "is it still happening"
    /// window).
    pub short_range_ns: u64,
    /// Long trailing range, nanoseconds (the "is it sustained"
    /// window). Must be ≥ `short_range_ns`.
    pub long_range_ns: u64,
    /// Fire when both ranges burn at or above this rate (> 0).
    pub fire_burn: f64,
    /// Resolve when the short range burns at or below this rate; must
    /// be strictly below `fire_burn` (hysteresis).
    pub resolve_burn: f64,
    /// Ranges with fewer than this many total events evaluate to burn
    /// 0 (too little signal to alert on).
    pub min_total: u64,
}

impl BurnRatePolicy {
    /// A sane default: 95% objective, 1 s / 5 s ranges, fire at 2×
    /// budget burn, resolve below 0.5×, need 5 events.
    pub fn new(objective: f64) -> Self {
        BurnRatePolicy {
            objective,
            short_range_ns: 1_000_000_000,
            long_range_ns: 5_000_000_000,
            fire_burn: 2.0,
            resolve_burn: 0.5,
            min_total: 5,
        }
    }

    /// Structural problems with the policy, empty when valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if !(self.objective > 0.0 && self.objective < 1.0) {
            problems.push(format!(
                "objective must be in (0, 1), got {}",
                self.objective
            ));
        }
        if self.short_range_ns == 0 {
            problems.push("short_range_ns must be > 0".into());
        }
        if self.long_range_ns < self.short_range_ns {
            problems.push(format!(
                "long_range_ns ({}) must be >= short_range_ns ({})",
                self.long_range_ns, self.short_range_ns
            ));
        }
        if self.fire_burn.is_nan() || self.fire_burn <= 0.0 {
            problems.push(format!("fire_burn must be > 0, got {}", self.fire_burn));
        }
        let gap_ok =
            self.resolve_burn.partial_cmp(&self.fire_burn) == Some(std::cmp::Ordering::Less);
        if !gap_ok {
            problems.push(format!(
                "resolve_burn ({}) must be strictly below fire_burn ({}) — no hysteresis gap",
                self.resolve_burn, self.fire_burn
            ));
        }
        problems
    }

    /// Burn rate for `bad` failures out of `total` events: bad
    /// fraction over error budget; 0 when `total < min_total`.
    pub fn burn_rate(&self, bad: u64, total: u64) -> f64 {
        if total < self.min_total.max(1) {
            return 0.0;
        }
        let budget = (1.0 - self.objective).max(f64::EPSILON);
        (bad as f64 / total as f64) / budget
    }
}

/// Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Within budget (or recovered).
    Ok,
    /// Burn exceeded the policy on both ranges and has not resolved.
    Firing,
}

/// What an [`AlertEvent`] announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The monitor entered [`AlertState::Firing`].
    Firing,
    /// The monitor returned to [`AlertState::Ok`].
    Resolved,
}

impl AlertKind {
    /// Stable lowercase label (`"firing"` / `"resolved"`).
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Firing => "firing",
            AlertKind::Resolved => "resolved",
        }
    }
}

/// One state transition of a monitor, with the evidence that caused
/// it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Rule name, e.g. `"admission"` or `"deadline"`.
    pub rule: String,
    /// Monitored subject, e.g. a tenant id or `"replica/0"`.
    pub subject: String,
    /// Firing or resolved.
    pub kind: AlertKind,
    /// Evaluation time, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Short-range burn at evaluation time.
    pub burn_short: f64,
    /// Long-range burn at evaluation time.
    pub burn_long: f64,
}

/// The state machine for one (rule, subject) pair.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    /// Rule name carried into every event.
    pub rule: String,
    /// Subject carried into every event.
    pub subject: String,
    policy: BurnRatePolicy,
    state: AlertState,
    last_burn_short: f64,
    last_burn_long: f64,
}

impl SloMonitor {
    /// A monitor starting in [`AlertState::Ok`].
    pub fn new(
        rule: impl Into<String>,
        subject: impl Into<String>,
        policy: BurnRatePolicy,
    ) -> Self {
        SloMonitor {
            rule: rule.into(),
            subject: subject.into(),
            policy,
            state: AlertState::Ok,
            last_burn_short: 0.0,
            last_burn_long: 0.0,
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> &BurnRatePolicy {
        &self.policy
    }

    /// Current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Burns measured at the latest evaluation `(short, long)`.
    pub fn last_burns(&self) -> (f64, f64) {
        (self.last_burn_short, self.last_burn_long)
    }

    /// Feeds one evaluation tick: `(bad, total)` summed over the short
    /// and long trailing ranges. Returns the transition this tick
    /// caused, if any.
    pub fn evaluate(
        &mut self,
        ts_ns: u64,
        short: (u64, u64),
        long: (u64, u64),
    ) -> Option<AlertEvent> {
        let burn_short = self.policy.burn_rate(short.0, short.1);
        let burn_long = self.policy.burn_rate(long.0, long.1);
        self.last_burn_short = burn_short;
        self.last_burn_long = burn_long;
        let event = |kind| AlertEvent {
            rule: self.rule.clone(),
            subject: self.subject.clone(),
            kind,
            ts_ns,
            burn_short,
            burn_long,
        };
        match self.state {
            AlertState::Ok
                if burn_short >= self.policy.fire_burn && burn_long >= self.policy.fire_burn =>
            {
                self.state = AlertState::Firing;
                Some(event(AlertKind::Firing))
            }
            AlertState::Firing if burn_short <= self.policy.resolve_burn => {
                self.state = AlertState::Ok;
                Some(event(AlertKind::Resolved))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BurnRatePolicy {
        BurnRatePolicy {
            objective: 0.9,
            short_range_ns: 1_000,
            long_range_ns: 5_000,
            fire_burn: 2.0,
            resolve_burn: 0.5,
            min_total: 1,
        }
    }

    #[test]
    fn validate_rejects_inverted_hysteresis() {
        assert!(policy().validate().is_empty());
        let mut p = policy();
        p.resolve_burn = 2.0; // == fire_burn: no gap
        assert!(!p.validate().is_empty());
        p = policy();
        p.long_range_ns = 10; // < short
        assert!(!p.validate().is_empty());
        p = policy();
        p.objective = 1.0;
        assert!(!p.validate().is_empty());
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let p = policy(); // budget 0.1
        assert!((p.burn_rate(10, 100) - 1.0).abs() < 1e-12);
        assert!((p.burn_rate(30, 100) - 3.0).abs() < 1e-12);
        assert_eq!(p.burn_rate(0, 100), 0.0);
        assert_eq!(p.burn_rate(5, 0), 0.0, "no signal, no burn");
    }

    #[test]
    fn fires_only_when_both_ranges_burn_and_resolves_with_hysteresis() {
        let mut m = SloMonitor::new("admission", "bulk", policy());
        // Short spike only: long range still calm — no alert.
        assert!(m.evaluate(1, (50, 100), (5, 500)).is_none());
        assert_eq!(m.state(), AlertState::Ok);
        // Sustained: both ranges over fire_burn → firing.
        let fired = m.evaluate(2, (50, 100), (200, 500)).unwrap();
        assert_eq!(fired.kind, AlertKind::Firing);
        assert!(fired.burn_short >= 2.0 && fired.burn_long >= 2.0);
        // Improved but above resolve_burn: still firing (hysteresis).
        assert!(m.evaluate(3, (10, 100), (200, 500)).is_none());
        assert_eq!(m.state(), AlertState::Firing);
        // Short range calm → resolved.
        let resolved = m.evaluate(4, (2, 100), (200, 500)).unwrap();
        assert_eq!(resolved.kind, AlertKind::Resolved);
        assert!(resolved.burn_short <= 0.5);
        assert_eq!(m.state(), AlertState::Ok);
        // Re-fires on the next sustained breach.
        assert!(m.evaluate(5, (60, 100), (300, 500)).is_some());
    }

    #[test]
    fn min_total_suppresses_thin_signals() {
        let mut p = policy();
        p.min_total = 50;
        let mut m = SloMonitor::new("deadline", "replica/0", p);
        // 100% bad but only 10 events: burn evaluates to 0.
        assert!(m.evaluate(1, (10, 10), (10, 10)).is_none());
        assert_eq!(m.last_burns(), (0.0, 0.0));
    }
}
