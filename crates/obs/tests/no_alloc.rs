//! Proves the disabled tracing path allocates nothing.
//!
//! The instrumentation sits inside per-layer executor loops and the
//! serving hot path, so when tracing is off a span probe must cost a
//! flag load — in particular, zero heap traffic. A counting global
//! allocator makes that a hard assertion rather than a benchmark.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter increment has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator's
        // `alloc` with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Serializes the tests: each one flips process-wide flags (tracing
/// enabled, series enabled, sampling divisor) that would race under
/// the parallel test harness.
fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_tracing_allocates_nothing_per_span() {
    let _flags = flag_lock();
    rtoss_obs::set_enabled(false);
    // Warm up the thread-local state outside the counted window.
    drop(rtoss_obs::span("warmup"));
    rtoss_obs::emit_instant("warmup", Vec::new());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let _guard = rtoss_obs::span("probe");
        // The lazy variants must not even run their closures when
        // disabled — these would allocate a String and a Vec if run.
        let _lazy = rtoss_obs::span_lazy(|| {
            (
                format!("expensive-{i}"),
                vec![("i", rtoss_obs::ArgValue::U64(i))],
            )
        });
        rtoss_obs::emit_instant("probe", Vec::new());
        rtoss_obs::emit_instant_lazy(|| {
            (
                format!("expensive-{i}"),
                vec![("i", rtoss_obs::ArgValue::U64(i))],
            )
        });
        std::hint::black_box(i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled span/instant probes must not touch the heap"
    );
}

#[test]
fn suppressed_lazy_instants_allocate_nothing_with_tracing_on() {
    let _flags = flag_lock();
    rtoss_obs::set_enabled(true);
    // Keep 1 in u64::MAX sampling roots: root 0 is the only kept one,
    // so consume it outside the counted window — every scope after it
    // is a suppressing scope and must cost nothing.
    rtoss_obs::set_sample_every(u64::MAX);
    drop(rtoss_obs::batch_scope());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let scope = rtoss_obs::batch_scope();
        assert!(!scope.recording(), "sampling must suppress this scope");
        rtoss_obs::emit_instant_lazy(|| {
            (
                format!("expensive-{i}"),
                vec![("i", rtoss_obs::ArgValue::U64(i))],
            )
        });
        std::hint::black_box(i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    rtoss_obs::set_sample_every(1);
    rtoss_obs::set_enabled(false);
    assert_eq!(
        after - before,
        0,
        "suppressed lazy instants must not run their closures"
    );
}

#[test]
fn disabled_series_recorders_allocate_nothing_per_sample() {
    use rtoss_obs::timeseries::{
        WindowSpec, WindowedCounter, WindowedGauge, WindowedHistogram, WindowedSet,
    };
    let _flags = flag_lock();
    rtoss_obs::set_series_enabled(false);
    // Construction allocates; only the per-sample record path must not.
    let spec = WindowSpec::default();
    let counter = WindowedCounter::new(spec);
    let set = WindowedSet::new(spec, &["offered", "admitted"]);
    let gauge = WindowedGauge::new(spec);
    let histogram = WindowedHistogram::new(spec, &[100, 1_000, 10_000]);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let ts = i * 1_000_000;
        counter.add_at(ts, i);
        set.incr_pair_at(ts, 0, 1);
        gauge.set_at(ts, i as f64);
        histogram.record_at(ts, i);
        std::hint::black_box(i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled windowed-series probes must not touch the heap"
    );
}
