//! Proves the disabled tracing path allocates nothing.
//!
//! The instrumentation sits inside per-layer executor loops and the
//! serving hot path, so when tracing is off a span probe must cost a
//! flag load — in particular, zero heap traffic. A counting global
//! allocator makes that a hard assertion rather than a benchmark.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter increment has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator's
        // `alloc` with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracing_allocates_nothing_per_span() {
    rtoss_obs::set_enabled(false);
    // Warm up the thread-local state outside the counted window.
    drop(rtoss_obs::span("warmup"));
    rtoss_obs::emit_instant("warmup", Vec::new());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let _guard = rtoss_obs::span("probe");
        // The lazy variant must not even run its closure when disabled —
        // this one would allocate a String and a Vec if it did.
        let _lazy = rtoss_obs::span_lazy(|| {
            (
                format!("expensive-{i}"),
                vec![("i", rtoss_obs::ArgValue::U64(i))],
            )
        });
        rtoss_obs::emit_instant("probe", Vec::new());
        std::hint::black_box(i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled span/instant probes must not touch the heap"
    );
}
