//! Edge-case and property tests for the windowed time-series rings:
//! boundary samples, backwards clocks, ring wrap after idle gaps, and
//! randomized per-window-sums-equal-totals conservation.

use proptest::prelude::*;
use rtoss_obs::timeseries::{set_series_enabled, WindowSpec, WindowedCounter, WindowedSet};
use std::collections::BTreeMap;

/// Serializes tests: the series-enabled flag is process-wide.
fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const W: u64 = 1_000_000; // 1 ms windows

#[test]
fn boundary_sample_opens_the_new_window() {
    let _flags = flag_lock();
    set_series_enabled(true);
    let c = WindowedCounter::new(WindowSpec::new(W, 8));
    c.add_at(W - 1, 1); // last nanosecond of window 0
    c.add_at(W, 10); // exactly on the boundary: opens window 1
    c.add_at(W + 1, 100);
    let s = c.samples();
    assert_eq!(s.len(), 2);
    assert_eq!((s[0].start_ns, s[0].count, s[0].sum), (0, 1, 1));
    assert_eq!((s[1].start_ns, s[1].count, s[1].sum), (W, 2, 110));
    set_series_enabled(false);
}

#[test]
fn backwards_clock_lands_in_live_windows_and_goes_late_past_them() {
    let _flags = flag_lock();
    set_series_enabled(true);
    let c = WindowedCounter::new(WindowSpec::new(W, 4));
    // Fill windows 4..8: the 4-slot ring now holds exactly those four.
    for k in 4..8u64 {
        c.add_at(k * W, 1);
    }
    // A modest backwards step to a still-live window is fine: the
    // sample lands in window 5, not in the current one.
    c.add_at(5 * W + 10, 1);
    assert_eq!(c.late(), 0);
    let s = c.samples();
    assert_eq!(s.iter().find(|x| x.start_ns == 5 * W).unwrap().count, 2);
    // A step to before the ring's history cannot land — its slot holds
    // a newer window — and must be tallied late, not silently merged.
    c.add_at(2 * W, 7);
    assert_eq!(c.late(), 1);
    assert_eq!(c.total(), (5, 5), "late samples never reach the totals");
    set_series_enabled(false);
}

#[test]
fn ring_wrap_after_idle_gap_evicts_the_stale_window() {
    let _flags = flag_lock();
    set_series_enabled(true);
    let c = WindowedCounter::new(WindowSpec::new(W, 4));
    c.add_at(1, 3);
    // Idle for far longer than the whole ring span, then resume in a
    // window that reuses slot 0 (100 % 4 == 0): the stale window must
    // be harvested into the evicted totals, not reported as live.
    c.add_at(100 * W, 5);
    let s = c.samples();
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].start_ns, 100 * W);
    let snap = c.snapshot("idle-wrap");
    assert_eq!((snap.evicted_count, snap.evicted_sum), (1, 3));
    assert_eq!(snap.total_count, s[0].count + snap.evicted_count);
    assert_eq!(c.late(), 0);
    set_series_enabled(false);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sample batch within one ring span: every window's count/sum
    /// matches an independent model exactly, and the grand totals equal
    /// the per-window sums (nothing evicted, nothing late).
    #[test]
    fn counter_window_sums_match_totals(
        samples in proptest::collection::vec((0u64..64 * W, 0u64..1_000), 1..200)
    ) {
        let _flags = flag_lock();
        set_series_enabled(true);
        let c = WindowedCounter::new(WindowSpec::new(W, 64));
        let mut model: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for &(ts, v) in &samples {
            c.add_at(ts, v);
            let e = model.entry(ts / W * W).or_default();
            e.0 += 1;
            e.1 += v;
        }
        let got: BTreeMap<u64, (u64, u64)> = c
            .samples()
            .into_iter()
            .map(|w| (w.start_ns, (w.count, w.sum)))
            .collect();
        set_series_enabled(false);
        prop_assert_eq!(&got, &model);
        let live: (u64, u64) = got.values().fold((0, 0), |a, v| (a.0 + v.0, a.1 + v.1));
        prop_assert_eq!(c.total(), live);
        prop_assert_eq!(c.late(), 0);
        prop_assert_eq!(c.snapshot("prop").evicted_count, 0);
    }

    /// Paired-lane recording keeps `offered == Σ outcome lanes` in
    /// every window and in the totals for any timestamp/outcome mix.
    #[test]
    fn set_pairs_conserve_per_window(
        samples in proptest::collection::vec((0u64..64 * W, 1usize..4), 1..200)
    ) {
        let _flags = flag_lock();
        set_series_enabled(true);
        let s = WindowedSet::new(
            WindowSpec::new(W, 64),
            &["offered", "admitted", "throttled", "shed"],
        );
        for &(ts, outcome) in &samples {
            s.incr_pair_at(ts, 0, outcome);
        }
        let windows = s.samples();
        set_series_enabled(false);
        for w in &windows {
            prop_assert_eq!(w.counts[0], w.counts[1] + w.counts[2] + w.counts[3]);
        }
        prop_assert_eq!(s.total_lane(0), samples.len() as u64);
        prop_assert_eq!(
            s.total_lane(1) + s.total_lane(2) + s.total_lane(3),
            samples.len() as u64
        );
        let live: u64 = windows.iter().map(|w| w.counts[0]).sum();
        prop_assert_eq!(live + s.evicted_lane(0), s.total_lane(0));
    }
}
