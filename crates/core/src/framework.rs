//! The R-TOSS pruner: orchestrates Algorithms 1–3 over a model graph.

use crate::dfs::group_layers;
use crate::pattern::{canonical_set, default_budget, select_patterns, PatternSet};
use crate::prune1x1::prune_1x1_weights;
use crate::prune3x3::prune_3x3_weights;
use crate::report::{LayerSparsity, PruneReport};
use crate::PruneError;
use rtoss_nn::{Graph, NodeId};

/// The entry-pattern variant: how many non-zero weights each kernel
/// pattern keeps. The paper proposes [`Two`](EntryPattern::Two) and
/// [`Three`](EntryPattern::Three); [`Four`](EntryPattern::Four) and
/// [`Five`](EntryPattern::Five) exist for the Table 3 sensitivity
/// analysis (and Four matches prior work PATDNN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryPattern {
    /// 2 non-zero weights per kernel (R-TOSS-2EP).
    Two,
    /// 3 non-zero weights per kernel (R-TOSS-3EP).
    Three,
    /// 4 non-zero weights per kernel (sensitivity variant / PATDNN).
    Four,
    /// 5 non-zero weights per kernel (sensitivity variant).
    Five,
}

impl EntryPattern {
    /// The numeric entry count `k`.
    pub fn k(self) -> usize {
        match self {
            EntryPattern::Two => 2,
            EntryPattern::Three => 3,
            EntryPattern::Four => 4,
            EntryPattern::Five => 5,
        }
    }

    /// All variants, in Table 3 order (5EP → 2EP).
    pub fn all() -> [EntryPattern; 4] {
        [
            EntryPattern::Five,
            EntryPattern::Four,
            EntryPattern::Three,
            EntryPattern::Two,
        ]
    }

    /// Display label matching the paper ("2EP", "3EP", ...).
    pub fn label(self) -> &'static str {
        match self {
            EntryPattern::Two => "2EP",
            EntryPattern::Three => "3EP",
            EntryPattern::Four => "4EP",
            EntryPattern::Five => "5EP",
        }
    }
}

impl std::fmt::Display for EntryPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A pruning method that can be applied to a model graph.
///
/// Implemented by [`RTossPruner`] and every baseline in
/// [`baselines`](crate::baselines); the Fig. 4–7 harnesses iterate over
/// `Box<dyn Pruner>`.
pub trait Pruner {
    /// The method name as printed in the paper's figures.
    fn name(&self) -> String;

    /// Prunes the graph's convolution weights in place (installing
    /// parameter masks) and reports per-layer sparsity.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError`] if the configuration is invalid or a
    /// weight tensor has an unexpected shape.
    fn prune_graph(&self, graph: &mut Graph) -> Result<PruneReport, PruneError>;
}

/// Configuration of the R-TOSS framework.
#[derive(Debug, Clone, PartialEq)]
pub struct RTossConfig {
    /// Entry-pattern variant.
    pub entry: EntryPattern,
    /// Apply the 1×1 transformation (Algorithm 3). Disabling it
    /// reproduces the prior-work behaviour the paper improves on.
    pub prune_1x1: bool,
    /// Use DFS layer grouping (Algorithm 1) to share pattern subsets
    /// from parents to children. Disabling it makes every layer select
    /// from the full pattern set independently (ablation).
    pub use_groups: bool,
    /// Pattern-selection budget override (`None` = paper defaults:
    /// 12 for 2EP, 9 for 3EP, 8 otherwise).
    pub pattern_budget: Option<usize>,
    /// Seed for the pattern-selection sampling.
    pub seed: u64,
    /// Node-name prefixes to leave dense (e.g. `"detect"` to protect
    /// head layers, guided by
    /// [`sensitivity`](crate::sensitivity) analysis).
    pub protected: Vec<String>,
}

impl RTossConfig {
    /// Paper-default configuration for an entry-pattern variant.
    pub fn new(entry: EntryPattern) -> Self {
        RTossConfig {
            entry,
            prune_1x1: true,
            use_groups: true,
            pattern_budget: None,
            seed: 0x5EED,
            protected: Vec::new(),
        }
    }
}

/// The R-TOSS pruning framework (Fig. 2 of the paper).
///
/// # Example
///
/// ```
/// use rtoss_core::{EntryPattern, RTossPruner, Pruner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut model = rtoss_models::yolov5s_twin(8, 3, 1)?;
/// let report = RTossPruner::new(EntryPattern::Three).prune_graph(&mut model.graph)?;
/// assert!(report.overall_sparsity() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RTossPruner {
    config: RTossConfig,
}

impl RTossPruner {
    /// Creates a pruner with the paper-default configuration for the
    /// given entry-pattern variant.
    pub fn new(entry: EntryPattern) -> Self {
        RTossPruner {
            config: RTossConfig::new(entry),
        }
    }

    /// Creates a pruner from an explicit configuration.
    pub fn with_config(config: RTossConfig) -> Self {
        RTossPruner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RTossConfig {
        &self.config
    }

    fn pattern_set(&self) -> Result<PatternSet, PruneError> {
        let k = self.config.entry.k();
        match self.config.pattern_budget {
            Some(budget) => select_patterns(k, budget, 20_000, self.config.seed),
            None => {
                if self.config.seed == 0x5EED {
                    canonical_set(k)
                } else {
                    select_patterns(k, default_budget(k), 20_000, self.config.seed)
                }
            }
        }
    }

    /// Prunes a single conv node with the appropriate algorithm,
    /// returning the pattern-index subset it used (3×3 layers only).
    fn prune_node(
        &self,
        graph: &mut Graph,
        id: NodeId,
        patterns: &PatternSet,
    ) -> Result<Option<Vec<usize>>, PruneError> {
        let name = graph.node(id).name.clone();
        if self.config.protected.iter().any(|p| name.starts_with(p)) {
            return Ok(None);
        }
        let conv = graph.conv_mut(id).expect("conv id");
        let kernel = conv.kernel_size();
        let param = conv.weight_mut();
        match kernel {
            3 => {
                let mut w = param.value.clone();
                let out = prune_3x3_weights(&mut w, patterns)?;
                let used = out.used_patterns();
                param.value = w;
                param.set_mask(out.mask)?;
                Ok(Some(used))
            }
            1 if self.config.prune_1x1 => {
                let mut w = param.value.clone();
                let out = prune_1x1_weights(&mut w, patterns)?;
                let used = out.used_patterns();
                param.value = w;
                param.set_mask(out.mask)?;
                // Layers too small to fill one 3×3 pool have no pattern
                // choices to share.
                Ok(if used.is_empty() { None } else { Some(used) })
            }
            // Other kernel sizes (stems: 6×6, 7×7; or 1×1 with the
            // transformation disabled) are left dense, as in the paper.
            _ => Ok(None),
        }
    }
}

impl Pruner for RTossPruner {
    fn name(&self) -> String {
        format!("R-TOSS ({})", self.config.entry.label())
    }

    fn prune_graph(&self, graph: &mut Graph) -> Result<PruneReport, PruneError> {
        let patterns = self.pattern_set()?;
        let mut report = PruneReport::new(&self.name());

        if self.config.use_groups {
            let groups = group_layers(graph);
            report.group_count = groups.len();
            for group in groups.groups() {
                // Parent selects from the full set; children share the
                // parent's used-pattern subset (§IV.C: kernels in a group
                // "share the same kernel patterns").
                let used = self.prune_node(graph, group.parent, &patterns)?;
                let child_set = match used {
                    Some(idx) if !idx.is_empty() => patterns.subset(&idx)?,
                    _ => patterns.clone(),
                };
                for &child in &group.children {
                    self.prune_node(graph, child, &child_set)?;
                }
            }
        } else {
            for id in graph.conv_ids() {
                self.prune_node(graph, id, &patterns)?;
            }
        }

        for id in graph.conv_ids() {
            let node_name = graph.node(id).name.clone();
            let conv = graph.conv(id).expect("conv id");
            let w = &conv.weight().value;
            report.layers.push(LayerSparsity {
                name: node_name,
                kernel: conv.kernel_size(),
                total: w.numel(),
                zeros: w.count_zeros(),
            });
        }
        Ok(report)
    }
}

/// Builds a [`PruneReport`] snapshot from a graph's current weights
/// without pruning anything (used for the unpruned Base Model rows).
pub fn snapshot_report(graph: &Graph, method: &str) -> PruneReport {
    let mut report = PruneReport::new(method);
    for id in graph.conv_ids() {
        let conv = graph.conv(id).expect("conv id");
        let w = &conv.weight().value;
        report.layers.push(LayerSparsity {
            name: graph.node(id).name.clone(),
            kernel: conv.kernel_size(),
            total: w.numel(),
            zeros: w.count_zeros(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_models::yolov5s_twin;

    #[test]
    fn two_ep_prunes_harder_than_five_ep() {
        let mut ratios = Vec::new();
        for entry in EntryPattern::all() {
            let mut m = yolov5s_twin(8, 3, 9).unwrap();
            let r = RTossPruner::new(entry).prune_graph(&mut m.graph).unwrap();
            ratios.push(r.compression_ratio());
        }
        // Table 3 ordering: 5EP < 4EP < 3EP < 2EP.
        for w in ratios.windows(2) {
            assert!(w[1] > w[0], "ratios not increasing: {ratios:?}");
        }
    }

    #[test]
    fn sparsity_close_to_k_over_nine() {
        let mut m = yolov5s_twin(8, 3, 10).unwrap();
        let r = RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .unwrap();
        // 3×3 layers land exactly at 7/9; 1×1 layers slightly above
        // (tail pruning); whole model must be within a few points.
        let s3 = r.sparsity_for_kernel(3);
        assert!((s3 - 7.0 / 9.0).abs() < 1e-6, "3x3 sparsity {s3}");
        let s1 = r.sparsity_for_kernel(1);
        assert!(s1 >= 7.0 / 9.0 - 1e-6, "1x1 sparsity {s1}");
        assert!(r.overall_sparsity() > 0.7);
    }

    #[test]
    fn disabling_1x1_transformation_lowers_sparsity() {
        let run = |prune_1x1| {
            let mut m = yolov5s_twin(8, 3, 11).unwrap();
            let cfg = RTossConfig {
                prune_1x1,
                ..RTossConfig::new(EntryPattern::Two)
            };
            RTossPruner::with_config(cfg)
                .prune_graph(&mut m.graph)
                .unwrap()
                .overall_sparsity()
        };
        let with = run(true);
        let without = run(false);
        assert!(with > without + 0.2, "with {with} vs without {without}");
    }

    #[test]
    fn masks_are_installed() {
        let mut m = yolov5s_twin(4, 2, 12).unwrap();
        RTossPruner::new(EntryPattern::Three)
            .prune_graph(&mut m.graph)
            .unwrap();
        let mut masked = 0;
        for id in m.graph.conv_ids() {
            let conv = m.graph.conv(id).unwrap();
            if conv.weight().mask().is_some() {
                masked += 1;
                assert!(matches!(conv.kernel_size(), 1 | 3));
            }
        }
        assert!(masked > 10, "only {masked} layers masked");
    }

    #[test]
    fn one_by_one_groups_share_parent_subsets() {
        // A chain of 1×1 convs forms one group; children must be pruned
        // with the parent's used-pattern subset. Observable effect: the
        // pass still succeeds and sparsity matches the entry count.
        let mut g = rtoss_nn::Graph::new();
        let x = g.add_input("x");
        let p1 = g
            .add_layer(
                "p1",
                Box::new(rtoss_nn::layers::Conv2d::new(9, 18, 1, 1, 0, 1)),
                x,
            )
            .unwrap();
        let p2 = g
            .add_layer(
                "p2",
                Box::new(rtoss_nn::layers::Conv2d::new(18, 9, 1, 1, 0, 2)),
                p1,
            )
            .unwrap();
        g.set_outputs(vec![p2]).unwrap();
        let r = RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut g)
            .unwrap();
        assert_eq!(r.group_count, 1);
        assert!((r.overall_sparsity() - 7.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn grouping_reports_groups_and_preserves_sparsity() {
        let run = |use_groups| {
            let mut m = yolov5s_twin(8, 3, 13).unwrap();
            let cfg = RTossConfig {
                use_groups,
                ..RTossConfig::new(EntryPattern::Three)
            };
            RTossPruner::with_config(cfg)
                .prune_graph(&mut m.graph)
                .unwrap()
        };
        let grouped = run(true);
        let flat = run(false);
        assert!(grouped.group_count > 0);
        assert_eq!(flat.group_count, 0);
        // Same entry count → identical sparsity either way.
        assert!((grouped.overall_sparsity() - flat.overall_sparsity()).abs() < 1e-9);
    }

    #[test]
    fn snapshot_report_on_dense_model() {
        let m = yolov5s_twin(4, 2, 14).unwrap();
        let r = snapshot_report(&m.graph, "BM");
        assert_eq!(r.method, "BM");
        assert!(r.overall_sparsity() < 0.01);
        assert!((r.compression_ratio() - 1.0).abs() < 0.02);
    }

    #[test]
    fn entry_pattern_metadata() {
        assert_eq!(EntryPattern::Two.k(), 2);
        assert_eq!(EntryPattern::Five.label(), "5EP");
        assert_eq!(EntryPattern::all().len(), 4);
        assert_eq!(format!("{}", EntryPattern::Three), "3EP");
    }
}
