//! # R-TOSS pruning framework (the paper's contribution)
//!
//! Implements the full semi-structured pruning pipeline of
//! *"R-TOSS: A Framework for Real-Time Object Detection using
//! Semi-Structured Pruning"* (DAC 2023):
//!
//! 1. **Kernel patterns** ([`pattern`]): candidate 3×3 masks enumerated
//!    combinatorially (Eq. 1), filtered to 4-connected ("adjacent")
//!    shapes, and narrowed by L2-frequency selection to the paper's
//!    21-pattern working set (12 two-entry + 9 three-entry).
//! 2. **DFS layer grouping** ([`dfs`], Algorithm 1): parent–child layer
//!    groups over the computational graph; the parent's pattern choices
//!    are shared with its children to cut pruning cost.
//! 3. **3×3 kernel pruning** ([`prune3x3`], Algorithm 2): per-kernel
//!    best-pattern selection by post-mask L2 norm.
//! 4. **1×1 kernel transformation** ([`prune1x1`], Algorithm 3): 1×1
//!    weights pooled 9-at-a-time into temporary 3×3 matrices, pruned by
//!    Algorithm 2, and scattered back — replacing connectivity pruning.
//! 5. **Baselines** ([`baselines`]): PATDNN, Neural Magic SparseML-style
//!    magnitude pruning, Network Slimming, Pruning Filters, and Neural
//!    Pruning, for the Fig. 4–7 comparisons.
//!
//! # Example
//!
//! ```
//! use rtoss_core::{EntryPattern, Pruner, RTossPruner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut model = rtoss_models::yolov5s_twin(8, 3, 42)?;
//! let report = RTossPruner::new(EntryPattern::Two).prune_graph(&mut model.graph)?;
//! assert!(report.compression_ratio() > 2.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod framework;
mod report;

pub mod accuracy;
pub mod baselines;
pub mod dfs;
pub mod pattern;
pub mod prune1x1;
pub mod prune3x3;
pub mod schedule;
pub mod sensitivity;

pub use error::PruneError;
pub use framework::{snapshot_report, EntryPattern, Pruner, RTossConfig, RTossPruner};
pub use report::{LayerSparsity, PruneReport};
