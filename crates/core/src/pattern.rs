//! Kernel patterns: generation (Eq. 1), the adjacency filter, and
//! L2-frequency selection (§IV.B of the paper).
//!
//! A pattern is a binary mask over a 3×3 kernel with exactly `k`
//! non-zero cells. The paper generates all `C(9, k)` candidates, drops
//! "patterns without adjacent non-zero weights" (we read this as: the
//! kept cells form one 4-connected component, preserving the
//! semi-structured property), and keeps the most-used patterns measured
//! by which pattern maximises the post-mask L2 norm of random kernels
//! drawn uniformly from `[-1, 1]`. The working set the paper lands on
//! has **21 patterns**; with our selection defaults that is exactly the
//! 12 connected 2-entry patterns plus the top-9 of the 22 connected
//! 3-entry patterns ([`canonical_pattern_count`]).

use crate::PruneError;
use rand::Rng;
use rtoss_tensor::init;
use serde::{Deserialize, Serialize};

/// A binary mask over a 3×3 kernel, stored as a 9-bit set
/// (row-major: bit `3*row + col`).
///
/// # Example
///
/// ```
/// use rtoss_core::pattern::Pattern;
///
/// let p = Pattern::from_cells(&[(0, 0), (0, 1)]).unwrap();
/// assert_eq!(p.weight_count(), 2);
/// assert!(p.is_connected());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pattern(u16);

impl Pattern {
    /// Builds a pattern from `(row, col)` cells.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if a cell is out of the 3×3 range
    /// or duplicated.
    pub fn from_cells(cells: &[(usize, usize)]) -> Result<Self, PruneError> {
        let mut bits = 0u16;
        for &(r, c) in cells {
            if r >= 3 || c >= 3 {
                return Err(PruneError::Config {
                    msg: format!("pattern cell ({r},{c}) outside 3x3"),
                });
            }
            let bit = 1u16 << (3 * r + c);
            if bits & bit != 0 {
                return Err(PruneError::Config {
                    msg: format!("duplicate pattern cell ({r},{c})"),
                });
            }
            bits |= bit;
        }
        Ok(Pattern(bits))
    }

    /// Builds a pattern from a raw 9-bit mask.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if bits above the ninth are set.
    pub fn from_bits(bits: u16) -> Result<Self, PruneError> {
        if bits >= 1 << 9 {
            return Err(PruneError::Config {
                msg: format!("pattern bits {bits:#x} exceed 3x3"),
            });
        }
        Ok(Pattern(bits))
    }

    /// The raw 9-bit mask.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Whether the cell at `(row, col)` is kept (non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `row >= 3` or `col >= 3`.
    pub fn keeps(self, row: usize, col: usize) -> bool {
        assert!(row < 3 && col < 3);
        self.0 & (1 << (3 * row + col)) != 0
    }

    /// Number of kept (non-zero) cells — the "entry count" `k`.
    pub fn weight_count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The kept cells as `(row, col)` pairs, row-major.
    pub fn cells(self) -> Vec<(usize, usize)> {
        (0..9)
            .filter(|i| self.0 & (1 << i) != 0)
            .map(|i| (i / 3, i % 3))
            .collect()
    }

    /// Whether the kept cells form a single 4-connected component
    /// (the paper's "adjacent non-zero weights" criterion).
    pub fn is_connected(self) -> bool {
        let cells = self.cells();
        let Some(&start) = cells.first() else {
            return false;
        };
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some((r, c)) = stack.pop() {
            for (nr, nc) in [
                (r.wrapping_sub(1), c),
                (r + 1, c),
                (r, c.wrapping_sub(1)),
                (r, c + 1),
            ] {
                if nr < 3 && nc < 3 && self.keeps(nr, nc) && !seen.contains(&(nr, nc)) {
                    seen.push((nr, nc));
                    stack.push((nr, nc));
                }
            }
        }
        seen.len() == cells.len()
    }

    /// Applies the pattern to a flat row-major 3×3 kernel, zeroing the
    /// dropped cells in place.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != 9`.
    pub fn apply(self, kernel: &mut [f32]) {
        assert_eq!(kernel.len(), 9, "pattern applies to 3x3 kernels");
        for (i, v) in kernel.iter_mut().enumerate() {
            if self.0 & (1 << i) == 0 {
                *v = 0.0;
            }
        }
    }

    /// L2 norm of the kernel after applying this pattern (without
    /// modifying the kernel) — the selection score of Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != 9`.
    pub fn masked_l2(self, kernel: &[f32]) -> f32 {
        assert_eq!(kernel.len(), 9, "pattern applies to 3x3 kernels");
        let mut s = 0.0f32;
        for (i, &v) in kernel.iter().enumerate() {
            if self.0 & (1 << i) != 0 {
                s += v * v;
            }
        }
        s.sqrt()
    }
}

/// `n(k) = C(9, k)`: the number of raw pattern candidates (Eq. 1 with
/// `n = 9`).
pub fn candidate_count(k: usize) -> usize {
    // C(9, k)
    if k > 9 {
        return 0;
    }
    let mut num = 1usize;
    let mut den = 1usize;
    for i in 0..k {
        num *= 9 - i;
        den *= i + 1;
    }
    num / den
}

/// Enumerates all `C(9, k)` patterns with exactly `k` kept cells.
///
/// # Errors
///
/// Returns [`PruneError::Config`] if `k` is 0 or greater than 9 (the
/// paper's valid range is 1..=8).
pub fn generate_all(k: usize) -> Result<Vec<Pattern>, PruneError> {
    if k == 0 || k > 9 {
        return Err(PruneError::Config {
            msg: format!("entry count k={k} outside 1..=9"),
        });
    }
    let mut out = Vec::with_capacity(candidate_count(k));
    for bits in 0u16..(1 << 9) {
        if bits.count_ones() as usize == k {
            out.push(Pattern(bits));
        }
    }
    Ok(out)
}

/// Enumerates the connected ("adjacent") patterns with `k` kept cells —
/// the paper's first narrowing criterion.
///
/// # Errors
///
/// Propagates [`generate_all`] errors.
pub fn generate_adjacent(k: usize) -> Result<Vec<Pattern>, PruneError> {
    Ok(generate_all(k)?
        .into_iter()
        .filter(|p| p.is_connected())
        .collect())
}

/// An ordered set of candidate patterns sharing the same entry count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSet {
    k: usize,
    patterns: Vec<Pattern>,
}

impl PatternSet {
    /// Wraps an explicit pattern list.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if the list is empty or the entry
    /// counts are inconsistent.
    pub fn new(patterns: Vec<Pattern>) -> Result<Self, PruneError> {
        let Some(first) = patterns.first() else {
            return Err(PruneError::Config {
                msg: "empty pattern set".into(),
            });
        };
        let k = first.weight_count();
        if patterns.iter().any(|p| p.weight_count() != k) {
            return Err(PruneError::Config {
                msg: "mixed entry counts in pattern set".into(),
            });
        }
        Ok(PatternSet { k, patterns })
    }

    /// Entry count `k` shared by all patterns.
    pub fn entry_count(&self) -> usize {
        self.k
    }

    /// The patterns, in selection order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The best pattern for a flat 3×3 kernel by post-mask L2 norm
    /// (Algorithm 2, lines 7–11). Returns `(index, l2)`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel.len() != 9`.
    pub fn best_for(&self, kernel: &[f32]) -> (usize, f32) {
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, p) in self.patterns.iter().enumerate() {
            let l2 = p.masked_l2(kernel);
            if l2 > best.1 {
                best = (i, l2);
            }
        }
        best
    }

    /// Restricts the set to the given pattern indices (used to share a
    /// parent layer's pattern subset with its children).
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if `indices` is empty or any index
    /// is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<PatternSet, PruneError> {
        if indices.is_empty() {
            return Err(PruneError::Config {
                msg: "empty pattern subset".into(),
            });
        }
        let mut patterns = Vec::with_capacity(indices.len());
        for &i in indices {
            let p = self.patterns.get(i).ok_or_else(|| PruneError::Config {
                msg: format!("pattern index {i} out of range {}", self.patterns.len()),
            })?;
            patterns.push(*p);
        }
        PatternSet::new(patterns)
    }
}

/// L2-frequency selection (§IV.B, criterion 2): draws `samples` random
/// 3×3 kernels uniformly from `[-1, 1]`, counts which adjacent pattern
/// wins the post-mask L2 contest for each, and keeps the `budget`
/// most-used patterns.
///
/// # Errors
///
/// Returns [`PruneError::Config`] for `k` outside 1..=9, a zero budget,
/// or zero samples.
pub fn select_patterns(
    k: usize,
    budget: usize,
    samples: usize,
    seed: u64,
) -> Result<PatternSet, PruneError> {
    if budget == 0 || samples == 0 {
        return Err(PruneError::Config {
            msg: "pattern budget and sample count must be non-zero".into(),
        });
    }
    let candidates = generate_adjacent(k)?;
    let mut wins = vec![0u64; candidates.len()];
    let mut rng = init::rng(seed);
    let mut kernel = [0.0f32; 9];
    for _ in 0..samples {
        for v in &mut kernel {
            *v = rng.gen_range(-1.0f32..1.0);
        }
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, p) in candidates.iter().enumerate() {
            let l2 = p.masked_l2(&kernel);
            if l2 > best.1 {
                best = (i, l2);
            }
        }
        wins[best.0] += 1;
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        wins[b]
            .cmp(&wins[a])
            .then(candidates[a].cmp(&candidates[b]))
    });
    let kept: Vec<Pattern> = order
        .into_iter()
        .take(budget.min(candidates.len()))
        .map(|i| candidates[i])
        .collect();
    PatternSet::new(kept)
}

/// [`select_patterns`] without the adjacency filter: candidates are all
/// `C(9, k)` masks (ablation of §IV.B criterion 1 — disconnected
/// patterns score slightly higher L2 but forfeit the semi-structured
/// regularity the executors rely on).
///
/// # Errors
///
/// Returns [`PruneError::Config`] for invalid `k`, budget, or samples.
pub fn select_patterns_unfiltered(
    k: usize,
    budget: usize,
    samples: usize,
    seed: u64,
) -> Result<PatternSet, PruneError> {
    if budget == 0 || samples == 0 {
        return Err(PruneError::Config {
            msg: "pattern budget and sample count must be non-zero".into(),
        });
    }
    let candidates = generate_all(k)?;
    let mut wins = vec![0u64; candidates.len()];
    let mut rng = init::rng(seed);
    let mut kernel = [0.0f32; 9];
    for _ in 0..samples {
        for v in &mut kernel {
            *v = rng.gen_range(-1.0f32..1.0);
        }
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, p) in candidates.iter().enumerate() {
            let l2 = p.masked_l2(&kernel);
            if l2 > best.1 {
                best = (i, l2);
            }
        }
        wins[best.0] += 1;
    }
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        wins[b]
            .cmp(&wins[a])
            .then(candidates[a].cmp(&candidates[b]))
    });
    let kept: Vec<Pattern> = order
        .into_iter()
        .take(budget.min(candidates.len()))
        .map(|i| candidates[i])
        .collect();
    PatternSet::new(kept)
}

/// The paper's default pattern budget per entry count: all 12 connected
/// 2-entry patterns, the top-9 3-entry patterns (12 + 9 = the paper's
/// "21 pre-defined kernel patterns"), and 8 patterns for the 4EP/5EP
/// sensitivity variants (PATDNN's working-set size).
pub fn default_budget(k: usize) -> usize {
    match k {
        2 => 12,
        3 => 9,
        _ => 8,
    }
}

/// Builds the canonical pattern set for entry count `k` with the
/// default budget and a fixed selection seed.
///
/// # Errors
///
/// Propagates [`select_patterns`] errors.
pub fn canonical_set(k: usize) -> Result<PatternSet, PruneError> {
    select_patterns(k, default_budget(k), 20_000, 0x5EED)
}

/// Total number of patterns in the paper's working set
/// (2EP ∪ 3EP): must equal 21 (§IV.C).
pub fn canonical_pattern_count() -> usize {
    default_budget(2) + default_budget(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_counts_match_eq1() {
        // C(9, k) for k = 1..=8: 9, 36, 84, 126, 126, 84, 36, 9.
        let expect = [9, 36, 84, 126, 126, 84, 36, 9];
        for (k, &e) in (1..=8).zip(expect.iter()) {
            assert_eq!(candidate_count(k), e, "k={k}");
            assert_eq!(generate_all(k).unwrap().len(), e, "k={k}");
        }
    }

    #[test]
    fn adjacency_filter_counts() {
        // Connected 2-cell shapes = number of grid edges = 12.
        assert_eq!(generate_adjacent(2).unwrap().len(), 12);
        // Connected 3-cell shapes in a 3x3 grid = 22
        // (6 straight + 16 L-shaped placements).
        assert_eq!(generate_adjacent(3).unwrap().len(), 22);
        // All patterns remain valid k-subsets.
        for p in generate_adjacent(4).unwrap() {
            assert_eq!(p.weight_count(), 4);
            assert!(p.is_connected());
        }
    }

    #[test]
    fn connectivity_examples() {
        // Two opposite corners: not connected.
        let p = Pattern::from_cells(&[(0, 0), (2, 2)]).unwrap();
        assert!(!p.is_connected());
        // A row: connected.
        let p = Pattern::from_cells(&[(1, 0), (1, 1), (1, 2)]).unwrap();
        assert!(p.is_connected());
        // Diagonal neighbours don't count as adjacent.
        let p = Pattern::from_cells(&[(0, 0), (1, 1)]).unwrap();
        assert!(!p.is_connected());
    }

    #[test]
    fn apply_and_masked_l2() {
        let p = Pattern::from_cells(&[(0, 0), (0, 1), (1, 1)]).unwrap();
        let mut k = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let l2 = p.masked_l2(&k);
        assert!((l2 - (1.0f32 + 4.0 + 25.0).sqrt()).abs() < 1e-6);
        p.apply(&mut k);
        assert_eq!(k, [1.0, 2.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn best_for_picks_max_l2() {
        let set = PatternSet::new(vec![
            Pattern::from_cells(&[(0, 0), (0, 1)]).unwrap(),
            Pattern::from_cells(&[(2, 1), (2, 2)]).unwrap(),
        ])
        .unwrap();
        let kernel = [0.1, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0, 5.0];
        let (idx, l2) = set.best_for(&kernel);
        assert_eq!(idx, 1);
        assert!((l2 - 50.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn selection_is_deterministic_and_budgeted() {
        let a = select_patterns(3, 9, 5_000, 1).unwrap();
        let b = select_patterns(3, 9, 5_000, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
        assert_eq!(a.entry_count(), 3);
        for p in a.patterns() {
            assert!(p.is_connected());
        }
    }

    #[test]
    fn canonical_working_set_has_21_patterns() {
        // §IV.C: "we reduced the total number of patterns required to 21".
        assert_eq!(canonical_pattern_count(), 21);
        let two = canonical_set(2).unwrap();
        let three = canonical_set(3).unwrap();
        assert_eq!(two.len() + three.len(), 21);
    }

    #[test]
    fn pattern_set_validation() {
        assert!(PatternSet::new(vec![]).is_err());
        let mixed = vec![
            Pattern::from_cells(&[(0, 0), (0, 1)]).unwrap(),
            Pattern::from_cells(&[(0, 0), (0, 1), (0, 2)]).unwrap(),
        ];
        assert!(PatternSet::new(mixed).is_err());
    }

    #[test]
    fn subset_shares_patterns() {
        let set = canonical_set(2).unwrap();
        let sub = set.subset(&[0, 3]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.patterns()[0], set.patterns()[0]);
        assert!(set.subset(&[]).is_err());
        assert!(set.subset(&[99]).is_err());
    }

    #[test]
    fn invalid_construction() {
        assert!(Pattern::from_cells(&[(3, 0)]).is_err());
        assert!(Pattern::from_cells(&[(0, 0), (0, 0)]).is_err());
        assert!(Pattern::from_bits(1 << 9).is_err());
        assert!(generate_all(0).is_err());
        assert!(generate_all(10).is_err());
        assert!(select_patterns(3, 0, 10, 0).is_err());
        assert!(select_patterns(3, 5, 0, 0).is_err());
    }
}
