use rtoss_nn::NnError;
use rtoss_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by the pruning framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PruneError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A graph operation failed.
    Nn(NnError),
    /// Invalid pruner configuration (empty pattern set, bad ratio, ...).
    Config {
        /// Human-readable description.
        msg: String,
    },
    /// The target weights have an unexpected shape for the algorithm.
    Shape {
        /// Algorithm that rejected the weights.
        op: &'static str,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::Tensor(e) => write!(f, "tensor error during pruning: {e}"),
            PruneError::Nn(e) => write!(f, "graph error during pruning: {e}"),
            PruneError::Config { msg } => write!(f, "invalid pruner configuration: {msg}"),
            PruneError::Shape { op, msg } => write!(f, "{op}: {msg}"),
        }
    }
}

impl Error for PruneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PruneError::Tensor(e) => Some(e),
            PruneError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for PruneError {
    fn from(e: TensorError) -> Self {
        PruneError::Tensor(e)
    }
}

impl From<NnError> for PruneError {
    fn from(e: NnError) -> Self {
        PruneError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: PruneError = TensorError::DataLenMismatch {
            expected: 9,
            actual: 8,
        }
        .into();
        assert!(e.to_string().contains("pruning"));
        assert!(Error::source(&e).is_some());
        let c = PruneError::Config { msg: "x".into() };
        assert!(Error::source(&c).is_none());
    }
}
