//! Iterative pruning schedules.
//!
//! §IV of the paper: "Our R-TOSS framework adopts an iterative pruning
//! scheme with several optimizations for reducing computational cost and
//! time overheads." This module provides the schedule driver: a sequence
//! of progressively more aggressive entry patterns, each followed by a
//! caller-supplied fine-tuning callback (the `rtoss` facade's
//! `train_twin` in practice). Masks are replaced monotonically — a later,
//! tighter pattern can only keep cells that survived earlier rounds, so
//! sparsity never decreases across the schedule.

use crate::framework::{EntryPattern, Pruner, RTossConfig, RTossPruner};
use crate::report::PruneReport;
use crate::PruneError;
use rtoss_nn::Graph;

/// An iterative prune → fine-tune schedule over entry patterns.
///
/// # Example
///
/// ```
/// use rtoss_core::schedule::IterativeSchedule;
/// use rtoss_core::EntryPattern;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut model = rtoss_models::yolov5s_twin(4, 2, 1)?;
/// let schedule = IterativeSchedule::standard();
/// let reports = schedule.run(&mut model.graph, |_graph, round| {
///     // fine-tune between rounds here (no-op in this example)
///     let _ = round;
///     Ok(())
/// })?;
/// assert_eq!(reports.len(), 4);
/// assert!(reports[3].overall_sparsity() > reports[0].overall_sparsity());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IterativeSchedule {
    rounds: Vec<EntryPattern>,
    base_config: RTossConfig,
}

impl IterativeSchedule {
    /// Builds a schedule from an explicit round sequence.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if `rounds` is empty or entry
    /// counts ever *increase* (which would be a no-op round: masks only
    /// tighten).
    pub fn new(rounds: Vec<EntryPattern>) -> Result<Self, PruneError> {
        if rounds.is_empty() {
            return Err(PruneError::Config {
                msg: "iterative schedule needs at least one round".into(),
            });
        }
        for w in rounds.windows(2) {
            if w[1].k() > w[0].k() {
                return Err(PruneError::Config {
                    msg: format!(
                        "schedule must tighten monotonically: {} before {}",
                        w[0], w[1]
                    ),
                });
            }
        }
        Ok(IterativeSchedule {
            rounds,
            base_config: RTossConfig::new(EntryPattern::Two),
        })
    }

    /// The paper's natural schedule: 5EP → 4EP → 3EP → 2EP.
    pub fn standard() -> Self {
        IterativeSchedule::new(vec![
            EntryPattern::Five,
            EntryPattern::Four,
            EntryPattern::Three,
            EntryPattern::Two,
        ])
        .expect("standard schedule is monotone")
    }

    /// The rounds, in execution order.
    pub fn rounds(&self) -> &[EntryPattern] {
        &self.rounds
    }

    /// Runs the schedule: each round prunes with its entry pattern and
    /// then invokes `finetune(graph, round_index)`.
    ///
    /// Returns one [`PruneReport`] per round.
    ///
    /// # Errors
    ///
    /// Propagates pruning errors and any error from the callback.
    pub fn run<F>(&self, graph: &mut Graph, mut finetune: F) -> Result<Vec<PruneReport>, PruneError>
    where
        F: FnMut(&mut Graph, usize) -> Result<(), PruneError>,
    {
        let mut reports = Vec::with_capacity(self.rounds.len());
        for (i, &entry) in self.rounds.iter().enumerate() {
            let cfg = RTossConfig {
                entry,
                ..self.base_config.clone()
            };
            let report = RTossPruner::with_config(cfg).prune_graph(graph)?;
            finetune(graph, i)?;
            reports.push(report);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_models::yolov5s_twin;

    #[test]
    fn sparsity_is_monotone_across_rounds() {
        let mut m = yolov5s_twin(8, 3, 90).unwrap();
        let reports = IterativeSchedule::standard()
            .run(&mut m.graph, |_, _| Ok(()))
            .unwrap();
        let sparsities: Vec<f64> = reports.iter().map(|r| r.overall_sparsity()).collect();
        for w in sparsities.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{sparsities:?}");
        }
        // Final round reaches 2EP-level sparsity.
        assert!(sparsities.last().unwrap() > &0.7);
    }

    #[test]
    fn callback_sees_every_round() {
        let mut m = yolov5s_twin(4, 2, 91).unwrap();
        let mut seen = Vec::new();
        IterativeSchedule::standard()
            .run(&mut m.graph, |_, i| {
                seen.push(i);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn callback_errors_abort_the_schedule() {
        let mut m = yolov5s_twin(4, 2, 92).unwrap();
        let err = IterativeSchedule::standard().run(&mut m.graph, |_, i| {
            if i == 1 {
                Err(PruneError::Config { msg: "stop".into() })
            } else {
                Ok(())
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn iterative_end_state_matches_one_shot_sparsity() {
        // Progressive tightening lands at (or slightly above) one-shot
        // 2EP sparsity: later patterns may cover already-zero cells.
        let mut it = yolov5s_twin(8, 3, 93).unwrap();
        let reports = IterativeSchedule::standard()
            .run(&mut it.graph, |_, _| Ok(()))
            .unwrap();
        let mut once = yolov5s_twin(8, 3, 93).unwrap();
        let one_shot = RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut once.graph)
            .unwrap();
        let iter_s = reports.last().unwrap().overall_sparsity();
        assert!(
            iter_s >= one_shot.overall_sparsity() - 1e-9,
            "iterative {iter_s} vs one-shot {}",
            one_shot.overall_sparsity()
        );
    }

    #[test]
    fn rejects_bad_schedules() {
        assert!(IterativeSchedule::new(vec![]).is_err());
        assert!(IterativeSchedule::new(vec![EntryPattern::Two, EntryPattern::Five]).is_err());
        assert!(IterativeSchedule::new(vec![EntryPattern::Three]).is_ok());
    }
}
