//! Network Slimming baseline (Liu et al., ICCV'17): channel pruning by
//! the batch-norm scaling factor — "a channel is pruned based on a
//! scaling factor for the channel in a layer" (§V.C).

use crate::report::{LayerSparsity, PruneReport};
use crate::{PruneError, Pruner};
use rtoss_nn::{Graph, NodeId};
use rtoss_tensor::Tensor;

/// Channel pruner driven by BN `gamma` magnitudes.
///
/// For every convolution directly followed by a batch-norm, the channels
/// whose `|gamma|` falls in the lowest `channel_ratio` fraction
/// (ranked globally, as in the original paper) are zeroed: the conv's
/// output-channel filters and the BN scale/shift for those channels.
#[derive(Debug, Clone)]
pub struct NetworkSlimming {
    channel_ratio: f64,
}

impl NetworkSlimming {
    /// Creates a slimming pruner cutting the given channel fraction.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if the ratio is outside `[0, 1)`.
    pub fn new(channel_ratio: f64) -> Result<Self, PruneError> {
        if !(0.0..1.0).contains(&channel_ratio) {
            return Err(PruneError::Config {
                msg: format!("channel ratio {channel_ratio} outside [0, 1)"),
            });
        }
        Ok(NetworkSlimming { channel_ratio })
    }

    /// Fraction of BN channels pruned.
    pub fn channel_ratio(&self) -> f64 {
        self.channel_ratio
    }
}

impl Default for NetworkSlimming {
    /// The original paper's common 40% channel-pruning operating point.
    fn default() -> Self {
        NetworkSlimming {
            channel_ratio: 0.40,
        }
    }
}

/// Finds `(conv_id, bn_id)` pairs where the BN directly consumes the
/// conv output.
fn conv_bn_pairs(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for id in graph.conv_ids() {
        for child in graph.children(id) {
            if graph.batchnorm(child).is_some() {
                out.push((id, child));
                break;
            }
        }
    }
    out
}

impl Pruner for NetworkSlimming {
    fn name(&self) -> String {
        "NS".to_string()
    }

    fn prune_graph(&self, graph: &mut Graph) -> Result<PruneReport, PruneError> {
        let pairs = conv_bn_pairs(graph);
        // Global gamma ranking across all BN channels (the paper sorts
        // all scaling factors network-wide).
        let mut gammas: Vec<(usize, usize, f32)> = Vec::new(); // (pair idx, channel, |gamma|)
        for (pi, &(_, bn_id)) in pairs.iter().enumerate() {
            let bn = graph.batchnorm(bn_id).expect("bn id");
            for (ci, &g) in bn.gamma().value.as_slice().iter().enumerate() {
                gammas.push((pi, ci, g.abs()));
            }
        }
        gammas.sort_by(|a, b| a.2.total_cmp(&b.2));
        let n_cut = ((gammas.len() as f64) * self.channel_ratio).floor() as usize;

        // Collect channels to cut per pair, but never cut *all* channels
        // of a layer (that would sever the network).
        let mut cut: Vec<Vec<usize>> = vec![Vec::new(); pairs.len()];
        let channel_counts: Vec<usize> = pairs
            .iter()
            .map(|&(_, bn)| graph.batchnorm(bn).expect("bn id").channels())
            .collect();
        let mut taken = 0usize;
        for &(pi, ci, _) in &gammas {
            if taken == n_cut {
                break;
            }
            if cut[pi].len() + 1 >= channel_counts[pi] {
                continue; // keep at least one channel per layer
            }
            cut[pi].push(ci);
            taken += 1;
        }

        for (pi, &(conv_id, bn_id)) in pairs.iter().enumerate() {
            if cut[pi].is_empty() {
                continue;
            }
            // Zero the conv output-channel filters.
            let conv = graph.conv_mut(conv_id).expect("conv id");
            let param = conv.weight_mut();
            let shape = param.value.shape().to_vec();
            let per_filter: usize = shape[1..].iter().product();
            let mut mask = Tensor::ones(&shape);
            for &c in &cut[pi] {
                for v in &mut mask.as_mut_slice()[c * per_filter..(c + 1) * per_filter] {
                    *v = 0.0;
                }
            }
            param.set_mask(mask)?;
            // Zero the BN scale for those channels.
            let bn = graph.batchnorm_mut(bn_id).expect("bn id");
            let ch = bn.channels();
            let mut gmask = Tensor::ones(&[ch]);
            for &c in &cut[pi] {
                gmask.as_mut_slice()[c] = 0.0;
            }
            bn.gamma_mut().set_mask(gmask)?;
        }

        let mut report = PruneReport::new(&self.name());
        for id in graph.conv_ids() {
            let name = graph.node(id).name.clone();
            let conv = graph.conv(id).expect("conv id");
            let w = &conv.weight().value;
            report.layers.push(LayerSparsity {
                name,
                kernel: conv.kernel_size(),
                total: w.numel(),
                zeros: w.count_zeros(),
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achieves_roughly_target_channel_sparsity() {
        let mut m = rtoss_models::yolov5s_twin(8, 3, 41).unwrap();
        let r = NetworkSlimming::new(0.4)
            .unwrap()
            .prune_graph(&mut m.graph)
            .unwrap();
        // Detect-head convs have no BN, so overall sparsity is slightly
        // below the channel ratio.
        let s = r.overall_sparsity();
        assert!(s > 0.25 && s < 0.45, "sparsity {s}");
    }

    #[test]
    fn cuts_lowest_gamma_channels() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let conv = rtoss_nn::layers::Conv2d::new(1, 4, 3, 1, 1, 1);
        let c1 = g.add_layer("c1", Box::new(conv), x).unwrap();
        let mut bn = rtoss_nn::layers::BatchNorm2d::new(4);
        bn.gamma_mut().value = Tensor::from_vec(vec![0.01, 1.0, 0.02, 2.0], &[4]).unwrap();
        let b1 = g.add_layer("b1", Box::new(bn), c1).unwrap();
        g.set_outputs(vec![b1]).unwrap();

        NetworkSlimming::new(0.5)
            .unwrap()
            .prune_graph(&mut g)
            .unwrap();
        let w = &g.conv(c1).unwrap().weight().value;
        // Channels 0 and 2 (small gammas) zeroed; 1 and 3 kept.
        for f in [0usize, 2] {
            assert!(w.as_slice()[f * 9..(f + 1) * 9].iter().all(|&v| v == 0.0));
        }
        for f in [1usize, 3] {
            assert!(w.as_slice()[f * 9..(f + 1) * 9].iter().any(|&v| v != 0.0));
        }
        let gamma = &g.batchnorm(b1).unwrap().gamma().value;
        assert_eq!(gamma.as_slice()[0], 0.0);
        assert_eq!(gamma.as_slice()[2], 0.0);
        assert_ne!(gamma.as_slice()[1], 0.0);
    }

    #[test]
    fn never_cuts_all_channels_of_a_layer() {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 42).unwrap();
        NetworkSlimming::new(0.9)
            .unwrap()
            .prune_graph(&mut m.graph)
            .unwrap();
        // Every conv followed by a BN must retain at least one non-zero
        // output filter.
        for id in m.graph.conv_ids() {
            let conv = m.graph.conv(id).unwrap();
            if conv.weight().mask().is_some() {
                assert!(
                    conv.weight().value.l2_norm() > 0.0,
                    "layer {} fully severed",
                    m.graph.node(id).name
                );
            }
        }
    }

    #[test]
    fn convs_without_bn_are_untouched() {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 43).unwrap();
        let r = NetworkSlimming::default()
            .prune_graph(&mut m.graph)
            .unwrap();
        // Detect heads are bare convs (no BN) → zero sparsity there.
        for l in r.layers.iter().filter(|l| l.name.starts_with("detect")) {
            assert_eq!(l.zeros, 0, "{} was pruned without a BN", l.name);
        }
    }

    #[test]
    fn rejects_bad_ratio() {
        assert!(NetworkSlimming::new(1.0).is_err());
    }
}
