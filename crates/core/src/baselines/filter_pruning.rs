//! Pruning Filters baseline (Li et al., ICLR'17): "filter granularity
//! weighted pruning, where the total sum of filter weights is calculated
//! and filters below a corresponding threshold are pruned" (§V.C).

use crate::report::{LayerSparsity, PruneReport};
use crate::{PruneError, Pruner};
use rtoss_nn::Graph;
use rtoss_tensor::Tensor;

/// L1-norm filter pruner: per layer, zeroes the filters (output
/// channels) with the smallest absolute-weight sums.
#[derive(Debug, Clone)]
pub struct PruningFilters {
    filter_ratio: f64,
}

impl PruningFilters {
    /// Creates a filter pruner cutting the given fraction per layer.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if the ratio is outside `[0, 1)`.
    pub fn new(filter_ratio: f64) -> Result<Self, PruneError> {
        if !(0.0..1.0).contains(&filter_ratio) {
            return Err(PruneError::Config {
                msg: format!("filter ratio {filter_ratio} outside [0, 1)"),
            });
        }
        Ok(PruningFilters { filter_ratio })
    }

    /// Fraction of filters pruned per layer.
    pub fn filter_ratio(&self) -> f64 {
        self.filter_ratio
    }
}

impl Default for PruningFilters {
    /// The source paper's mid-range operating point.
    fn default() -> Self {
        PruningFilters { filter_ratio: 0.40 }
    }
}

/// Zeroes the `ratio` fraction of filters with the smallest norm
/// (`l1 = true` → L1 norms, else L2), keeping at least one filter.
/// Returns the mask.
pub(crate) fn filter_mask(w: &Tensor, ratio: f64, l1: bool) -> Tensor {
    let o = w.shape()[0];
    let per: usize = w.shape()[1..].iter().product();
    let mut norms: Vec<(usize, f32)> = (0..o)
        .map(|f| {
            let s = &w.as_slice()[f * per..(f + 1) * per];
            let n: f32 = if l1 {
                s.iter().map(|v| v.abs()).sum()
            } else {
                s.iter().map(|v| v * v).sum::<f32>().sqrt()
            };
            (f, n)
        })
        .collect();
    norms.sort_by(|a, b| a.1.total_cmp(&b.1));
    let n_cut = (((o as f64) * ratio).floor() as usize).min(o.saturating_sub(1));
    let mut mask = Tensor::ones(w.shape());
    for &(f, _) in norms.iter().take(n_cut) {
        for v in &mut mask.as_mut_slice()[f * per..(f + 1) * per] {
            *v = 0.0;
        }
    }
    mask
}

impl Pruner for PruningFilters {
    fn name(&self) -> String {
        "PF".to_string()
    }

    fn prune_graph(&self, graph: &mut Graph) -> Result<PruneReport, PruneError> {
        let mut report = PruneReport::new(&self.name());
        for id in graph.conv_ids() {
            let name = graph.node(id).name.clone();
            let conv = graph.conv_mut(id).expect("conv id");
            let kernel = conv.kernel_size();
            let param = conv.weight_mut();
            let mask = filter_mask(&param.value, self.filter_ratio, true);
            param.set_mask(mask)?;
            report.layers.push(LayerSparsity {
                name,
                kernel,
                total: param.value.numel(),
                zeros: param.value.count_zeros(),
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    #[test]
    fn cuts_smallest_l1_filters() {
        // Filter 1 has tiny weights; it must be the one cut.
        let mut w = init::uniform(&mut init::rng(1), &[3, 2, 3, 3], 0.5, 1.0);
        for v in &mut w.as_mut_slice()[18..36] {
            *v = 0.001;
        }
        let mask = filter_mask(&w, 0.34, true);
        assert!(mask.as_slice()[18..36].iter().all(|&v| v == 0.0));
        assert!(mask.as_slice()[..18].iter().all(|&v| v == 1.0));
        assert!(mask.as_slice()[36..].iter().all(|&v| v == 1.0));
    }

    #[test]
    fn sparsity_matches_ratio() {
        let mut m = rtoss_models::yolov5s_twin(8, 3, 51).unwrap();
        let r = PruningFilters::new(0.5)
            .unwrap()
            .prune_graph(&mut m.graph)
            .unwrap();
        // Each layer loses floor(o/2) filters → close to 0.5 overall;
        // rounding on small layers pulls it slightly below.
        let s = r.overall_sparsity();
        assert!((s - 0.5).abs() < 0.12, "sparsity {s}");
    }

    #[test]
    fn keeps_at_least_one_filter() {
        let w = init::uniform(&mut init::rng(2), &[2, 1, 3, 3], -1.0, 1.0);
        let mask = filter_mask(&w, 0.99, true);
        // 2 filters, 99% ratio → floor(1.98)=1 cut, 1 kept.
        assert_eq!(mask.count_zeros(), 9);
    }

    #[test]
    fn zero_ratio_is_identity() {
        let w = init::uniform(&mut init::rng(3), &[4, 2, 3, 3], -1.0, 1.0);
        assert_eq!(filter_mask(&w, 0.0, true).count_zeros(), 0);
    }

    #[test]
    fn rejects_bad_ratio() {
        assert!(PruningFilters::new(1.2).is_err());
    }
}
