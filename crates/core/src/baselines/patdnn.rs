//! PATDNN baseline (Niu et al., ASPLOS'20): 4-entry kernel patterns on
//! 3×3 kernels **plus connectivity pruning** (whole-kernel removal).
//!
//! This is the prior-work design point R-TOSS improves on: 1×1 kernels
//! are left dense (PATDNN "focuses on kernels with sizes 3×3 and above",
//! §II.B), and the extra sparsity comes from cutting entire kernels —
//! the step the paper blames for accuracy loss.

use crate::pattern::canonical_set;
use crate::prune3x3::prune_3x3_weights;
use crate::report::{LayerSparsity, PruneReport};
use crate::{PruneError, Pruner};
use rtoss_nn::Graph;
use rtoss_tensor::Tensor;

/// The PATDNN pruner: 4EP pattern pruning + connectivity pruning.
#[derive(Debug, Clone)]
pub struct PatDnn {
    connectivity_ratio: f64,
}

impl PatDnn {
    /// Creates a PATDNN pruner that connectivity-prunes the given
    /// fraction of each 3×3 layer's kernels (lowest L2 first).
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if the ratio is outside `[0, 1)`.
    pub fn new(connectivity_ratio: f64) -> Result<Self, PruneError> {
        if !(0.0..1.0).contains(&connectivity_ratio) {
            return Err(PruneError::Config {
                msg: format!("connectivity ratio {connectivity_ratio} outside [0, 1)"),
            });
        }
        Ok(PatDnn { connectivity_ratio })
    }

    /// Fraction of kernels removed by connectivity pruning.
    pub fn connectivity_ratio(&self) -> f64 {
        self.connectivity_ratio
    }
}

impl Default for PatDnn {
    /// PATDNN's typical operating point: 4-entry patterns with ~30% of
    /// kernels removed by connectivity pruning.
    fn default() -> Self {
        PatDnn {
            connectivity_ratio: 0.30,
        }
    }
}

impl Pruner for PatDnn {
    fn name(&self) -> String {
        "PD".to_string()
    }

    fn prune_graph(&self, graph: &mut Graph) -> Result<PruneReport, PruneError> {
        let patterns = canonical_set(4)?;
        let mut report = PruneReport::new(&self.name());
        for id in graph.conv_ids() {
            let name = graph.node(id).name.clone();
            let conv = graph.conv_mut(id).expect("conv id");
            let kernel = conv.kernel_size();
            let param = conv.weight_mut();
            if kernel == 3 {
                let mut w = param.value.clone();
                let out = prune_3x3_weights(&mut w, &patterns)?;
                let mut mask = out.mask;
                // Connectivity pruning: drop the lowest-L2 kernels
                // entirely ("prunes some of the kernels entirely", §II.B).
                let (o, i) = (w.shape()[0], w.shape()[1]);
                let n_kernels = o * i;
                let n_cut = ((n_kernels as f64) * self.connectivity_ratio).floor() as usize;
                if n_cut > 0 {
                    let mut l2: Vec<(usize, f32)> = (0..n_kernels)
                        .map(|ki| {
                            let s: f32 = w.as_slice()[ki * 9..(ki + 1) * 9]
                                .iter()
                                .map(|&v| v * v)
                                .sum();
                            (ki, s)
                        })
                        .collect();
                    l2.sort_by(|a, b| a.1.total_cmp(&b.1));
                    for &(ki, _) in l2.iter().take(n_cut) {
                        for c in 0..9 {
                            w.as_mut_slice()[ki * 9 + c] = 0.0;
                            mask.as_mut_slice()[ki * 9 + c] = 0.0;
                        }
                    }
                }
                param.value = w;
                param.set_mask(mask)?;
            } else if kernel == 1 && self.connectivity_ratio > 0.0 {
                // PATDNN applies connectivity pruning to kernels but has
                // no pattern story for 1×1; we cut the same fraction of
                // 1×1 kernels by magnitude (each 1×1 kernel is a single
                // weight), mirroring its kernel-level criterion.
                let w = &param.value;
                let n = w.numel();
                let n_cut = ((n as f64) * self.connectivity_ratio).floor() as usize;
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| w.as_slice()[a].abs().total_cmp(&w.as_slice()[b].abs()));
                let mut mask = Tensor::ones(w.shape());
                for &i in idx.iter().take(n_cut) {
                    mask.as_mut_slice()[i] = 0.0;
                }
                param.set_mask(mask)?;
            }
            report.layers.push(LayerSparsity {
                name,
                kernel,
                total: param.value.numel(),
                zeros: param.value.count_zeros(),
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    #[test]
    fn three_by_three_sparsity_combines_pattern_and_connectivity() {
        let mut m = rtoss_models::yolov5s_twin(8, 3, 31).unwrap();
        let r = PatDnn::new(0.3).unwrap().prune_graph(&mut m.graph).unwrap();
        // Pattern alone: 5/9 ≈ 0.556. With 30% kernels cut:
        // sparsity = 0.3 + 0.7 * 5/9 ≈ 0.689.
        let s3 = r.sparsity_for_kernel(3);
        assert!(
            (s3 - (0.3 + 0.7 * 5.0 / 9.0)).abs() < 0.02,
            "3x3 sparsity {s3}"
        );
    }

    #[test]
    fn one_by_one_gets_only_connectivity_sparsity() {
        let mut m = rtoss_models::yolov5s_twin(8, 3, 32).unwrap();
        let r = PatDnn::new(0.3).unwrap().prune_graph(&mut m.graph).unwrap();
        let s1 = r.sparsity_for_kernel(1);
        assert!((s1 - 0.3).abs() < 0.02, "1x1 sparsity {s1}");
        // R-TOSS's point: PD leaves 1×1 far denser than its 3×3.
        assert!(r.sparsity_for_kernel(3) > s1 + 0.2);
    }

    #[test]
    fn zero_connectivity_is_pure_pattern_pruning() {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 33).unwrap();
        let r = PatDnn::new(0.0).unwrap().prune_graph(&mut m.graph).unwrap();
        let s3 = r.sparsity_for_kernel(3);
        assert!((s3 - 5.0 / 9.0).abs() < 1e-6);
        assert_eq!(r.sparsity_for_kernel(1), 0.0);
    }

    #[test]
    fn connectivity_cuts_lowest_l2_kernels() {
        // Hand-built layer: kernel 0 tiny, kernel 1 large.
        let mut g = rtoss_nn::Graph::new();
        let x = g.add_input("x");
        let mut w = init::uniform(&mut init::rng(34), &[2, 1, 3, 3], 0.9, 1.0);
        for c in 0..9 {
            w.as_mut_slice()[c] = 0.01;
        }
        let conv = rtoss_nn::layers::Conv2d::from_weight(w, 1, 1);
        let c1 = g.add_layer("c1", Box::new(conv), x).unwrap();
        g.set_outputs(vec![c1]).unwrap();
        PatDnn::new(0.5).unwrap().prune_graph(&mut g).unwrap();
        let w = &g.conv(c1).unwrap().weight().value;
        assert!(
            w.as_slice()[..9].iter().all(|&v| v == 0.0),
            "small kernel cut"
        );
        assert!(
            w.as_slice()[9..].iter().any(|&v| v != 0.0),
            "large kernel kept"
        );
    }

    #[test]
    fn rejects_bad_ratio() {
        assert!(PatDnn::new(1.0).is_err());
        assert!(PatDnn::new(-0.2).is_err());
    }
}
