//! State-of-the-art pruning baselines the paper compares against
//! (§V.C): PATDNN (PD), Neural Magic SparseML-style magnitude pruning
//! (NMS), Network Slimming (NS), Pruning Filters (PF), and Neural
//! Pruning (NP).
//!
//! Each baseline re-implements the *criterion* of its source paper
//! (DESIGN.md §2); all of them implement the [`crate::Pruner`] trait so
//! the figure harnesses can sweep them uniformly.

mod filter_pruning;
mod magnitude;
mod neural_pruning;
mod patdnn;
mod slimming;

pub use filter_pruning::PruningFilters;
pub use magnitude::MagnitudePruner;
pub use neural_pruning::NeuralPruning;
pub use patdnn::PatDnn;
pub use slimming::NetworkSlimming;

use crate::Pruner;

/// The full baseline roster in the paper's Fig. 4–7 order
/// (PD, NMS, NS, PF, NP), with each method's default configuration.
pub fn all_baselines() -> Vec<Box<dyn Pruner>> {
    vec![
        Box::new(PatDnn::default()),
        Box::new(MagnitudePruner::default()),
        Box::new(NetworkSlimming::default()),
        Box::new(PruningFilters::default()),
        Box::new(NeuralPruning::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_order_matches_paper() {
        let names: Vec<String> = all_baselines().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["PD", "NMS", "NS", "PF", "NP"]);
    }

    #[test]
    fn every_baseline_prunes_the_twin() {
        for b in all_baselines() {
            let mut m = rtoss_models::yolov5s_twin(8, 3, 21).unwrap();
            let r = b.prune_graph(&mut m.graph).unwrap();
            assert!(
                r.overall_sparsity() > 0.1,
                "{} produced sparsity {}",
                b.name(),
                r.overall_sparsity()
            );
            assert!(
                r.overall_sparsity() < 0.95,
                "{} pruned everything",
                b.name()
            );
        }
    }
}
