//! NMS baseline: unstructured weight-magnitude pruning in the style of
//! Neural Magic SparseML (Kurtz et al., ICML'20) — "the magnitude of the
//! weights in a layer, with the weights below a threshold being pruned"
//! (§V.C).

use crate::report::{LayerSparsity, PruneReport};
use crate::{PruneError, Pruner};
use rtoss_nn::Graph;
use rtoss_tensor::Tensor;

/// Unstructured magnitude pruner: zeroes the smallest-|w| fraction of
/// each conv layer's weights.
#[derive(Debug, Clone)]
pub struct MagnitudePruner {
    sparsity: f64,
}

impl MagnitudePruner {
    /// Creates a magnitude pruner targeting the given per-layer sparsity.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if `sparsity` is outside `[0, 1)`.
    pub fn new(sparsity: f64) -> Result<Self, PruneError> {
        if !(0.0..1.0).contains(&sparsity) {
            return Err(PruneError::Config {
                msg: format!("magnitude sparsity {sparsity} outside [0, 1)"),
            });
        }
        Ok(MagnitudePruner { sparsity })
    }

    /// Target per-layer sparsity.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }
}

impl Default for MagnitudePruner {
    /// SparseML's common ~60% uniform sparsity operating point.
    fn default() -> Self {
        MagnitudePruner { sparsity: 0.60 }
    }
}

/// Zeroes the smallest-magnitude `sparsity` fraction of `w`, returning
/// the surviving-weight mask.
pub(crate) fn magnitude_mask(w: &Tensor, sparsity: f64) -> Tensor {
    let n = w.numel();
    let cutoff_count = ((n as f64) * sparsity).floor() as usize;
    let mut mags: Vec<f32> = w.as_slice().iter().map(|v| v.abs()).collect();
    if cutoff_count == 0 {
        return Tensor::ones(w.shape());
    }
    mags.sort_by(f32::total_cmp);
    let threshold = mags[cutoff_count - 1];
    // Prune strictly-below first, then fill up to the exact count among
    // ties so the achieved sparsity matches the target.
    let mut mask = vec![1.0f32; n];
    let mut pruned = 0usize;
    for (m, v) in mask.iter_mut().zip(w.as_slice()) {
        if v.abs() < threshold {
            *m = 0.0;
            pruned += 1;
        }
    }
    if pruned < cutoff_count {
        for (m, v) in mask.iter_mut().zip(w.as_slice()) {
            if pruned == cutoff_count {
                break;
            }
            if *m == 1.0 && v.abs() == threshold {
                *m = 0.0;
                pruned += 1;
            }
        }
    }
    Tensor::from_vec(mask, w.shape()).expect("mask matches weight shape")
}

impl Pruner for MagnitudePruner {
    fn name(&self) -> String {
        "NMS".to_string()
    }

    fn prune_graph(&self, graph: &mut Graph) -> Result<PruneReport, PruneError> {
        let mut report = PruneReport::new(&self.name());
        for id in graph.conv_ids() {
            let name = graph.node(id).name.clone();
            let conv = graph.conv_mut(id).expect("conv id");
            let kernel = conv.kernel_size();
            let param = conv.weight_mut();
            let mask = magnitude_mask(&param.value, self.sparsity);
            param.set_mask(mask)?;
            report.layers.push(LayerSparsity {
                name,
                kernel,
                total: param.value.numel(),
                zeros: param.value.count_zeros(),
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::init;

    #[test]
    fn hits_target_sparsity_exactly() {
        let w = init::uniform(&mut init::rng(1), &[10, 10], -1.0, 1.0);
        for &s in &[0.25f64, 0.5, 0.9] {
            let mask = magnitude_mask(&w, s);
            let zeros = mask.count_zeros();
            assert_eq!(zeros, (100.0 * s) as usize, "target {s}");
        }
    }

    #[test]
    fn prunes_smallest_weights() {
        let w = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0], &[4]).unwrap();
        let mask = magnitude_mask(&w, 0.5);
        assert_eq!(mask.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_sparsity_keeps_everything() {
        let w = init::uniform(&mut init::rng(2), &[5], -1.0, 1.0);
        assert_eq!(magnitude_mask(&w, 0.0).count_zeros(), 0);
    }

    #[test]
    fn handles_ties() {
        let w = Tensor::full(&[8], 0.5);
        let mask = magnitude_mask(&w, 0.5);
        assert_eq!(mask.count_zeros(), 4);
    }

    #[test]
    fn graph_level_sparsity_matches_target() {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 3).unwrap();
        let p = MagnitudePruner::new(0.7).unwrap();
        let r = p.prune_graph(&mut m.graph).unwrap();
        assert!(
            (r.overall_sparsity() - 0.7).abs() < 0.01,
            "{}",
            r.overall_sparsity()
        );
    }

    #[test]
    fn rejects_bad_config() {
        assert!(MagnitudePruner::new(1.0).is_err());
        assert!(MagnitudePruner::new(-0.1).is_err());
    }
}
