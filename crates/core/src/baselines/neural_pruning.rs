//! Neural Pruning baseline (Wang et al., "Neural pruning via growing
//! regularization"): "a combination of filter pruning along with
//! unstructured weight pruning, where L1 norm is used to perform weight
//! pruning and L2 regularization is used to perform filter pruning"
//! (§V.C).

use crate::baselines::filter_pruning::filter_mask;
use crate::baselines::magnitude::magnitude_mask;
use crate::report::{LayerSparsity, PruneReport};
use crate::{PruneError, Pruner};
use rtoss_nn::Graph;

/// Combined filter (L2) + unstructured weight (L1) pruner.
#[derive(Debug, Clone)]
pub struct NeuralPruning {
    filter_ratio: f64,
    weight_ratio: f64,
}

impl NeuralPruning {
    /// Creates the combined pruner: first cut `filter_ratio` of filters
    /// by L2 norm, then `weight_ratio` of the remaining weights by
    /// magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::Config`] if either ratio is outside `[0, 1)`.
    pub fn new(filter_ratio: f64, weight_ratio: f64) -> Result<Self, PruneError> {
        for (name, r) in [("filter", filter_ratio), ("weight", weight_ratio)] {
            if !(0.0..1.0).contains(&r) {
                return Err(PruneError::Config {
                    msg: format!("{name} ratio {r} outside [0, 1)"),
                });
            }
        }
        Ok(NeuralPruning {
            filter_ratio,
            weight_ratio,
        })
    }
}

impl Default for NeuralPruning {
    /// Mid-range combination: 25% filters, 30% of surviving weights.
    fn default() -> Self {
        NeuralPruning {
            filter_ratio: 0.25,
            weight_ratio: 0.30,
        }
    }
}

impl Pruner for NeuralPruning {
    fn name(&self) -> String {
        "NP".to_string()
    }

    fn prune_graph(&self, graph: &mut Graph) -> Result<PruneReport, PruneError> {
        let mut report = PruneReport::new(&self.name());
        for id in graph.conv_ids() {
            let name = graph.node(id).name.clone();
            let conv = graph.conv_mut(id).expect("conv id");
            let kernel = conv.kernel_size();
            let param = conv.weight_mut();
            // Stage 1: L2 filter pruning.
            let fmask = filter_mask(&param.value, self.filter_ratio, false);
            // Stage 2: L1 magnitude pruning over the surviving weights.
            // magnitude_mask ranks all weights including the ones the
            // filter stage already zeroed, so the combined target is
            // f + (1 - f)·w: the filter-stage zeros fill the bottom of
            // the ranking and the remainder of the budget lands on the
            // smallest true survivors.
            let survived = param.value.mul(&fmask)?;
            let f = fmask.sparsity();
            let wmask = magnitude_mask(&survived, f + (1.0 - f) * self.weight_ratio);
            let combined = fmask.mul(&wmask)?;
            param.set_mask(combined)?;
            report.layers.push(LayerSparsity {
                name,
                kernel,
                total: param.value.numel(),
                zeros: param.value.count_zeros(),
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_sparsity_exceeds_each_stage() {
        let run = |f: f64, w: f64, seed: u64| {
            let mut m = rtoss_models::yolov5s_twin(8, 3, seed).unwrap();
            NeuralPruning::new(f, w)
                .unwrap()
                .prune_graph(&mut m.graph)
                .unwrap()
                .overall_sparsity()
        };
        let combined = run(0.25, 0.30, 61);
        let filters_only = run(0.25, 0.0, 61);
        let weights_only = run(0.0, 0.30, 61);
        assert!(combined > filters_only);
        assert!(combined > weights_only);
        // Expected ≈ 1 - (1-0.25)(1-0.30) ≈ 0.475 (± filter rounding).
        assert!((combined - 0.475).abs() < 0.1, "combined {combined}");
    }

    #[test]
    fn default_lands_between_structured_and_semi_structured() {
        // Fig. 4 qualitative ordering: NP above NS/PF alone but far
        // below R-TOSS-2EP.
        let mut m = rtoss_models::yolov5s_twin(8, 3, 62).unwrap();
        let np = NeuralPruning::default().prune_graph(&mut m.graph).unwrap();
        let s = np.overall_sparsity();
        assert!(s > 0.35 && s < 0.6, "NP sparsity {s}");
    }

    #[test]
    fn rejects_bad_ratios() {
        assert!(NeuralPruning::new(1.0, 0.1).is_err());
        assert!(NeuralPruning::new(0.1, -0.1).is_err());
    }
}
