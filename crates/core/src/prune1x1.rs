//! Algorithm 3: 1×1 kernel pooling and transformation.
//!
//! Modern detectors are 56–68% 1×1 kernels (§III), which prior pattern
//! pruners ignore. R-TOSS flattens a layer's 1×1 kernel weights, pools
//! every 9 consecutive weights into a temporary 3×3 matrix, pattern-prunes
//! those matrices with Algorithm 2, and scatters the surviving weights
//! back to their original 1×1 positions. A tail chunk of fewer than 9
//! weights is "considered as zero weights and pruned" (Algorithm 3,
//! line 13).

use crate::pattern::PatternSet;
use crate::prune3x3::prune_3x3_weights;
use crate::PruneError;
use rtoss_tensor::Tensor;

/// Result of pruning one 1×1 weight tensor.
#[derive(Debug, Clone)]
pub struct Prune1x1Output {
    /// Binary mask with the same `(O, I, 1, 1)` shape as the weight.
    pub mask: Tensor,
    /// Pattern index chosen for each pooled 3×3 temporary matrix.
    pub chosen: Vec<usize>,
    /// Number of tail weights pruned because they did not fill a 3×3
    /// temporary matrix.
    pub tail_pruned: usize,
}

impl Prune1x1Output {
    /// The distinct pattern indices actually used, sorted ascending —
    /// the subset a parent layer shares with its group children.
    pub fn used_patterns(&self) -> Vec<usize> {
        let mut v = self.chosen.clone();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Prunes a `(O, I, 1, 1)` weight tensor in place via the 1×1 → 3×3
/// transformation (Algorithm 3).
///
/// # Errors
///
/// Returns [`PruneError::Shape`] if the weight is not rank 4 with 1×1
/// spatial extent.
pub fn prune_1x1_weights(
    weights: &mut Tensor,
    patterns: &PatternSet,
) -> Result<Prune1x1Output, PruneError> {
    let shape = weights.shape().to_vec();
    if shape.len() != 4 || shape[2] != 1 || shape[3] != 1 {
        return Err(PruneError::Shape {
            op: "prune_1x1",
            msg: format!("expected (O, I, 1, 1) weights, got {shape:?}"),
        });
    }
    // Lines 1-2: flatten the kernel weights.
    let flat = weights.as_mut_slice();
    let n = flat.len();
    let full_chunks = n / 9;
    let tail = n % 9;

    let mut mask = vec![0.0f32; n];
    let mut chosen = Vec::with_capacity(full_chunks);

    if full_chunks > 0 {
        // Lines 5-11: group every 9 weights into temporary 3×3 matrices.
        let mut temp = Tensor::from_vec(flat[..full_chunks * 9].to_vec(), &[full_chunks, 1, 3, 3])?;
        // Line 14: apply Algorithm 2 on the temporary matrices.
        let out = prune_3x3_weights(&mut temp, patterns)?;
        // Lines 15-16: reshape back to 1×1 and write into the original.
        flat[..full_chunks * 9].copy_from_slice(temp.as_slice());
        mask[..full_chunks * 9].copy_from_slice(out.mask.as_slice());
        chosen = out.chosen;
    }
    // Line 13: leftover weights are considered zero and pruned.
    for v in &mut flat[full_chunks * 9..] {
        *v = 0.0;
    }

    Ok(Prune1x1Output {
        mask: Tensor::from_vec(mask, &shape)?,
        chosen,
        tail_pruned: tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::canonical_set;
    use rtoss_tensor::init;

    #[test]
    fn sparsity_matches_entry_count_when_divisible() {
        // 6*6 = 36 weights = 4 full chunks, no tail.
        let set = canonical_set(2).unwrap();
        let mut w = init::uniform(&mut init::rng(1), &[6, 6, 1, 1], -1.0, 1.0);
        let out = prune_1x1_weights(&mut w, &set).unwrap();
        assert_eq!(out.tail_pruned, 0);
        assert_eq!(out.chosen.len(), 4);
        assert!((w.sparsity() - 7.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn tail_is_fully_pruned() {
        // 4*3 = 12 weights = 1 chunk + tail of 3.
        let set = canonical_set(3).unwrap();
        let mut w = init::uniform(&mut init::rng(2), &[4, 3, 1, 1], -1.0, 1.0);
        let out = prune_1x1_weights(&mut w, &set).unwrap();
        assert_eq!(out.tail_pruned, 3);
        // Tail weights are zero.
        assert!(w.as_slice()[9..].iter().all(|&v| v == 0.0));
        // First chunk keeps exactly 3.
        let nz = w.as_slice()[..9].iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nz, 3);
    }

    #[test]
    fn survivors_keep_their_values_and_positions() {
        let set = canonical_set(3).unwrap();
        let mut w = init::uniform(&mut init::rng(3), &[3, 6, 1, 1], -1.0, 1.0);
        let before = w.clone();
        let out = prune_1x1_weights(&mut w, &set).unwrap();
        for (i, (&a, &b)) in before.as_slice().iter().zip(w.as_slice()).enumerate() {
            if b != 0.0 {
                assert_eq!(a, b, "surviving weight {i} moved or changed");
            }
        }
        // Mask agrees with survivors.
        for (&v, &m) in w.as_slice().iter().zip(out.mask.as_slice()) {
            assert_eq!(m != 0.0, v != 0.0 || (m != 0.0 && v == 0.0));
            if m == 0.0 {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn smaller_than_one_chunk_is_entirely_pruned() {
        let set = canonical_set(2).unwrap();
        let mut w = init::uniform(&mut init::rng(4), &[2, 2, 1, 1], -1.0, 1.0);
        let out = prune_1x1_weights(&mut w, &set).unwrap();
        assert_eq!(out.tail_pruned, 4);
        assert!(out.chosen.is_empty());
        assert!(w.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn idempotent() {
        let set = canonical_set(2).unwrap();
        let mut w = init::uniform(&mut init::rng(5), &[8, 9, 1, 1], -1.0, 1.0);
        prune_1x1_weights(&mut w, &set).unwrap();
        let snap = w.clone();
        prune_1x1_weights(&mut w, &set).unwrap();
        assert_eq!(w, snap);
    }

    #[test]
    fn rejects_non_1x1() {
        let set = canonical_set(2).unwrap();
        let mut w = Tensor::zeros(&[2, 2, 3, 3]);
        assert!(prune_1x1_weights(&mut w, &set).is_err());
    }

    #[test]
    fn large_layer_sparsity_close_to_limit() {
        // Large 1×1 layer: sparsity → (9-k)/9 as tail fraction vanishes.
        let set = canonical_set(2).unwrap();
        let mut w = init::uniform(&mut init::rng(6), &[64, 64, 1, 1], -1.0, 1.0);
        prune_1x1_weights(&mut w, &set).unwrap();
        let expected = 7.0 / 9.0;
        assert!((w.sparsity() - expected).abs() < 0.01, "{}", w.sparsity());
    }
}
