//! Algorithm 2: 3×3 kernel pattern pruning.
//!
//! For every 2-D kernel of a conv weight `(O, I, 3, 3)`, compute the
//! post-mask L2 norm under each candidate pattern, keep the best
//! pattern's cells, and zero the rest. Returns the binary mask so the
//! caller can install it as the parameter's pruning mask (keeping the
//! weights pruned through fine-tuning).

use crate::pattern::PatternSet;
use crate::PruneError;
use rtoss_tensor::Tensor;

/// Result of pruning one 3×3 weight tensor.
#[derive(Debug, Clone)]
pub struct Prune3x3Output {
    /// Binary (0/1) mask with the same shape as the weight.
    pub mask: Tensor,
    /// Index into the pattern set chosen for each kernel, row-major over
    /// `(O, I)`.
    pub chosen: Vec<usize>,
}

impl Prune3x3Output {
    /// The distinct pattern indices actually used, sorted ascending —
    /// the subset a parent layer shares with its group children.
    pub fn used_patterns(&self) -> Vec<usize> {
        let mut v = self.chosen.clone();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Prunes a `(O, I, 3, 3)` weight tensor in place with the given
/// pattern set (Algorithm 2), returning the mask and per-kernel choices.
///
/// # Errors
///
/// Returns [`PruneError::Shape`] if the weight is not rank 4 with 3×3
/// spatial extent.
pub fn prune_3x3_weights(
    weights: &mut Tensor,
    patterns: &PatternSet,
) -> Result<Prune3x3Output, PruneError> {
    let shape = weights.shape().to_vec();
    if shape.len() != 4 || shape[2] != 3 || shape[3] != 3 {
        return Err(PruneError::Shape {
            op: "prune_3x3",
            msg: format!("expected (O, I, 3, 3) weights, got {shape:?}"),
        });
    }
    let (o, i) = (shape[0], shape[1]);
    let mut mask = Tensor::zeros(&shape);
    let mut chosen = Vec::with_capacity(o * i);
    let wd = weights.as_mut_slice();
    let md = mask.as_mut_slice();
    for ki in 0..o * i {
        let base = ki * 9;
        let kernel: &mut [f32] = &mut wd[base..base + 9];
        // Algorithm 2 lines 6-11: score every pattern, keep the best fit.
        let (best, _) = patterns.best_for(kernel);
        let p = patterns.patterns()[best];
        p.apply(kernel);
        for (ci, m) in md[base..base + 9].iter_mut().enumerate() {
            *m = if p.bits() & (1 << ci) != 0 { 1.0 } else { 0.0 };
        }
        chosen.push(best);
    }
    Ok(Prune3x3Output { mask, chosen })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{canonical_set, Pattern, PatternSet};
    use rtoss_tensor::init;

    #[test]
    fn keeps_exactly_k_weights_per_kernel() {
        for k in [2usize, 3, 4, 5] {
            let set = canonical_set(k).unwrap();
            let mut w = init::uniform(&mut init::rng(1), &[4, 3, 3, 3], -1.0, 1.0);
            let out = prune_3x3_weights(&mut w, &set).unwrap();
            for ki in 0..12 {
                let nz = w.as_slice()[ki * 9..(ki + 1) * 9]
                    .iter()
                    .filter(|&&v| v != 0.0)
                    .count();
                assert!(nz <= k, "kernel {ki} kept {nz} > {k}");
                let mask_nz = out.mask.as_slice()[ki * 9..(ki + 1) * 9]
                    .iter()
                    .filter(|&&v| v != 0.0)
                    .count();
                assert_eq!(mask_nz, k);
            }
        }
    }

    #[test]
    fn chooses_max_l2_pattern() {
        // Kernel with all energy in the top row: the top-row pattern wins.
        let top_row = Pattern::from_cells(&[(0, 0), (0, 1), (0, 2)]).unwrap();
        let bottom_row = Pattern::from_cells(&[(2, 0), (2, 1), (2, 2)]).unwrap();
        let set = PatternSet::new(vec![bottom_row, top_row]).unwrap();
        let mut w = Tensor::from_vec(
            vec![5.0, 5.0, 5.0, 0.1, 0.1, 0.1, 0.2, 0.2, 0.2],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let out = prune_3x3_weights(&mut w, &set).unwrap();
        assert_eq!(out.chosen, vec![1]);
        assert_eq!(w.as_slice(), &[5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pruning_is_idempotent() {
        let set = canonical_set(3).unwrap();
        let mut w = init::uniform(&mut init::rng(2), &[2, 2, 3, 3], -1.0, 1.0);
        let first = prune_3x3_weights(&mut w, &set).unwrap();
        let snapshot = w.clone();
        let second = prune_3x3_weights(&mut w, &set).unwrap();
        assert_eq!(w, snapshot, "second pass must not change weights");
        assert_eq!(first.chosen, second.chosen);
    }

    #[test]
    fn mask_matches_surviving_weights() {
        let set = canonical_set(2).unwrap();
        let mut w = init::uniform(&mut init::rng(3), &[3, 2, 3, 3], -1.0, 1.0);
        let out = prune_3x3_weights(&mut w, &set).unwrap();
        for (v, m) in w.as_slice().iter().zip(out.mask.as_slice()) {
            if *m == 0.0 {
                assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn induced_sparsity_matches_entry_count() {
        let set = canonical_set(2).unwrap();
        let mut w = init::uniform(&mut init::rng(4), &[8, 8, 3, 3], -1.0, 1.0);
        prune_3x3_weights(&mut w, &set).unwrap();
        // 2 of 9 kept → sparsity 7/9.
        assert!((w.sparsity() - 7.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn used_patterns_subset() {
        let set = canonical_set(3).unwrap();
        let mut w = init::uniform(&mut init::rng(5), &[6, 6, 3, 3], -1.0, 1.0);
        let out = prune_3x3_weights(&mut w, &set).unwrap();
        let used = out.used_patterns();
        assert!(!used.is_empty());
        assert!(used.len() <= set.len());
        assert!(used.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rejects_non_3x3() {
        let set = canonical_set(3).unwrap();
        let mut w = Tensor::zeros(&[2, 2, 1, 1]);
        assert!(prune_3x3_weights(&mut w, &set).is_err());
        let mut w = Tensor::zeros(&[2, 2, 3]);
        assert!(prune_3x3_weights(&mut w, &set).is_err());
    }
}
