//! Algorithm 1: layer grouping via depth-first search over the
//! computational graph.
//!
//! The paper walks the computational graph (recovered from
//! backpropagation gradients in their PyTorch stack; first-class in our
//! [`Graph`]) to find parent–child layer couplings: a convolution whose
//! nearest convolution ancestor has coupled channels joins that
//! ancestor's group. "Each parent layer can have multiple child layers
//! but each child layer can only have one parent layer" — the DFS visits
//! a conv's graph predecessors depth-first and adopts the *first*
//! convolution with the same kernel size it reaches. Layers in a group
//! share the parent's kernel-pattern choices, which is what cuts the
//! iterative-pruning cost (§IV.A).

use rtoss_nn::{Graph, NodeId, NodeOp};

/// One parent–child layer group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerGroup {
    /// The group's parent (root) convolution node.
    pub parent: NodeId,
    /// Child convolution nodes, in discovery order.
    pub children: Vec<NodeId>,
}

impl LayerGroup {
    /// All members: parent first, then children.
    pub fn members(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.children.len());
        v.push(self.parent);
        v.extend_from_slice(&self.children);
        v
    }

    /// Number of members (parent + children).
    pub fn len(&self) -> usize {
        1 + self.children.len()
    }

    /// A group always has a parent, so it is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The output of Algorithm 1: all parent–child layer groups.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayerGroups {
    groups: Vec<LayerGroup>,
}

impl LayerGroups {
    /// The groups, ordered by parent node id.
    pub fn groups(&self) -> &[LayerGroup] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups (model without convolutions).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group id containing `node`, if any.
    pub fn group_of(&self, node: NodeId) -> Option<usize> {
        self.groups
            .iter()
            .position(|g| g.parent == node || g.children.contains(&node))
    }
}

/// Runs Algorithm 1: groups the graph's convolution layers.
///
/// A convolution joins the group of the first same-kernel-size
/// convolution found by a depth-first search through its predecessors
/// (skipping batch-norm, activations, pooling, upsampling, and
/// concat/add glue). A convolution with no such ancestor becomes its own
/// parent (Algorithm 1, lines 7–9).
pub fn group_layers(graph: &Graph) -> LayerGroups {
    let conv_ids = graph.conv_ids();
    // Map: conv node -> group index in `groups`.
    let mut group_index: Vec<Option<usize>> = vec![None; graph.len()];
    let mut groups: Vec<LayerGroup> = Vec::new();

    for &id in &conv_ids {
        let kernel = graph.conv(id).expect("conv id from conv_ids").kernel_size();
        // DFS through predecessors for the nearest conv ancestor with the
        // same kernel size.
        let mut stack: Vec<NodeId> = graph.parents(id).to_vec();
        let mut seen = vec![false; graph.len()];
        let mut adopted: Option<usize> = None;
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            if let Some(conv) = graph.conv(n) {
                if conv.kernel_size() == kernel {
                    // Found the parent layer; adopt its group.
                    adopted = group_index[n];
                    // A conv ancestor always has a group already (topological
                    // order), but be defensive.
                    if adopted.is_some() {
                        break;
                    }
                }
                // A conv with a different kernel size ends this path: the
                // coupling is broken by the intervening convolution.
                continue;
            }
            match &graph.node(n).op {
                NodeOp::Input => {}
                // Non-conv nodes are transparent: keep walking up.
                _ => stack.extend_from_slice(graph.parents(n)),
            }
        }
        match adopted {
            Some(gi) => {
                groups[gi].children.push(id);
                group_index[id] = Some(gi);
            }
            None => {
                group_index[id] = Some(groups.len());
                groups.push(LayerGroup {
                    parent: id,
                    children: Vec::new(),
                });
            }
        }
    }
    LayerGroups { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_nn::layers::{Activation, ActivationKind, BatchNorm2d, Conv2d};
    use rtoss_nn::Layer;

    fn conv(i: usize, o: usize, k: usize, seed: u64) -> Box<dyn Layer + Send> {
        Box::new(Conv2d::new(i, o, k, 1, k / 2, seed))
    }

    #[test]
    fn chain_of_same_kernel_convs_is_one_group() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(3, 4, 3, 1), x).unwrap();
        let b1 = g
            .add_layer("b1", Box::new(BatchNorm2d::new(4)), c1)
            .unwrap();
        let a1 = g
            .add_layer("a1", Box::new(Activation::new(ActivationKind::Relu)), b1)
            .unwrap();
        let c2 = g.add_layer("c2", conv(4, 4, 3, 2), a1).unwrap();
        let c3 = g.add_layer("c3", conv(4, 4, 3, 3), c2).unwrap();
        g.set_outputs(vec![c3]).unwrap();

        let groups = group_layers(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups.groups()[0].parent, c1);
        assert_eq!(groups.groups()[0].children, vec![c2, c3]);
    }

    #[test]
    fn kernel_size_change_starts_new_group() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(3, 4, 3, 1), x).unwrap();
        let p1 = g.add_layer("p1", conv(4, 4, 1, 2), c1).unwrap(); // 1x1
        let c2 = g.add_layer("c2", conv(4, 4, 3, 3), p1).unwrap();
        g.set_outputs(vec![c2]).unwrap();

        let groups = group_layers(&g);
        // c1 its own group; p1 (1x1) its own; c2 blocked by p1 (a conv of
        // different kernel size breaks the coupling) → its own group.
        assert_eq!(groups.len(), 3);
        assert!(groups.groups().iter().all(|gr| gr.children.is_empty()));
    }

    #[test]
    fn one_x_one_chain_groups_together() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let p1 = g.add_layer("p1", conv(3, 8, 1, 1), x).unwrap();
        let p2 = g.add_layer("p2", conv(8, 8, 1, 2), p1).unwrap();
        g.set_outputs(vec![p2]).unwrap();
        let groups = group_layers(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups.groups()[0].parent, p1);
        assert_eq!(groups.groups()[0].children, vec![p2]);
    }

    #[test]
    fn branches_share_a_parent() {
        // Parent conv feeding two branch convs: both join its group.
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(3, 4, 3, 1), x).unwrap();
        let c2 = g.add_layer("c2", conv(4, 4, 3, 2), c1).unwrap();
        let c3 = g.add_layer("c3", conv(4, 4, 3, 3), c1).unwrap();
        let cat = g.add_concat("cat", vec![c2, c3]).unwrap();
        let c4 = g.add_layer("c4", conv(8, 4, 3, 4), cat).unwrap();
        g.set_outputs(vec![c4]).unwrap();

        let groups = group_layers(&g);
        assert_eq!(groups.len(), 1);
        let grp = &groups.groups()[0];
        assert_eq!(grp.parent, c1);
        assert_eq!(grp.len(), 4);
        // Each child appears exactly once (single parent per child).
        let mut members = grp.members();
        members.sort_unstable();
        members.dedup();
        assert_eq!(members.len(), 4);
    }

    #[test]
    fn group_of_lookup() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        let c1 = g.add_layer("c1", conv(3, 4, 3, 1), x).unwrap();
        let c2 = g.add_layer("c2", conv(4, 4, 3, 2), c1).unwrap();
        g.set_outputs(vec![c2]).unwrap();
        let groups = group_layers(&g);
        assert_eq!(groups.group_of(c1), Some(0));
        assert_eq!(groups.group_of(c2), Some(0));
        assert_eq!(groups.group_of(x), None);
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let mut g = Graph::new();
        let x = g.add_input("x");
        g.set_outputs(vec![x]).unwrap();
        assert!(group_layers(&g).is_empty());
    }

    #[test]
    fn twin_model_groups_cover_every_conv_once() {
        let m = rtoss_models::yolov5s_twin(8, 3, 5).unwrap();
        let groups = group_layers(&m.graph);
        let mut covered: Vec<NodeId> = groups.groups().iter().flat_map(|g| g.members()).collect();
        covered.sort_unstable();
        let mut convs = m.graph.conv_ids();
        convs.sort_unstable();
        assert_eq!(covered, convs, "every conv in exactly one group");
        // Grouping actually reduces work: fewer groups than convs.
        assert!(groups.len() < convs.len());
    }
}
