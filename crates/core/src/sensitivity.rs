//! Per-layer pruning sensitivity analysis and layer protection.
//!
//! Iterative pruning frameworks (the paper's included) decide *where*
//! pruning is safe by measuring each layer's tolerance. This module
//! prunes one convolution layer at a time (restoring it afterwards) and
//! reports the L2 retention per layer; layers with low retention or
//! small parameter counts — detection heads, stems — are candidates for
//! the [`RTossConfig::protected`](crate::RTossConfig) list, which the
//! pruner then leaves dense.

use crate::framework::EntryPattern;
use crate::pattern::canonical_set;
use crate::prune1x1::prune_1x1_weights;
use crate::prune3x3::prune_3x3_weights;
use crate::PruneError;
use rtoss_nn::Graph;

/// Sensitivity record for one convolution layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSensitivity {
    /// Graph node name.
    pub name: String,
    /// Kernel extent (1 or 3 for prunable layers).
    pub kernel: usize,
    /// Weight count.
    pub params: usize,
    /// `‖W_pruned‖₂ / ‖W‖₂` when only this layer is pruned, in `[0, 1]`.
    /// Lower means the layer loses more of its energy to the pattern.
    pub retention: f64,
}

/// Measures every prunable layer's L2 retention under the given entry
/// pattern, without permanently modifying the graph.
///
/// Results are sorted most-sensitive (lowest retention) first.
///
/// # Errors
///
/// Returns [`PruneError`] if pattern selection or pruning fails.
pub fn analyze_layer_sensitivity(
    graph: &mut Graph,
    entry: EntryPattern,
) -> Result<Vec<LayerSensitivity>, PruneError> {
    let patterns = canonical_set(entry.k())?;
    let mut out = Vec::new();
    for id in graph.conv_ids() {
        let name = graph.node(id).name.clone();
        let conv = graph.conv_mut(id).expect("conv id");
        let kernel = conv.kernel_size();
        if kernel != 1 && kernel != 3 {
            continue;
        }
        let param = conv.weight_mut();
        let saved = param.value.clone();
        let before = saved.l2_norm() as f64;
        let mut w = saved.clone();
        match kernel {
            3 => {
                prune_3x3_weights(&mut w, &patterns)?;
            }
            _ => {
                prune_1x1_weights(&mut w, &patterns)?;
            }
        }
        let after = w.l2_norm() as f64;
        out.push(LayerSensitivity {
            name,
            kernel,
            params: saved.numel(),
            retention: if before > 0.0 { after / before } else { 1.0 },
        });
        // Restore (prune_* mutated only the local copy, but be explicit
        // about the invariant).
        param.value = saved;
    }
    out.sort_by(|a, b| a.retention.total_cmp(&b.retention));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pruner, RTossConfig, RTossPruner};
    use rtoss_models::yolov5s_twin;

    #[test]
    fn covers_every_prunable_layer_and_is_nondestructive() {
        let mut m = yolov5s_twin(8, 3, 200).unwrap();
        let before_sparsity = m.conv_sparsity();
        let report = analyze_layer_sensitivity(&mut m.graph, EntryPattern::Two).unwrap();
        let prunable = m
            .graph
            .conv_ids()
            .into_iter()
            .filter(|&id| matches!(m.graph.conv(id).unwrap().kernel_size(), 1 | 3))
            .count();
        assert_eq!(report.len(), prunable);
        assert!(
            (m.conv_sparsity() - before_sparsity).abs() < 1e-12,
            "analysis mutated weights"
        );
        // Retentions are sane and sorted ascending.
        for w in report.windows(2) {
            assert!(w[0].retention <= w[1].retention + 1e-12);
        }
        for l in &report {
            assert!((0.0..=1.0).contains(&l.retention), "{l:?}");
        }
    }

    #[test]
    fn tighter_patterns_are_more_sensitive() {
        let mut m = yolov5s_twin(8, 3, 201).unwrap();
        let two = analyze_layer_sensitivity(&mut m.graph, EntryPattern::Two).unwrap();
        let five = analyze_layer_sensitivity(&mut m.graph, EntryPattern::Five).unwrap();
        let mean =
            |r: &[LayerSensitivity]| r.iter().map(|l| l.retention).sum::<f64>() / r.len() as f64;
        assert!(mean(&two) < mean(&five), "2EP should retain less than 5EP");
    }

    #[test]
    fn protected_layers_stay_dense() {
        let mut m = yolov5s_twin(8, 3, 202).unwrap();
        let cfg = RTossConfig {
            protected: vec!["detect".into()],
            ..RTossConfig::new(EntryPattern::Two)
        };
        let report = RTossPruner::with_config(cfg)
            .prune_graph(&mut m.graph)
            .unwrap();
        for l in &report.layers {
            if l.name.starts_with("detect") {
                assert_eq!(l.zeros, 0, "protected layer {} was pruned", l.name);
            }
        }
        // Everything else is still heavily pruned.
        assert!(report.overall_sparsity() > 0.6);
    }
}
