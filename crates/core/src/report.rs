use serde::{Deserialize, Serialize};

/// Sparsity accounting for one pruned layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSparsity {
    /// Layer (graph node) name.
    pub name: String,
    /// Kernel extent of the layer (1, 3, ...).
    pub kernel: usize,
    /// Total conv weights in the layer.
    pub total: usize,
    /// Weights pruned to exactly zero.
    pub zeros: usize,
}

impl LayerSparsity {
    /// Fraction of this layer's weights that are zero.
    pub fn sparsity(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.zeros as f64 / self.total as f64
        }
    }
}

/// Result of running a pruner over a model: per-layer sparsity plus
/// method metadata. The paper's "reduction/compression ratio" (Fig. 4,
/// Table 3) is [`PruneReport::compression_ratio`]: total conv weights
/// over surviving conv weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneReport {
    /// Pruning method name (e.g. `"R-TOSS (2EP)"`).
    pub method: String,
    /// Per-layer accounting, in graph order.
    pub layers: Vec<LayerSparsity>,
    /// Number of layer groups Algorithm 1 produced (0 for baselines that
    /// do not group).
    pub group_count: usize,
}

impl PruneReport {
    /// Creates an empty report for a method.
    pub fn new(method: &str) -> Self {
        PruneReport {
            method: method.to_string(),
            layers: Vec::new(),
            group_count: 0,
        }
    }

    /// Total conv weights covered by the report.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(|l| l.total).sum()
    }

    /// Total weights pruned to zero.
    pub fn total_zeros(&self) -> usize {
        self.layers.iter().map(|l| l.zeros).sum()
    }

    /// Overall sparsity: zeros / total, in `[0, 1]`.
    pub fn overall_sparsity(&self) -> f64 {
        let t = self.total_weights();
        if t == 0 {
            0.0
        } else {
            self.total_zeros() as f64 / t as f64
        }
    }

    /// Compression ratio: total / surviving (`1.0` for an unpruned
    /// model, `4.5` for uniform 2-of-9 pattern pruning).
    pub fn compression_ratio(&self) -> f64 {
        let total = self.total_weights();
        if total == 0 {
            return 1.0;
        }
        let surviving = total - self.total_zeros();
        if surviving == 0 {
            f64::INFINITY
        } else {
            total as f64 / surviving as f64
        }
    }

    /// Sparsity restricted to layers with the given kernel extent.
    pub fn sparsity_for_kernel(&self, kernel: usize) -> f64 {
        let (mut z, mut t) = (0usize, 0usize);
        for l in self.layers.iter().filter(|l| l.kernel == kernel) {
            z += l.zeros;
            t += l.total;
        }
        if t == 0 {
            0.0
        } else {
            z as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PruneReport {
        PruneReport {
            method: "test".into(),
            layers: vec![
                LayerSparsity {
                    name: "a".into(),
                    kernel: 3,
                    total: 90,
                    zeros: 60,
                },
                LayerSparsity {
                    name: "b".into(),
                    kernel: 1,
                    total: 10,
                    zeros: 0,
                },
            ],
            group_count: 1,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.total_weights(), 100);
        assert_eq!(r.total_zeros(), 60);
        assert!((r.overall_sparsity() - 0.6).abs() < 1e-12);
        assert!((r.compression_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn per_kernel_views() {
        let r = report();
        assert!((r.sparsity_for_kernel(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.sparsity_for_kernel(1), 0.0);
        assert_eq!(r.sparsity_for_kernel(7), 0.0);
    }

    #[test]
    fn empty_report_is_dense() {
        let r = PruneReport::new("none");
        assert_eq!(r.overall_sparsity(), 0.0);
        assert_eq!(r.compression_ratio(), 1.0);
        assert_eq!(r.total_weights(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: PruneReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
