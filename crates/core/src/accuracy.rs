//! Analytic accuracy model (tier "b" of DESIGN.md §2).
//!
//! The paper's mAP numbers come from fine-tuned full-scale detectors on
//! KITTI — a GPU-training workload we cannot run. This module provides
//! the documented substitution: an information-retention model mapping
//! *measured* pruning statistics to an mAP estimate, calibrated once
//! against the paper's Table 3 base rows. The empirical tier (training
//! the scaled twins, `rtoss-bench`'s fig5 harness) cross-checks the
//! orderings this model produces.
//!
//! Model (mAP points, 0–100):
//!
//! ```text
//! mAP ≈ base
//!     + retention_gain · (Q − 1)            // information kept
//!     + reg_bonus · f(s)                    // pruning-as-regularisation
//!     − structured_penalty · c²             // whole-filter information loss
//! ```
//!
//! where `Q` is the parameter-weighted L2 retention (`‖W_pruned‖₂ /
//! ‖W_orig‖₂` per layer), `s` the overall sparsity, `f` a concave bump
//! peaking at `optimal_sparsity` (the paper observes moderate pruning
//! *raising* mAP — fine-tuning with fewer parameters regularises), and
//! `c` the fraction of filters removed entirely (structured pruning's
//! irrecoverable loss, §II.B).

use rtoss_nn::Graph;

/// Per-layer weight statistics captured *before* pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSnapshot {
    layers: Vec<LayerStat>,
}

#[derive(Debug, Clone, PartialEq)]
struct LayerStat {
    name: String,
    numel: usize,
    l2: f64,
}

/// Captures the L2 norms of every conv layer (call before pruning).
pub fn snapshot_weights(graph: &Graph) -> WeightSnapshot {
    let layers = graph
        .conv_ids()
        .into_iter()
        .map(|id| {
            let conv = graph.conv(id).expect("conv id");
            LayerStat {
                name: graph.node(id).name.clone(),
                numel: conv.weight().value.numel(),
                l2: conv.weight().value.l2_norm() as f64,
            }
        })
        .collect();
    WeightSnapshot { layers }
}

/// Measured pruning statistics extracted from a pruned graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneStats {
    /// Parameter-weighted L2 retention `Q` in `[0, 1]`.
    pub retention: f64,
    /// Overall conv-weight sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Parameter-weighted fraction of output filters that are entirely
    /// zero.
    pub filter_cut: f64,
    /// Parameter-weighted fraction of surviving ≥3×3 kernels whose
    /// non-zero cells form a proper 4-connected pattern (1.0 for
    /// kernel-pattern pruning, low for random/unstructured masks,
    /// 0 for dense kernels). Drives the structure-aware share of the
    /// regularisation bonus.
    pub pattern_regularity: f64,
}

/// Whether the non-zero cells of a flat `k×k` kernel form a single
/// 4-connected component that is strictly smaller than the kernel
/// (i.e. a proper pattern, not a dense kernel).
fn is_patterned(cells: &[f32], k: usize) -> bool {
    let nz: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, _)| i)
        .collect();
    if nz.is_empty() || nz.len() == k * k {
        return false;
    }
    let mut seen = vec![false; k * k];
    let mut stack = vec![nz[0]];
    seen[nz[0]] = true;
    while let Some(i) = stack.pop() {
        let (r, c) = (i / k, i % k);
        let mut push = |j: usize| {
            if !seen[j] && cells[j] != 0.0 {
                seen[j] = true;
                stack.push(j);
            }
        };
        if r > 0 {
            push(i - k);
        }
        if r + 1 < k {
            push(i + k);
        }
        if c > 0 {
            push(i - 1);
        }
        if c + 1 < k {
            push(i + 1);
        }
    }
    seen.iter().filter(|&&s| s).count() == nz.len()
}

/// Computes [`PruneStats`] by comparing a pruned graph against its
/// pre-pruning [`WeightSnapshot`].
///
/// Layers present in the graph but not the snapshot (or vice versa) are
/// skipped, so the function tolerates graph edits between the calls.
pub fn prune_stats(before: &WeightSnapshot, graph: &Graph) -> PruneStats {
    let mut weighted_retention = 0.0f64;
    let mut total_params = 0.0f64;
    let mut zeros = 0usize;
    let mut numel = 0usize;
    let mut filter_cut_weighted = 0.0f64;
    let mut regular_weighted = 0.0f64;
    let mut regular_total = 0.0f64;

    for id in graph.conv_ids() {
        let name = &graph.node(id).name;
        let conv = graph.conv(id).expect("conv id");
        let w = &conv.weight().value;
        let Some(stat) = before.layers.iter().find(|l| &l.name == name) else {
            continue;
        };
        let r = if stat.l2 > 0.0 {
            (w.l2_norm() as f64 / stat.l2).min(1.0)
        } else {
            1.0
        };
        weighted_retention += r * stat.numel as f64;
        total_params += stat.numel as f64;
        zeros += w.count_zeros();
        numel += w.numel();

        // Filter-cut fraction: output channels whose weights are all zero.
        let o = w.shape()[0];
        let per: usize = w.shape()[1..].iter().product();
        let cut = (0..o)
            .filter(|&f| {
                w.as_slice()[f * per..(f + 1) * per]
                    .iter()
                    .all(|&v| v == 0.0)
            })
            .count();
        filter_cut_weighted += (cut as f64 / o as f64) * stat.numel as f64;

        // Pattern regularity over surviving >= 3x3 kernels.
        let k = w.shape()[2];
        if k >= 3 && w.shape()[3] == k {
            let kernels = w.shape()[0] * w.shape()[1];
            let kk = k * k;
            let mut surviving = 0usize;
            let mut patterned = 0usize;
            for ki in 0..kernels {
                let cells = &w.as_slice()[ki * kk..(ki + 1) * kk];
                if cells.iter().all(|&v| v == 0.0) {
                    continue;
                }
                surviving += 1;
                if is_patterned(cells, k) {
                    patterned += 1;
                }
            }
            if surviving > 0 {
                regular_weighted += (patterned as f64 / surviving as f64) * stat.numel as f64;
                regular_total += stat.numel as f64;
            }
        }
    }

    PruneStats {
        retention: if total_params > 0.0 {
            weighted_retention / total_params
        } else {
            1.0
        },
        sparsity: if numel > 0 {
            zeros as f64 / numel as f64
        } else {
            0.0
        },
        filter_cut: if total_params > 0.0 {
            filter_cut_weighted / total_params
        } else {
            0.0
        },
        pattern_regularity: if regular_total > 0.0 {
            regular_weighted / regular_total
        } else {
            0.0
        },
    }
}

/// The calibrated accuracy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyModel {
    /// Unpruned (Base Model) mAP on KITTI, in points.
    pub base_map: f64,
    /// mAP points recovered per unit of L2 retention.
    pub retention_gain: f64,
    /// Peak regularisation bonus in mAP points (earned in full only by
    /// fully patterned sparsity).
    pub reg_bonus: f64,
    /// Sparsity at which the regularisation bonus peaks.
    pub optimal_sparsity: f64,
    /// Width of the Gaussian regularisation bump (in sparsity units).
    pub reg_width: f64,
    /// Penalty coefficient on the squared filter-cut fraction.
    pub structured_penalty: f64,
}

impl AccuracyModel {
    /// Calibration for YOLOv5s on KITTI (Table 3 / Fig. 5a context).
    pub fn yolov5s_kitti() -> Self {
        AccuracyModel {
            base_map: 74.2,
            retention_gain: 10.0,
            reg_bonus: 6.2,
            optimal_sparsity: 0.70,
            reg_width: 0.25,
            structured_penalty: 55.0,
        }
    }

    /// Calibration for RetinaNet on KITTI (Table 3 / Fig. 5b context).
    /// The narrower, later bump encodes the paper's observation that
    /// RetinaNet keeps improving up to 2EP sparsity (Table 3: 2EP has
    /// the best RetinaNet mAP).
    pub fn retinanet_kitti() -> Self {
        AccuracyModel {
            base_map: 77.5,
            retention_gain: 12.0,
            reg_bonus: 9.0,
            optimal_sparsity: 0.78,
            reg_width: 0.15,
            structured_penalty: 60.0,
        }
    }

    /// Estimates fine-tuned mAP (points, clamped to `[0, 100]`) from
    /// measured pruning statistics.
    ///
    /// The regularisation bonus is a Gaussian bump in sparsity, scaled
    /// by how *patterned* the surviving kernels are: fully patterned
    /// masks (R-TOSS, PATDNN) earn the whole bonus, irregular masks a
    /// quarter of it — the semi-structured advantage of §II.B.
    pub fn estimate(&self, stats: &PruneStats) -> f64 {
        let z = (stats.sparsity - self.optimal_sparsity) / self.reg_width;
        let bump = (-z * z).exp();
        let regularity_scale = 0.25 + 0.75 * stats.pattern_regularity;
        let map = self.base_map
            + self.retention_gain * (stats.retention - 1.0)
            + self.reg_bonus * bump * regularity_scale
            - self.structured_penalty * stats.filter_cut * stats.filter_cut;
        map.clamp(0.0, 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{NetworkSlimming, PruningFilters};
    use crate::{EntryPattern, Pruner, RTossPruner};
    use rtoss_models::yolov5s_twin;

    fn run(pruner: &dyn Pruner, seed: u64) -> PruneStats {
        let mut m = yolov5s_twin(8, 3, seed).unwrap();
        let snap = snapshot_weights(&m.graph);
        pruner.prune_graph(&mut m.graph).unwrap();
        prune_stats(&snap, &m.graph)
    }

    #[test]
    fn unpruned_model_scores_base_map() {
        let m = yolov5s_twin(8, 3, 71).unwrap();
        let snap = snapshot_weights(&m.graph);
        let stats = prune_stats(&snap, &m.graph);
        assert!((stats.retention - 1.0).abs() < 1e-6);
        assert!(stats.sparsity < 0.01);
        let model = AccuracyModel::yolov5s_kitti();
        let est = model.estimate(&stats);
        assert!((est - model.base_map).abs() < 0.2, "est {est}");
    }

    #[test]
    fn rtoss_moderate_pruning_beats_base_map() {
        // The paper's headline: R-TOSS 3EP/2EP *increase* mAP over BM.
        let model = AccuracyModel::yolov5s_kitti();
        for entry in [EntryPattern::Three, EntryPattern::Two] {
            let stats = run(&RTossPruner::new(entry), 72);
            let est = model.estimate(&stats);
            assert!(
                est > model.base_map,
                "{entry}: est {est} <= base {}",
                model.base_map
            );
        }
    }

    #[test]
    fn structured_pruning_scores_below_base() {
        let model = AccuracyModel::yolov5s_kitti();
        let ns = model.estimate(&run(&NetworkSlimming::default(), 73));
        let pf = model.estimate(&run(&PruningFilters::default(), 73));
        assert!(ns < model.base_map, "NS est {ns}");
        assert!(pf < model.base_map, "PF est {pf}");
    }

    #[test]
    fn rtoss_beats_structured_baselines() {
        let model = AccuracyModel::yolov5s_kitti();
        let rtoss = model.estimate(&run(&RTossPruner::new(EntryPattern::Three), 74));
        let pf = model.estimate(&run(&PruningFilters::default(), 74));
        assert!(rtoss > pf + 2.0, "rtoss {rtoss} vs pf {pf}");
    }

    #[test]
    fn retention_reflects_best_l2_selection() {
        // Pattern pruning keeps the highest-L2 cells: retention must be
        // well above sqrt(1 - sparsity) lower bound of random pruning.
        let stats = run(&RTossPruner::new(EntryPattern::Two), 75);
        assert!(stats.sparsity > 0.7);
        let random_retention = (1.0 - stats.sparsity).sqrt();
        assert!(
            stats.retention > random_retention + 0.05,
            "retention {} vs random {}",
            stats.retention,
            random_retention
        );
    }

    #[test]
    fn filter_cut_detected_for_filter_pruning() {
        let stats = run(&PruningFilters::default(), 76);
        assert!(stats.filter_cut > 0.2, "filter_cut {}", stats.filter_cut);
        let rtoss = run(&RTossPruner::new(EntryPattern::Two), 76);
        assert!(
            rtoss.filter_cut < 0.05,
            "rtoss filter_cut {}",
            rtoss.filter_cut
        );
    }

    #[test]
    fn rtoss_masks_are_fully_patterned_and_magnitude_masks_are_not() {
        let rtoss = run(&RTossPruner::new(EntryPattern::Three), 77);
        assert!(
            rtoss.pattern_regularity > 0.99,
            "R-TOSS regularity {}",
            rtoss.pattern_regularity
        );
        let nms = run(&crate::baselines::MagnitudePruner::default(), 77);
        assert!(
            nms.pattern_regularity < 0.6,
            "NMS regularity {}",
            nms.pattern_regularity
        );
    }

    #[test]
    fn is_patterned_examples() {
        // Connected 3-cell row in a 3x3 kernel.
        let mut cells = [0.0f32; 9];
        cells[3] = 1.0;
        cells[4] = 1.0;
        cells[5] = 1.0;
        assert!(is_patterned(&cells, 3));
        // Two opposite corners: disconnected.
        let mut cells = [0.0f32; 9];
        cells[0] = 1.0;
        cells[8] = 1.0;
        assert!(!is_patterned(&cells, 3));
        // Dense kernel: not a proper pattern.
        assert!(!is_patterned(&[1.0; 9], 3));
        // Empty kernel: not a pattern.
        assert!(!is_patterned(&[0.0; 9], 3));
    }

    #[test]
    fn estimate_is_clamped() {
        let model = AccuracyModel::yolov5s_kitti();
        let terrible = PruneStats {
            retention: 0.0,
            sparsity: 0.99,
            filter_cut: 1.0,
            pattern_regularity: 0.0,
        };
        let est = model.estimate(&terrible);
        assert!((0.0..=100.0).contains(&est));
    }
}
