//! Object-detector architectures for the R-TOSS reproduction.
//!
//! Two tiers per pruning target (DESIGN.md §2):
//!
//! - **Full-scale** graphs ([`yolov5s`], [`retinanet`]) carry real weight
//!   tensors at the paper's published sizes (7.02 M / 36.49 M params), so
//!   pruning, sparsity measurement, DFS grouping, and the kernel census
//!   are exact. They are never run forward at 640×640 on CPU.
//! - **Scaled twins** ([`yolov5s_twin`], [`retinanet_twin`]) keep the
//!   topology at reduced width/resolution and train end-to-end on
//!   synthetic KITTI scenes for the empirical accuracy tier.
//!
//! [`others`] carries literature profiles for the Table 1/2 comparison
//! detectors, and [`detect`] decodes grid-head outputs.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = rtoss_models::yolov5s(80, 42)?;
//! assert!((model.spec.params_millions() - 7.02).abs() < 0.7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod retinanet;
mod yolov5;

pub mod detect;
pub mod others;
pub mod spec;

pub use builder::DetectorBuilder;
pub use retinanet::{retinanet, retinanet_twin};
pub use spec::{ConvLayerSpec, KernelCensus, ModelSpec};
pub use yolov5::{yolov5, yolov5s, yolov5s_twin, Yolov5Variant};

use rtoss_nn::{Graph, NnError, NodeId};
use std::error::Error;
use std::fmt;

/// Error produced by model construction and decoding.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelsError {
    /// Underlying graph construction failed.
    Nn(NnError),
    /// Invalid configuration (widths, shapes, thresholds).
    Config {
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for ModelsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelsError::Nn(e) => write!(f, "model construction failed: {e}"),
            ModelsError::Config { msg } => write!(f, "invalid model configuration: {msg}"),
        }
    }
}

impl Error for ModelsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelsError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ModelsError {
    fn from(e: NnError) -> Self {
        ModelsError::Nn(e)
    }
}

/// Metadata for one detection head of a [`DetectorModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadInfo {
    /// Graph node producing the raw head output.
    pub node: NodeId,
    /// Grid size `S` of the head output `(N, ch, S, S)`.
    pub grid: usize,
    /// Normalised anchor `(w, h)` this head regresses against.
    pub anchor: (f32, f32),
}

/// A detector: runnable graph, analytic spec, and head metadata.
#[derive(Debug)]
pub struct DetectorModel {
    /// The computational graph (weights included).
    pub graph: Graph,
    /// The matching analytic specification (params/MACs/census).
    pub spec: ModelSpec,
    /// Detection heads, finest grid first.
    pub heads: Vec<HeadInfo>,
    /// Number of object classes.
    pub num_classes: usize,
}

impl DetectorModel {
    /// Measured sparsity over all conv weights (fraction of exact zeros).
    pub fn conv_sparsity(&self) -> f64 {
        let (mut zeros, mut total) = (0usize, 0usize);
        for id in self.graph.conv_ids() {
            let w = &self.graph.conv(id).expect("conv id").weight().value;
            zeros += w.count_zeros();
            total += w.numel();
        }
        if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        }
    }

    /// Effective (non-zero-weight) MACs after pruning: each conv layer's
    /// dense MACs scaled by its measured weight density.
    pub fn effective_macs(&self) -> u64 {
        let mut by_name: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
        for id in self.graph.conv_ids() {
            let node = self.graph.node(id);
            let w = &self.graph.conv(id).expect("conv id").weight().value;
            by_name.insert(node.name.as_str(), 1.0 - w.sparsity());
        }
        self.spec
            .layers
            .iter()
            .map(|l| {
                let density = by_name.get(l.name.as_str()).copied().unwrap_or(1.0);
                (l.macs() as f64 * density) as u64
            })
            .sum::<u64>()
            + self.spec.extra_macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_starts_near_zero_and_reflects_masks() {
        let mut m = yolov5s_twin(4, 2, 3).unwrap();
        assert!(m.conv_sparsity() < 0.01);
        // Zero one conv entirely.
        let id = m.graph.conv_ids()[0];
        let conv = m.graph.conv_mut(id).unwrap();
        let shape = conv.weight().value.shape().to_vec();
        conv.weight_mut()
            .set_mask(rtoss_tensor::Tensor::zeros(&shape))
            .unwrap();
        assert!(m.conv_sparsity() > 0.0);
    }

    #[test]
    fn effective_macs_decrease_with_pruning() {
        let mut m = yolov5s_twin(4, 2, 4).unwrap();
        let dense = m.effective_macs();
        for id in m.graph.conv_ids() {
            let conv = m.graph.conv_mut(id).unwrap();
            let shape = conv.weight().value.shape().to_vec();
            let mut mask = rtoss_tensor::Tensor::ones(&shape);
            // Zero half of each weight tensor.
            let n = mask.numel();
            for i in 0..n / 2 {
                mask.as_mut_slice()[i] = 0.0;
            }
            conv.weight_mut().set_mask(mask).unwrap();
        }
        let sparse = m.effective_macs();
        assert!(sparse < dense, "{sparse} !< {dense}");
        assert!((sparse as f64) < dense as f64 * 0.7);
    }

    #[test]
    fn spec_and_graph_conv_counts_agree() {
        let m = yolov5s_twin(8, 3, 5).unwrap();
        assert_eq!(m.spec.layers.len(), m.graph.conv_ids().len());
        let m2 = retinanet_twin(8, 3, 5).unwrap();
        assert_eq!(m2.spec.layers.len(), m2.graph.conv_ids().len());
    }
}
