//! Profiles of the detectors the paper compares against in Tables 1–2,
//! plus a DETR spec for the §III kernel census.
//!
//! The paper's Table 1 (two-stage vs single-stage metrics) and Table 2
//! (model size vs execution time on the Jetson TX2) cover eight models
//! that are *not* pruning targets. For those we carry literature-derived
//! profiles: parameter counts, dense MAC counts at the evaluation input
//! size, and the mAP the paper quotes. The `rtoss-hw` device models turn
//! the MAC/byte numbers into latency; Table 1/2 harnesses print both the
//! paper value and the simulated value side by side.

use crate::spec::{ConvLayerSpec, ModelSpec};

/// Detector category (Table 1, column "Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorType {
    /// Region-proposal + classification pipeline.
    TwoStage,
    /// Single feed-forward pass.
    SingleStage,
}

impl std::fmt::Display for DetectorType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorType::TwoStage => write!(f, "two-stage"),
            DetectorType::SingleStage => write!(f, "single-stage"),
        }
    }
}

/// Literature-derived profile of a detector that is not a pruning target.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorProfile {
    /// Model name as printed in the paper's tables.
    pub name: &'static str,
    /// Detector category.
    pub detector_type: DetectorType,
    /// Parameters in millions (paper Table 2 / source papers).
    pub params_m: f64,
    /// Dense multiply–accumulates per frame at `input` resolution, in
    /// billions (GMACs ≈ GFLOPs / 2), from the source papers.
    pub gmacs: f64,
    /// Input resolution the MAC count corresponds to.
    pub input: usize,
    /// mAP the paper's Table 1 quotes (COCO context), when listed.
    pub paper_map: Option<f64>,
    /// Inference rate (fps) the paper's Table 1 quotes, when listed.
    pub paper_fps: Option<f64>,
    /// Execution time (s) on the Jetson TX2 from the paper's Table 2,
    /// when listed.
    pub paper_tx2_seconds: Option<f64>,
}

/// Profiles for every non-pruned detector in Tables 1 and 2.
///
/// The `params_m` / `paper_*` columns are the paper's own numbers; the
/// `gmacs` column comes from each detector's source publication and is
/// the input to the latency simulation.
pub fn comparison_profiles() -> Vec<DetectorProfile> {
    vec![
        DetectorProfile {
            name: "R-CNN",
            detector_type: DetectorType::TwoStage,
            params_m: 58.0,
            // ~2000 region proposals × AlexNet-like CNN ≈ 1400 GMACs.
            gmacs: 1400.0,
            input: 227,
            paper_map: Some(42.0),
            paper_fps: Some(0.02),
            paper_tx2_seconds: None,
        },
        DetectorProfile {
            name: "Fast R-CNN",
            detector_type: DetectorType::TwoStage,
            params_m: 60.0,
            gmacs: 160.0,
            input: 600,
            paper_map: Some(19.7),
            paper_fps: Some(0.5),
            paper_tx2_seconds: None,
        },
        DetectorProfile {
            name: "Faster R-CNN",
            detector_type: DetectorType::TwoStage,
            params_m: 41.0,
            gmacs: 134.0,
            input: 600,
            paper_map: Some(78.9),
            paper_fps: Some(7.0),
            paper_tx2_seconds: None,
        },
        DetectorProfile {
            name: "RetinaNet",
            detector_type: DetectorType::SingleStage,
            params_m: 36.49,
            gmacs: 120.0,
            input: 640,
            paper_map: Some(61.1),
            paper_fps: Some(90.0),
            paper_tx2_seconds: Some(6.8),
        },
        DetectorProfile {
            name: "YOLOv4",
            detector_type: DetectorType::SingleStage,
            params_m: 64.0,
            gmacs: 71.0,
            input: 640,
            paper_map: Some(65.7),
            paper_fps: Some(62.0),
            paper_tx2_seconds: None,
        },
        DetectorProfile {
            name: "YOLOv5",
            detector_type: DetectorType::SingleStage,
            params_m: 7.02,
            gmacs: 8.3,
            input: 640,
            paper_map: Some(56.4),
            paper_fps: Some(140.0),
            paper_tx2_seconds: Some(0.7415),
        },
        DetectorProfile {
            name: "YOLOX",
            detector_type: DetectorType::SingleStage,
            params_m: 8.97,
            gmacs: 13.4,
            input: 640,
            paper_map: None,
            paper_fps: None,
            paper_tx2_seconds: Some(1.23),
        },
        DetectorProfile {
            name: "YOLOv7",
            detector_type: DetectorType::SingleStage,
            params_m: 36.90,
            gmacs: 52.0,
            input: 640,
            paper_map: None,
            paper_fps: None,
            paper_tx2_seconds: Some(6.5),
        },
        DetectorProfile {
            name: "YOLOR",
            detector_type: DetectorType::SingleStage,
            params_m: 37.26,
            gmacs: 60.0,
            input: 640,
            paper_map: None,
            paper_fps: None,
            paper_tx2_seconds: Some(6.89),
        },
        DetectorProfile {
            name: "DETR",
            detector_type: DetectorType::SingleStage,
            params_m: 41.52,
            gmacs: 43.0,
            input: 640,
            paper_map: None,
            paper_fps: None,
            paper_tx2_seconds: Some(7.6),
        },
    ]
}

/// Returns the profile with the given name, if present.
pub fn profile(name: &str) -> Option<DetectorProfile> {
    comparison_profiles().into_iter().find(|p| p.name == name)
}

/// Builds a DETR spec sufficient for the §III kernel census: ResNet-50
/// backbone convs, the 1×1 input projection, and the transformer's
/// projection/FFN matrices mapped to 1×1 kernels (a linear on a token
/// sequence is exactly a 1×1 convolution over the feature map).
pub fn detr_census_spec() -> ModelSpec {
    let mut spec = ModelSpec::new("DETR", (640, 640));
    let mut push = |name: String, in_ch: usize, out_ch: usize, k: usize| {
        spec.layers.push(ConvLayerSpec {
            name,
            in_ch,
            out_ch,
            kernel: k,
            stride: 1,
            out_h: 1,
            out_w: 1,
        });
    };

    // ResNet-50 backbone convolutions.
    push("stem".into(), 3, 64, 7);
    let stages: [(usize, usize, usize); 4] =
        [(64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)];
    let mut in_ch = 64;
    for (si, (mid, out, blocks)) in stages.into_iter().enumerate() {
        for bi in 0..blocks {
            push(format!("layer{si}.{bi}.cv1"), in_ch, mid, 1);
            push(format!("layer{si}.{bi}.cv2"), mid, mid, 3);
            push(format!("layer{si}.{bi}.cv3"), mid, out, 1);
            if bi == 0 {
                push(format!("layer{si}.{bi}.down"), in_ch, out, 1);
            }
            in_ch = out;
        }
    }

    // Input projection to the transformer width.
    let d = 256;
    push("input_proj".into(), 2048, d, 1);

    // Transformer: 6 encoder layers (self-attn QKV+O, FFN up/down) and
    // 6 decoder layers (self-attn + cross-attn + FFN).
    for li in 0..6 {
        for p in ["q", "k", "v", "o"] {
            push(format!("enc{li}.attn.{p}"), d, d, 1);
        }
        push(format!("enc{li}.ffn.up"), d, 2048, 1);
        push(format!("enc{li}.ffn.down"), 2048, d, 1);
    }
    for li in 0..6 {
        for p in ["sq", "sk", "sv", "so", "cq", "ck", "cv", "co"] {
            push(format!("dec{li}.attn.{p}"), d, d, 1);
        }
        push(format!("dec{li}.ffn.up"), d, 2048, 1);
        push(format!("dec{li}.ffn.down"), 2048, d, 1);
    }
    // Prediction heads (class linear + 3-layer box MLP).
    push("head.class".into(), d, 92, 1);
    for i in 0..3 {
        push(format!("head.box{i}"), d, if i == 2 { 4 } else { d }, 1);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_both_tables() {
        let ps = comparison_profiles();
        assert_eq!(ps.len(), 10);
        // Table 1 rows have mAP + fps.
        assert_eq!(ps.iter().filter(|p| p.paper_map.is_some()).count(), 6);
        // Table 2 rows have TX2 seconds.
        assert_eq!(
            ps.iter().filter(|p| p.paper_tx2_seconds.is_some()).count(),
            6
        );
    }

    #[test]
    fn table2_ordering_params_vs_time_is_monotone() {
        // The paper's Table 2 point: execution time grows with model size.
        let mut rows: Vec<_> = comparison_profiles()
            .into_iter()
            .filter(|p| p.paper_tx2_seconds.is_some())
            .collect();
        rows.sort_by(|a, b| a.params_m.total_cmp(&b.params_m));
        let times: Vec<f64> = rows.iter().map(|r| r.paper_tx2_seconds.unwrap()).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0] * 0.9, "time ordering violated: {times:?}");
        }
    }

    #[test]
    fn profile_lookup() {
        assert!(profile("YOLOv5").is_some());
        assert!(profile("NoSuchNet").is_none());
    }

    #[test]
    fn detr_census_is_mostly_1x1() {
        let spec = detr_census_spec();
        let f = spec.census().layer_fraction_1x1();
        // Paper §III: 63.46%. Our census (transformer linears mapped to
        // 1×1) lands higher; assert the qualitative claim: majority 1×1.
        assert!(f > 0.6, "DETR 1x1 fraction {f}");
    }
}
