//! Decoding grid-head outputs into detections.

use crate::{HeadInfo, ModelsError};
use rtoss_tensor::Tensor;

/// A decoded detection in normalised image coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Box centre x (normalised).
    pub cx: f32,
    /// Box centre y (normalised).
    pub cy: f32,
    /// Box width (normalised).
    pub w: f32,
    /// Box height (normalised).
    pub h: f32,
    /// Confidence score: objectness × best class probability.
    pub score: f32,
    /// Predicted class index.
    pub class: usize,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Decodes a single-image head output `(1, 5+C, S, S)` into detections
/// with `score >= conf_threshold`.
///
/// Channel order matches [`GridLoss`](rtoss_nn::loss::GridLoss):
/// `[tx, ty, tw, th, obj, cls...]`; boxes are decoded as
/// `cx = (gx + sigmoid(tx)) / S`, `w = anchor_w * exp(tw)`.
///
/// # Errors
///
/// Returns [`ModelsError::Config`] if the output shape is not
/// `(1, 5+C, S, S)` for some `C >= 1`.
pub fn decode_grid(
    pred: &Tensor,
    head: &HeadInfo,
    num_classes: usize,
    conf_threshold: f32,
) -> Result<Vec<Detection>, ModelsError> {
    if pred.rank() != 4 || pred.shape()[0] != 1 || pred.shape()[1] != 5 + num_classes {
        return Err(ModelsError::Config {
            msg: format!(
                "decode_grid expects (1,{},S,S), got {:?}",
                5 + num_classes,
                pred.shape()
            ),
        });
    }
    let s = pred.shape()[2];
    if pred.shape()[3] != s {
        return Err(ModelsError::Config {
            msg: format!("non-square grid {:?}", pred.shape()),
        });
    }
    let mut out = Vec::new();
    for gy in 0..s {
        for gx in 0..s {
            let obj = sigmoid(pred.at(&[0, 4, gy, gx]));
            if obj < conf_threshold {
                continue;
            }
            let (mut best_c, mut best_p) = (0usize, f32::NEG_INFINITY);
            for ci in 0..num_classes {
                let p = sigmoid(pred.at(&[0, 5 + ci, gy, gx]));
                if p > best_p {
                    best_p = p;
                    best_c = ci;
                }
            }
            let score = obj * best_p;
            if score < conf_threshold {
                continue;
            }
            let cx = (gx as f32 + sigmoid(pred.at(&[0, 0, gy, gx]))) / s as f32;
            let cy = (gy as f32 + sigmoid(pred.at(&[0, 1, gy, gx]))) / s as f32;
            let w = head.anchor.0 * pred.at(&[0, 2, gy, gx]).exp();
            let h = head.anchor.1 * pred.at(&[0, 3, gy, gx]).exp();
            out.push(Detection {
                cx,
                cy,
                w: w.min(1.0),
                h: h.min(1.0),
                score,
                class: best_c,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head() -> HeadInfo {
        HeadInfo {
            node: 0,
            grid: 4,
            anchor: (0.25, 0.25),
        }
    }

    #[test]
    fn decodes_a_confident_cell() {
        let c = 2usize;
        let mut pred = Tensor::full(&[1, 5 + c, 4, 4], -10.0); // everything off
                                                               // Light up cell (1, 2): tx=0 → 0.5 offset, obj high, class 1.
        pred.set(&[0, 0, 1, 2], 0.0);
        pred.set(&[0, 1, 1, 2], 0.0);
        pred.set(&[0, 2, 1, 2], 0.0); // w = anchor
        pred.set(&[0, 3, 1, 2], 0.0);
        pred.set(&[0, 4, 1, 2], 8.0);
        pred.set(&[0, 6, 1, 2], 8.0);
        let dets = decode_grid(&pred, &head(), c, 0.5).unwrap();
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert_eq!(d.class, 1);
        assert!((d.cx - 2.5 / 4.0).abs() < 1e-5);
        assert!((d.cy - 1.5 / 4.0).abs() < 1e-5);
        assert!((d.w - 0.25).abs() < 1e-5);
        assert!(d.score > 0.9);
    }

    #[test]
    fn silent_grid_yields_nothing() {
        let pred = Tensor::full(&[1, 7, 4, 4], -10.0);
        assert!(decode_grid(&pred, &head(), 2, 0.25).unwrap().is_empty());
    }

    #[test]
    fn threshold_filters() {
        let mut pred = Tensor::full(&[1, 7, 4, 4], -10.0);
        pred.set(&[0, 4, 0, 0], 0.1); // obj ≈ 0.52
        pred.set(&[0, 5, 0, 0], 0.1); // p ≈ 0.52 → score ≈ 0.27
        assert_eq!(decode_grid(&pred, &head(), 2, 0.2).unwrap().len(), 1);
        assert!(decode_grid(&pred, &head(), 2, 0.5).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(decode_grid(&Tensor::zeros(&[1, 6, 4, 4]), &head(), 2, 0.5).is_err());
        assert!(decode_grid(&Tensor::zeros(&[2, 7, 4, 4]), &head(), 2, 0.5).is_err());
        assert!(decode_grid(&Tensor::zeros(&[1, 7, 4, 3]), &head(), 2, 0.5).is_err());
    }
}
