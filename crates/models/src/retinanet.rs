//! RetinaNet (ResNet-50 + FPN + focal heads): full-scale architecture
//! and a scaled twin.
//!
//! The full-scale graph instantiates the backbone, the FPN (P3–P7), and
//! **one** head tower (class + box). RetinaNet shares head weights across
//! pyramid levels, so a single tower carries exactly the parameters the
//! paper counts; attaching it once keeps the graph and the spec in
//! agreement (DESIGN.md §4).

use crate::builder::DetectorBuilder;
use crate::{DetectorModel, HeadInfo, ModelsError};
use rtoss_nn::layers::ActivationKind;
use rtoss_nn::NodeId;

/// Builds full-scale RetinaNet (ResNet-50 backbone, FPN, shared focal
/// heads with `anchors_per_cell = 9`) for `num_classes` classes at
/// 640×640.
///
/// Parameter count lands within a few percent of the paper's 36.49 M
/// (Table 2); the conv-layer census reproduces §III's "56.14% 1×1".
///
/// # Errors
///
/// Returns an error if graph construction fails.
pub fn retinanet(num_classes: usize, seed: u64) -> Result<DetectorModel, ModelsError> {
    let anchors = 9;
    let fpn_ch = 256;
    let mut b = DetectorBuilder::new("RetinaNet", 3, 640, 640, ActivationKind::Relu, seed);
    let x = b.input();

    // ResNet-50 stem: 7×7/2 conv + 3×3/2 max-pool.
    let stem = b.conv_bn_act_pad("stem", x, 64, 7, 2, 3)?;
    let pool = b.maxpool("stem.pool", stem, 3, 2, 1)?;

    // Residual stages: (mid, out, blocks, first stride).
    let stage = |b: &mut DetectorBuilder,
                 name: &str,
                 from: NodeId,
                 mid: usize,
                 out: usize,
                 blocks: usize,
                 stride: usize|
     -> Result<NodeId, ModelsError> {
        let mut cur = b.resnet_bottleneck(&format!("{name}.0"), from, mid, out, stride)?;
        for i in 1..blocks {
            cur = b.resnet_bottleneck(&format!("{name}.{i}"), cur, mid, out, 1)?;
        }
        Ok(cur)
    };
    let c2 = stage(&mut b, "layer1", pool, 64, 256, 3, 1)?; // /4
    let c3 = stage(&mut b, "layer2", c2, 128, 512, 4, 2)?; // /8
    let c4 = stage(&mut b, "layer3", c3, 256, 1024, 6, 2)?; // /16
    let c5 = stage(&mut b, "layer4", c4, 512, 2048, 3, 2)?; // /32

    // FPN: lateral 1×1 projections + top-down sums + 3×3 output convs.
    let l5 = b.conv("fpn.lat5", c5, fpn_ch, 1, 1, 0)?;
    let l4 = b.conv("fpn.lat4", c4, fpn_ch, 1, 1, 0)?;
    let l3 = b.conv("fpn.lat3", c3, fpn_ch, 1, 1, 0)?;
    let up5 = b.upsample("fpn.up5", l5)?;
    let m4 = b.add("fpn.sum4", l4, up5)?;
    let up4 = b.upsample("fpn.up4", m4)?;
    let m3 = b.add("fpn.sum3", l3, up4)?;
    let p3 = b.conv("fpn.out3", m3, fpn_ch, 3, 1, 1)?;
    let _p4 = b.conv("fpn.out4", m4, fpn_ch, 3, 1, 1)?;
    let _p5 = b.conv("fpn.out5", l5, fpn_ch, 3, 1, 1)?;
    // P6 from C5, P7 from relu(P6) (relu folded into CBA-free conv here).
    let p6 = b.conv("fpn.p6", c5, fpn_ch, 3, 2, 1)?;
    let _p7 = b.conv("fpn.p7", p6, fpn_ch, 3, 2, 1)?;

    // Shared head towers, attached to P3 (weight sharing — counted once).
    let mut cls = p3;
    for i in 0..4 {
        cls = b.conv_bn_act(&format!("head.cls{i}"), cls, fpn_ch, 3, 1)?;
    }
    let cls_out = b.conv("head.cls_out", cls, anchors * num_classes, 3, 1, 1)?;
    let mut reg = p3;
    for i in 0..4 {
        reg = b.conv_bn_act(&format!("head.reg{i}"), reg, fpn_ch, 3, 1)?;
    }
    let reg_out = b.conv("head.reg_out", reg, anchors * 4, 3, 1, 1)?;

    let heads = vec![
        HeadInfo {
            node: cls_out,
            grid: b.dims(cls_out).1,
            anchor: (0.1, 0.1),
        },
        HeadInfo {
            node: reg_out,
            grid: b.dims(reg_out).1,
            anchor: (0.1, 0.1),
        },
    ];
    let (graph, spec) = b.finish(vec![cls_out, reg_out])?;
    Ok(DetectorModel {
        graph,
        spec,
        heads,
        num_classes,
    })
}

/// Builds the scaled RetinaNet twin: mini residual backbone, two-level
/// FPN, and a shared grid head (objectness folded in so the twin trains
/// with the same [`GridLoss`](rtoss_nn::loss::GridLoss) harness as the
/// YOLO twin — a documented simplification, DESIGN.md §2).
///
/// # Errors
///
/// Returns [`ModelsError`] if `base` is zero or graph construction fails.
pub fn retinanet_twin(
    base: usize,
    num_classes: usize,
    seed: u64,
) -> Result<DetectorModel, ModelsError> {
    if base == 0 {
        return Err(ModelsError::Config {
            msg: "twin base width must be non-zero".into(),
        });
    }
    let head_ch = 5 + num_classes;
    let mut b = DetectorBuilder::new("RetinaNet-twin", 3, 64, 64, ActivationKind::Relu, seed);
    let x = b.input();

    let stem = b.conv_bn_act("stem", x, base, 3, 2)?; // 32×32
    let r1 = b.resnet_bottleneck("layer1.0", stem, base / 2, 2 * base, 2)?; // 16×16
    let r2 = b.resnet_bottleneck("layer2.0", r1, base, 4 * base, 2)?; // 8×8

    // Two-level FPN.
    let l2 = b.conv("fpn.lat2", r2, 2 * base, 1, 1, 0)?; // 8×8
    let l1 = b.conv("fpn.lat1", r1, 2 * base, 1, 1, 0)?; // 16×16
    let up = b.upsample("fpn.up", l2)?;
    let m1 = b.add("fpn.sum1", l1, up)?;
    let p1 = b.conv("fpn.out1", m1, 2 * base, 3, 1, 1)?; // 16×16
    let p2 = b.conv("fpn.out2", l2, 2 * base, 3, 1, 1)?; // 8×8

    // Shared-format head towers (one per level in the twin).
    let mut t1 = p1;
    for i in 0..2 {
        t1 = b.conv_bn_act(&format!("head.f{i}"), t1, 2 * base, 3, 1)?;
    }
    let h_fine = b.conv("head.fine_out", t1, head_ch, 3, 1, 1)?;
    let mut t2 = p2;
    for i in 0..2 {
        t2 = b.conv_bn_act(&format!("head.c{i}"), t2, 2 * base, 3, 1)?;
    }
    let h_coarse = b.conv("head.coarse_out", t2, head_ch, 3, 1, 1)?;

    let heads = vec![
        HeadInfo {
            node: h_fine,
            grid: 16,
            anchor: (0.1, 0.12),
        },
        HeadInfo {
            node: h_coarse,
            grid: 8,
            anchor: (0.3, 0.35),
        },
    ];
    let (graph, spec) = b.finish(vec![h_fine, h_coarse])?;
    Ok(DetectorModel {
        graph,
        spec,
        heads,
        num_classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::Tensor;

    #[test]
    fn full_scale_parameter_count_matches_paper() {
        let m = retinanet(80, 1).unwrap();
        let p = m.spec.params_millions();
        // Paper Table 2: 36.49 M. Accept ±10%.
        assert!((p - 36.49).abs() / 36.49 < 0.10, "params {p} M");
    }

    #[test]
    fn full_scale_census_matches_paper() {
        let m = retinanet(80, 1).unwrap();
        let f = m.spec.census().layer_fraction_1x1();
        // Paper §III: 56.14% 1×1. Accept ±6 points.
        assert!((f - 0.5614).abs() < 0.06, "1x1 layer fraction {f}");
    }

    #[test]
    fn twin_forward_shapes() {
        let mut m = retinanet_twin(8, 3, 7).unwrap();
        let ys = m.graph.forward(&Tensor::zeros(&[1, 3, 64, 64])).unwrap();
        assert_eq!(ys.len(), 2);
        assert_eq!(ys[0].shape(), &[1, 8, 16, 16]);
        assert_eq!(ys[1].shape(), &[1, 8, 8, 8]);
    }

    #[test]
    fn twin_rejects_zero_width() {
        assert!(retinanet_twin(0, 3, 0).is_err());
    }
}
