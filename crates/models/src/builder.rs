//! Graph + spec co-builder for detector architectures.
//!
//! Every structural method adds nodes to an [`rtoss_nn::Graph`] *and*
//! records the matching [`ConvLayerSpec`], keeping the runnable model and
//! its analytic spec in lock-step by construction.

use crate::spec::{ConvLayerSpec, ModelSpec};
use rtoss_nn::layers::{
    Activation, ActivationKind, BatchNorm2d, Conv2d, MaxPool2d, UpsampleNearest2x,
};
use rtoss_nn::{Graph, NnError, NodeId};

/// Incrementally builds a detector: graph nodes, layer specs, and
/// per-node activation dimensions.
#[derive(Debug)]
pub struct DetectorBuilder {
    graph: Graph,
    spec: ModelSpec,
    dims: Vec<(usize, usize, usize)>, // (c, h, w) per node id
    act: ActivationKind,
    seed: u64,
    input: NodeId,
}

impl DetectorBuilder {
    /// Starts a detector taking `(in_ch, h, w)` input, using `act` after
    /// every conv+BN, with deterministic weight seeds derived from `seed`.
    pub fn new(
        name: &str,
        in_ch: usize,
        h: usize,
        w: usize,
        act: ActivationKind,
        seed: u64,
    ) -> Self {
        let mut graph = Graph::new();
        let input = graph.add_input("input");
        DetectorBuilder {
            graph,
            spec: ModelSpec::new(name, (h, w)),
            dims: vec![(in_ch, h, w)],
            act,
            seed,
            input,
        }
    }

    /// The input node id.
    pub fn input(&self) -> NodeId {
        self.input
    }

    /// `(channels, height, width)` of a node's output.
    pub fn dims(&self, id: NodeId) -> (usize, usize, usize) {
        self.dims[id]
    }

    fn next_seed(&mut self) -> u64 {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.seed
    }

    fn record(&mut self, id: NodeId, c: usize, h: usize, w: usize) -> NodeId {
        debug_assert_eq!(id, self.dims.len());
        self.dims.push((c, h, w));
        id
    }

    /// Bare convolution (no BN, no activation) — used for head outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the kernel does not fit.
    pub fn conv(
        &mut self,
        name: &str,
        from: NodeId,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, NnError> {
        let (c, h, w) = self.dims[from];
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        let seed = self.next_seed();
        let id = self.graph.add_layer(
            name,
            Box::new(Conv2d::new(c, out_ch, k, stride, pad, seed)),
            from,
        )?;
        self.spec.layers.push(ConvLayerSpec {
            name: name.to_string(),
            in_ch: c,
            out_ch,
            kernel: k,
            stride,
            out_h: oh,
            out_w: ow,
        });
        self.spec.extra_params += out_ch as u64; // bias
        Ok(self.record(id, out_ch, oh, ow))
    }

    /// Convolution + batch-norm + the builder's activation (CBA block —
    /// YOLOv5's `Conv`, ResNet's conv-bn-relu).
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the kernel does not fit.
    pub fn conv_bn_act(
        &mut self,
        name: &str,
        from: NodeId,
        out_ch: usize,
        k: usize,
        stride: usize,
    ) -> Result<NodeId, NnError> {
        self.conv_bn_act_pad(name, from, out_ch, k, stride, k / 2)
    }

    /// [`DetectorBuilder::conv_bn_act`] with explicit padding (needed by
    /// YOLOv5's stem: 6×6, stride 2, pad 2).
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the kernel does not fit.
    pub fn conv_bn_act_pad(
        &mut self,
        name: &str,
        from: NodeId,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, NnError> {
        let conv = self.conv(&format!("{name}.conv"), from, out_ch, k, stride, pad)?;
        let (c, h, w) = self.dims[conv];
        let bn =
            self.graph
                .add_layer(&format!("{name}.bn"), Box::new(BatchNorm2d::new(c)), conv)?;
        self.spec.extra_params += 2 * c as u64; // gamma + beta
        self.record(bn, c, h, w);
        let act = self.graph.add_layer(
            &format!("{name}.act"),
            Box::new(Activation::new(self.act)),
            bn,
        )?;
        Ok(self.record(act, c, h, w))
    }

    /// Max-pool node.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown.
    pub fn maxpool(
        &mut self,
        name: &str,
        from: NodeId,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, NnError> {
        let (c, h, w) = self.dims[from];
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        let id = self
            .graph
            .add_layer(name, Box::new(MaxPool2d::new(k, stride, pad)), from)?;
        Ok(self.record(id, c, oh, ow))
    }

    /// Nearest-neighbour 2× upsample node.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown.
    pub fn upsample(&mut self, name: &str, from: NodeId) -> Result<NodeId, NnError> {
        let (c, h, w) = self.dims[from];
        let id = self
            .graph
            .add_layer(name, Box::new(UpsampleNearest2x::new()), from)?;
        Ok(self.record(id, c, 2 * h, 2 * w))
    }

    /// Channel concatenation node.
    ///
    /// # Errors
    ///
    /// Returns an error if inputs are unknown or fewer than two.
    pub fn concat(&mut self, name: &str, inputs: Vec<NodeId>) -> Result<NodeId, NnError> {
        let (_, h, w) = self.dims[inputs[0]];
        let c: usize = inputs.iter().map(|&i| self.dims[i].0).sum();
        let id = self.graph.add_concat(name, inputs)?;
        Ok(self.record(id, c, h, w))
    }

    /// Residual addition node.
    ///
    /// # Errors
    ///
    /// Returns an error if inputs are unknown.
    pub fn add(&mut self, name: &str, a: NodeId, b: NodeId) -> Result<NodeId, NnError> {
        let (c, h, w) = self.dims[a];
        let id = self.graph.add_add(name, a, b)?;
        Ok(self.record(id, c, h, w))
    }

    /// YOLOv5 bottleneck: 1×1 CBA to `hidden`, 3×3 CBA back to `out`,
    /// optional residual.
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors.
    pub fn bottleneck(
        &mut self,
        name: &str,
        from: NodeId,
        hidden: usize,
        out: usize,
        shortcut: bool,
    ) -> Result<NodeId, NnError> {
        let cv1 = self.conv_bn_act(&format!("{name}.cv1"), from, hidden, 1, 1)?;
        let cv2 = self.conv_bn_act(&format!("{name}.cv2"), cv1, out, 3, 1)?;
        if shortcut && self.dims[from].0 == out {
            self.add(&format!("{name}.add"), from, cv2)
        } else {
            Ok(cv2)
        }
    }

    /// YOLOv5 C3 block (CSP bottleneck with 3 convolutions).
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors.
    pub fn c3(
        &mut self,
        name: &str,
        from: NodeId,
        out: usize,
        n: usize,
        shortcut: bool,
    ) -> Result<NodeId, NnError> {
        let hidden = out / 2;
        let cv1 = self.conv_bn_act(&format!("{name}.cv1"), from, hidden, 1, 1)?;
        let cv2 = self.conv_bn_act(&format!("{name}.cv2"), from, hidden, 1, 1)?;
        let mut m = cv1;
        for i in 0..n {
            m = self.bottleneck(&format!("{name}.m{i}"), m, hidden, hidden, shortcut)?;
        }
        let cat = self.concat(&format!("{name}.cat"), vec![m, cv2])?;
        self.conv_bn_act(&format!("{name}.cv3"), cat, out, 1, 1)
    }

    /// YOLOv5 SPPF block (three chained 5×5 max-pools + concat).
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors.
    pub fn sppf(&mut self, name: &str, from: NodeId, out: usize) -> Result<NodeId, NnError> {
        let hidden = self.dims[from].0 / 2;
        let cv1 = self.conv_bn_act(&format!("{name}.cv1"), from, hidden, 1, 1)?;
        let p1 = self.maxpool(&format!("{name}.p1"), cv1, 5, 1, 2)?;
        let p2 = self.maxpool(&format!("{name}.p2"), p1, 5, 1, 2)?;
        let p3 = self.maxpool(&format!("{name}.p3"), p2, 5, 1, 2)?;
        let cat = self.concat(&format!("{name}.cat"), vec![cv1, p1, p2, p3])?;
        self.conv_bn_act(&format!("{name}.cv2"), cat, out, 1, 1)
    }

    /// ResNet bottleneck (1×1 reduce, 3×3, 1×1 expand, residual), with an
    /// optional 1×1 downsample projection on the shortcut.
    ///
    /// # Errors
    ///
    /// Propagates graph construction errors.
    pub fn resnet_bottleneck(
        &mut self,
        name: &str,
        from: NodeId,
        mid: usize,
        out: usize,
        stride: usize,
    ) -> Result<NodeId, NnError> {
        let cv1 = self.conv_bn_act(&format!("{name}.cv1"), from, mid, 1, 1)?;
        let cv2 = self.conv_bn_act(&format!("{name}.cv2"), cv1, mid, 3, stride)?;
        let cv3 = self.conv_bn_act(&format!("{name}.cv3"), cv2, out, 1, 1)?;
        let shortcut = if self.dims[from].0 != out || stride != 1 {
            self.conv_bn_act(&format!("{name}.down"), from, out, 1, stride)?
        } else {
            from
        };
        self.add(&format!("{name}.add"), cv3, shortcut)
    }

    /// Declares outputs and finishes, returning `(graph, spec)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `outputs` is empty or contains unknown ids.
    pub fn finish(mut self, outputs: Vec<NodeId>) -> Result<(Graph, ModelSpec), NnError> {
        self.graph.set_outputs(outputs)?;
        Ok((self.graph, self.spec))
    }

    /// Read-only access to the spec built so far.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Adds non-conv parameters (e.g. transformer weights) to the spec.
    pub fn add_extra_params(&mut self, params: u64, macs: u64) {
        self.spec.extra_params += params;
        self.spec.extra_macs += macs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::Tensor;

    #[test]
    fn cba_tracks_dims_and_spec() {
        let mut b = DetectorBuilder::new("t", 3, 32, 32, ActivationKind::Silu, 1);
        let x = b.input();
        let c1 = b.conv_bn_act("c1", x, 8, 3, 2).unwrap();
        assert_eq!(b.dims(c1), (8, 16, 16));
        assert_eq!(b.spec().layers.len(), 1);
        assert_eq!(b.spec().layers[0].out_h, 16);
        // bias + gamma + beta
        assert_eq!(b.spec().extra_params, 8 + 16);
    }

    #[test]
    fn c3_block_runs_forward() {
        let mut b = DetectorBuilder::new("t", 3, 16, 16, ActivationKind::Silu, 2);
        let x = b.input();
        let c1 = b.conv_bn_act("c1", x, 8, 3, 1).unwrap();
        let c3 = b.c3("c3", c1, 8, 1, true).unwrap();
        assert_eq!(b.dims(c3), (8, 16, 16));
        let (mut g, spec) = b.finish(vec![c3]).unwrap();
        // C3(n=1) adds 5 convs: cv1, cv2, m0.cv1, m0.cv2, cv3.
        assert_eq!(spec.layers.len(), 6);
        let y = g.forward(&Tensor::zeros(&[1, 3, 16, 16])).unwrap();
        assert_eq!(y[0].shape(), &[1, 8, 16, 16]);
    }

    #[test]
    fn sppf_preserves_dims() {
        let mut b = DetectorBuilder::new("t", 4, 8, 8, ActivationKind::Silu, 3);
        let x = b.input();
        let s = b.sppf("sppf", x, 4).unwrap();
        assert_eq!(b.dims(s), (4, 8, 8));
        let (mut g, _) = b.finish(vec![s]).unwrap();
        let y = g.forward(&Tensor::zeros(&[1, 4, 8, 8])).unwrap();
        assert_eq!(y[0].shape(), &[1, 4, 8, 8]);
    }

    #[test]
    fn resnet_bottleneck_with_downsample() {
        let mut b = DetectorBuilder::new("t", 8, 16, 16, ActivationKind::Relu, 4);
        let x = b.input();
        let r = b.resnet_bottleneck("r1", x, 4, 16, 2).unwrap();
        assert_eq!(b.dims(r), (16, 8, 8));
        let (mut g, _) = b.finish(vec![r]).unwrap();
        let y = g.forward(&Tensor::zeros(&[2, 8, 16, 16])).unwrap();
        assert_eq!(y[0].shape(), &[2, 16, 8, 8]);
    }

    #[test]
    fn deterministic_weights_per_seed() {
        let build = |seed| {
            let mut b = DetectorBuilder::new("t", 1, 8, 8, ActivationKind::Relu, seed);
            let x = b.input();
            let c = b.conv_bn_act("c", x, 4, 3, 1).unwrap();
            b.finish(vec![c]).unwrap().0
        };
        let g1 = build(7);
        let g2 = build(7);
        let g3 = build(8);
        let w1 = g1.conv(g1.conv_ids()[0]).unwrap().weight().value.clone();
        let w2 = g2.conv(g2.conv_ids()[0]).unwrap().weight().value.clone();
        let w3 = g3.conv(g3.conv_ids()[0]).unwrap().weight().value.clone();
        assert_eq!(w1, w2);
        assert_ne!(w1, w3);
    }
}
