//! Architecture specifications: per-layer kernel census, parameter and
//! MAC accounting.
//!
//! §III of the paper motivates the 1×1 transformation with a kernel-size
//! census: "YOLOv5, RetinaNet and DETR consist of 68.42%, 56.14% and
//! 63.46% of small 1×1 kernels". [`ModelSpec::census`] reproduces that
//! census (at convolution-layer granularity) from our layer-by-layer
//! specs, and parameter/MAC totals feed the `rtoss-hw` device models.

/// Specification of one convolution layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayerSpec {
    /// Layer name (mirrors the graph node name when a graph exists).
    pub name: String,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Output spatial height.
    pub out_h: usize,
    /// Output spatial width.
    pub out_w: usize,
}

impl ConvLayerSpec {
    /// Weight parameters (`O·I·k·k`), excluding bias.
    pub fn weight_params(&self) -> u64 {
        (self.out_ch * self.in_ch * self.kernel * self.kernel) as u64
    }

    /// Number of 2-D kernels (`O·I`).
    pub fn kernel_count(&self) -> u64 {
        (self.out_ch * self.in_ch) as u64
    }

    /// Multiply–accumulate operations for one forward pass.
    pub fn macs(&self) -> u64 {
        self.weight_params() * (self.out_h * self.out_w) as u64
    }

    /// Bytes of weight traffic (dense f32).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_params() * 4
    }
}

/// Kernel-size census of a model, at two granularities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCensus {
    /// Number of convolution layers whose kernel is 1×1.
    pub layers_1x1: usize,
    /// Number of convolution layers whose kernel is 3×3.
    pub layers_3x3: usize,
    /// Number of convolution layers with any other kernel size.
    pub layers_other: usize,
    /// Number of 2-D kernels (`O·I` slices) that are 1×1.
    pub kernels_1x1: u64,
    /// Number of 2-D kernels that are 3×3.
    pub kernels_3x3: u64,
    /// Number of 2-D kernels of any other size.
    pub kernels_other: u64,
}

impl KernelCensus {
    /// Fraction of conv layers that are 1×1 (the paper's §III metric).
    pub fn layer_fraction_1x1(&self) -> f64 {
        let total = self.layers_1x1 + self.layers_3x3 + self.layers_other;
        if total == 0 {
            0.0
        } else {
            self.layers_1x1 as f64 / total as f64
        }
    }

    /// Fraction of 2-D kernels that are 1×1.
    pub fn kernel_fraction_1x1(&self) -> f64 {
        let total = self.kernels_1x1 + self.kernels_3x3 + self.kernels_other;
        if total == 0 {
            0.0
        } else {
            self.kernels_1x1 as f64 / total as f64
        }
    }
}

/// A full model specification: ordered conv layers plus non-conv
/// parameter overhead (batch-norm scales, biases, linear heads, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Model name (e.g. `"YOLOv5s"`).
    pub name: String,
    /// Input `(height, width)` the spatial extents were computed for.
    pub input_hw: (usize, usize),
    /// Convolution layers, in topological order.
    pub layers: Vec<ConvLayerSpec>,
    /// Parameters not captured by conv weights (BN, biases, linears).
    pub extra_params: u64,
    /// MACs not captured by conv layers (e.g. transformer attention).
    pub extra_macs: u64,
}

impl ModelSpec {
    /// Creates an empty spec.
    pub fn new(name: &str, input_hw: (usize, usize)) -> Self {
        ModelSpec {
            name: name.to_string(),
            input_hw,
            layers: Vec::new(),
            extra_params: 0,
            extra_macs: 0,
        }
    }

    /// Total parameter count (conv weights + extras).
    pub fn total_params(&self) -> u64 {
        self.layers
            .iter()
            .map(ConvLayerSpec::weight_params)
            .sum::<u64>()
            + self.extra_params
    }

    /// Total parameter count in millions.
    pub fn params_millions(&self) -> f64 {
        self.total_params() as f64 / 1e6
    }

    /// Total MACs for one forward pass.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayerSpec::macs).sum::<u64>() + self.extra_macs
    }

    /// Total dense weight bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(ConvLayerSpec::weight_bytes)
            .sum::<u64>()
            + self.extra_params * 4
    }

    /// Number of convolution layers.
    pub fn conv_layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Computes the kernel-size census.
    pub fn census(&self) -> KernelCensus {
        let mut c = KernelCensus {
            layers_1x1: 0,
            layers_3x3: 0,
            layers_other: 0,
            kernels_1x1: 0,
            kernels_3x3: 0,
            kernels_other: 0,
        };
        for l in &self.layers {
            match l.kernel {
                1 => {
                    c.layers_1x1 += 1;
                    c.kernels_1x1 += l.kernel_count();
                }
                3 => {
                    c.layers_3x3 += 1;
                    c.kernels_3x3 += l.kernel_count();
                }
                _ => {
                    c.layers_other += 1;
                    c.kernels_other += l.kernel_count();
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(k: usize, i: usize, o: usize) -> ConvLayerSpec {
        ConvLayerSpec {
            name: format!("l{k}"),
            in_ch: i,
            out_ch: o,
            kernel: k,
            stride: 1,
            out_h: 10,
            out_w: 10,
        }
    }

    #[test]
    fn layer_accounting() {
        let l = layer(3, 4, 8);
        assert_eq!(l.weight_params(), 4 * 8 * 9);
        assert_eq!(l.kernel_count(), 32);
        assert_eq!(l.macs(), 4 * 8 * 9 * 100);
        assert_eq!(l.weight_bytes(), 4 * 8 * 9 * 4);
    }

    #[test]
    fn census_fractions() {
        let mut spec = ModelSpec::new("toy", (64, 64));
        spec.layers.push(layer(1, 4, 4));
        spec.layers.push(layer(1, 4, 4));
        spec.layers.push(layer(3, 4, 4));
        spec.layers.push(layer(7, 3, 4));
        let c = spec.census();
        assert_eq!(c.layers_1x1, 2);
        assert_eq!(c.layers_3x3, 1);
        assert_eq!(c.layers_other, 1);
        assert!((c.layer_fraction_1x1() - 0.5).abs() < 1e-12);
        assert_eq!(c.kernels_1x1, 32);
    }

    #[test]
    fn totals_include_extras() {
        let mut spec = ModelSpec::new("toy", (64, 64));
        spec.layers.push(layer(3, 2, 2));
        spec.extra_params = 100;
        assert_eq!(spec.total_params(), 36 + 100);
        assert_eq!(spec.total_weight_bytes(), 36 * 4 + 400);
    }

    #[test]
    fn empty_census_is_zero() {
        let spec = ModelSpec::new("empty", (1, 1));
        assert_eq!(spec.census().layer_fraction_1x1(), 0.0);
        assert_eq!(spec.census().kernel_fraction_1x1(), 0.0);
    }
}
