//! YOLOv5s: full-scale architecture (v6.0 layout) and a scaled twin.
//!
//! The full-scale build carries real (randomly initialised) weights so
//! the pruning framework measures sparsity on the true tensor shapes; it
//! is never run forward at 640×640 on CPU. The twin shares the topology
//! (stem → C3 backbone → SPPF → PANet-style neck → grid heads) at reduced
//! width/resolution and trains end-to-end on synthetic KITTI scenes.

use crate::builder::DetectorBuilder;
use crate::{DetectorModel, HeadInfo, ModelsError};
use rtoss_nn::layers::ActivationKind;

/// A YOLOv5 family variant: the depth/width multiples Ultralytics uses
/// to scale the same topology from nano to large.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Yolov5Variant {
    /// Variant letter ("n", "s", "m", "l").
    pub name: &'static str,
    /// Depth multiple (scales C3 repeat counts).
    pub depth: f64,
    /// Width multiple (scales channel counts).
    pub width: f64,
}

impl Yolov5Variant {
    /// YOLOv5n (nano): ~1.9 M params.
    pub fn n() -> Self {
        Yolov5Variant {
            name: "n",
            depth: 0.33,
            width: 0.25,
        }
    }

    /// YOLOv5s (small): ~7.2 M params — the paper's pruning target.
    pub fn s() -> Self {
        Yolov5Variant {
            name: "s",
            depth: 0.33,
            width: 0.50,
        }
    }

    /// YOLOv5m (medium): ~21 M params.
    pub fn m() -> Self {
        Yolov5Variant {
            name: "m",
            depth: 0.67,
            width: 0.75,
        }
    }

    /// YOLOv5l (large): ~46 M params.
    pub fn l() -> Self {
        Yolov5Variant {
            name: "l",
            depth: 1.0,
            width: 1.0,
        }
    }

    /// Channel count after the width multiple (rounded to a multiple of
    /// 8, Ultralytics' `make_divisible`).
    fn ch(&self, base: usize) -> usize {
        let scaled = (base as f64 * self.width / 8.0).ceil() as usize * 8;
        scaled.max(8)
    }

    /// C3 repeat count after the depth multiple.
    fn reps(&self, base: usize) -> usize {
        ((base as f64 * self.depth).round() as usize).max(1)
    }
}

/// Builds any full-scale YOLOv5 family member (v6.0: 6×6 stem, C3
/// blocks, SPPF, PANet neck, three 1×1 detect heads) for `num_classes`
/// classes at 640×640.
///
/// # Errors
///
/// Returns an error if graph construction fails (it cannot for the
/// hard-coded topology unless memory is exhausted).
pub fn yolov5(
    variant: Yolov5Variant,
    num_classes: usize,
    seed: u64,
) -> Result<DetectorModel, ModelsError> {
    let anchors_per_scale = 3;
    let head_ch = anchors_per_scale * (5 + num_classes);
    let name = format!("YOLOv5{}", variant.name);
    let mut b = DetectorBuilder::new(&name, 3, 640, 640, ActivationKind::Silu, seed);
    let x = b.input();
    let v = &variant;

    // Backbone (base widths are YOLOv5l's; the multiples scale them).
    let p1 = b.conv_bn_act_pad("b0", x, v.ch(64), 6, 2, 2)?; // P1/2
    let p2 = b.conv_bn_act("b1", p1, v.ch(128), 3, 2)?; // P2/4
    let c2 = b.c3("b2", p2, v.ch(128), v.reps(3), true)?;
    let p3 = b.conv_bn_act("b3", c2, v.ch(256), 3, 2)?; // P3/8
    let c4 = b.c3("b4", p3, v.ch(256), v.reps(6), true)?;
    let p4 = b.conv_bn_act("b5", c4, v.ch(512), 3, 2)?; // P4/16
    let c6 = b.c3("b6", p4, v.ch(512), v.reps(9), true)?;
    let p5 = b.conv_bn_act("b7", c6, v.ch(1024), 3, 2)?; // P5/32
    let c8 = b.c3("b8", p5, v.ch(1024), v.reps(3), true)?;
    let spp = b.sppf("b9", c8, v.ch(1024))?;

    // PANet neck.
    let n10 = b.conv_bn_act("n10", spp, v.ch(512), 1, 1)?;
    let up11 = b.upsample("n11", n10)?;
    let cat12 = b.concat("n12", vec![up11, c6])?;
    let c13 = b.c3("n13", cat12, v.ch(512), v.reps(3), false)?;
    let n14 = b.conv_bn_act("n14", c13, v.ch(256), 1, 1)?;
    let up15 = b.upsample("n15", n14)?;
    let cat16 = b.concat("n16", vec![up15, c4])?;
    let c17 = b.c3("n17", cat16, v.ch(256), v.reps(3), false)?; // P3 out
    let n18 = b.conv_bn_act("n18", c17, v.ch(256), 3, 2)?;
    let cat19 = b.concat("n19", vec![n18, n14])?;
    let c20 = b.c3("n20", cat19, v.ch(512), v.reps(3), false)?; // P4 out
    let n21 = b.conv_bn_act("n21", c20, v.ch(512), 3, 2)?;
    let cat22 = b.concat("n22", vec![n21, n10])?;
    let c23 = b.c3("n23", cat22, v.ch(1024), v.reps(3), false)?; // P5 out

    // Detect heads (1×1 convs).
    let h_p3 = b.conv("detect.p3", c17, head_ch, 1, 1, 0)?;
    let h_p4 = b.conv("detect.p4", c20, head_ch, 1, 1, 0)?;
    let h_p5 = b.conv("detect.p5", c23, head_ch, 1, 1, 0)?;

    let heads = vec![
        HeadInfo {
            node: h_p3,
            grid: b.dims(h_p3).1,
            anchor: (0.06, 0.08),
        },
        HeadInfo {
            node: h_p4,
            grid: b.dims(h_p4).1,
            anchor: (0.15, 0.2),
        },
        HeadInfo {
            node: h_p5,
            grid: b.dims(h_p5).1,
            anchor: (0.4, 0.5),
        },
    ];
    let (graph, spec) = b.finish(vec![h_p3, h_p4, h_p5])?;
    Ok(DetectorModel {
        graph,
        spec,
        heads,
        num_classes,
    })
}

/// Builds the full-scale YOLOv5s — the paper's primary pruning target.
///
/// Parameter count lands within a few percent of the paper's 7.02 M
/// (Table 2); the conv-layer census reproduces §III's "68.42% 1×1"
/// claim (see `census` tests).
///
/// # Errors
///
/// Returns an error if graph construction fails.
pub fn yolov5s(num_classes: usize, seed: u64) -> Result<DetectorModel, ModelsError> {
    yolov5(Yolov5Variant::s(), num_classes, seed)
}

/// Builds the scaled YOLOv5s twin: same topology family (stem, C3,
/// SPPF-free neck with one upsample/concat), width `base` channels,
/// 64×64 input, two grid heads (strides 8 and 4).
///
/// This is the model that actually trains on CPU for the empirical mAP
/// tier (DESIGN.md §2).
///
/// # Errors
///
/// Returns [`ModelsError`] if `base` is odd or zero (C3 halves widths) or
/// graph construction fails.
pub fn yolov5s_twin(
    base: usize,
    num_classes: usize,
    seed: u64,
) -> Result<DetectorModel, ModelsError> {
    if base == 0 || !base.is_multiple_of(2) {
        return Err(ModelsError::Config {
            msg: format!("twin base width must be even and non-zero, got {base}"),
        });
    }
    let head_ch = 5 + num_classes;
    let mut b = DetectorBuilder::new("YOLOv5s-twin", 3, 64, 64, ActivationKind::Silu, seed);
    let x = b.input();

    // Backbone: /2, /4 with C3, /8 with C3.
    let s1 = b.conv_bn_act("b0", x, base, 3, 2)?; // 32×32
    let s2 = b.conv_bn_act("b1", s1, 2 * base, 3, 2)?; // 16×16
    let c2 = b.c3("b2", s2, 2 * base, 1, true)?;
    let s3 = b.conv_bn_act("b3", c2, 4 * base, 3, 2)?; // 8×8
    let c4 = b.c3("b4", s3, 4 * base, 1, true)?;
    let spp = b.sppf("b5", c4, 4 * base)?;

    // Neck: top-down to /4, bottom-up back to /8.
    let n1 = b.conv_bn_act("n1", spp, 2 * base, 1, 1)?;
    let up = b.upsample("n2", n1)?; // 16×16
    let cat = b.concat("n3", vec![up, c2])?;
    let c5 = b.c3("n4", cat, 2 * base, 1, false)?; // P2 16×16

    let d1 = b.conv_bn_act("n5", c5, 2 * base, 3, 2)?; // 8×8
    let cat2 = b.concat("n6", vec![d1, n1])?;
    let c6 = b.c3("n7", cat2, 4 * base, 1, false)?; // P3 8×8

    // Heads.
    let h_fine = b.conv("detect.fine", c5, head_ch, 1, 1, 0)?; // grid 16
    let h_coarse = b.conv("detect.coarse", c6, head_ch, 1, 1, 0)?; // grid 8

    let heads = vec![
        HeadInfo {
            node: h_fine,
            grid: 16,
            anchor: (0.1, 0.12),
        },
        HeadInfo {
            node: h_coarse,
            grid: 8,
            anchor: (0.3, 0.35),
        },
    ];
    let (graph, spec) = b.finish(vec![h_fine, h_coarse])?;
    Ok(DetectorModel {
        graph,
        spec,
        heads,
        num_classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_tensor::Tensor;

    #[test]
    fn full_scale_parameter_count_matches_paper() {
        let m = yolov5s(80, 1).unwrap();
        let p = m.spec.params_millions();
        // Paper Table 2: 7.02 M. Accept ±10%.
        assert!((p - 7.02).abs() / 7.02 < 0.10, "params {p} M");
    }

    #[test]
    fn full_scale_census_matches_paper() {
        let m = yolov5s(80, 1).unwrap();
        let c = m.spec.census();
        let f = c.layer_fraction_1x1();
        // Paper §III: 68.42% of kernels are 1×1. Accept ±6 points.
        assert!((f - 0.6842).abs() < 0.06, "1x1 layer fraction {f}");
    }

    #[test]
    fn full_scale_heads_have_expected_grids() {
        let m = yolov5s(80, 2).unwrap();
        let grids: Vec<usize> = m.heads.iter().map(|h| h.grid).collect();
        assert_eq!(grids, vec![80, 40, 20]); // 640/8, 640/16, 640/32
    }

    #[test]
    fn twin_forward_shapes() {
        let mut m = yolov5s_twin(8, 3, 42).unwrap();
        let ys = m.graph.forward(&Tensor::zeros(&[1, 3, 64, 64])).unwrap();
        assert_eq!(ys.len(), 2);
        assert_eq!(ys[0].shape(), &[1, 8, 16, 16]);
        assert_eq!(ys[1].shape(), &[1, 8, 8, 8]);
    }

    #[test]
    fn twin_rejects_odd_width() {
        assert!(yolov5s_twin(7, 3, 0).is_err());
        assert!(yolov5s_twin(0, 3, 0).is_err());
    }

    #[test]
    fn family_parameter_counts_match_ultralytics() {
        // Published (conv-dominated) param counts: n 1.9M, s 7.2M,
        // m 21.2M, l 46.5M. Accept ±12% (our heads/BN accounting).
        for (variant, expect) in [
            (Yolov5Variant::n(), 1.9),
            (Yolov5Variant::s(), 7.2),
            (Yolov5Variant::m(), 21.2),
            (Yolov5Variant::l(), 46.5),
        ] {
            let m = yolov5(variant, 80, 1).unwrap();
            let p = m.spec.params_millions();
            assert!(
                (p - expect).abs() / expect < 0.12,
                "YOLOv5{}: {p} M vs {expect} M",
                variant.name
            );
        }
    }

    #[test]
    fn family_is_monotone_in_size_and_macs() {
        let sizes: Vec<(f64, u64)> = [
            Yolov5Variant::n(),
            Yolov5Variant::s(),
            Yolov5Variant::m(),
            Yolov5Variant::l(),
        ]
        .into_iter()
        .map(|v| {
            let m = yolov5(v, 80, 1).unwrap();
            (m.spec.params_millions(), m.spec.total_macs())
        })
        .collect();
        for w in sizes.windows(2) {
            assert!(w[1].0 > w[0].0 && w[1].1 > w[0].1, "{sizes:?}");
        }
    }

    #[test]
    fn twin_census_close_to_full_scale() {
        // The twin preserves the topology, so its layer census should be
        // close to the full model's (same blocks, same ratios).
        let full = yolov5s(80, 1).unwrap().spec.census().layer_fraction_1x1();
        let twin = yolov5s_twin(8, 3, 1)
            .unwrap()
            .spec
            .census()
            .layer_fraction_1x1();
        assert!((full - twin).abs() < 0.15, "full {full} twin {twin}");
    }
}
