//! End-to-end tracing through the serving stack: a traced server run
//! must produce the full span hierarchy the observability layer
//! promises — enqueue markers, per-request queue-wait async intervals,
//! batch phases, and per-layer spans nested inside `execute`.

use rtoss_core::{EntryPattern, Pruner, RTossPruner};
use rtoss_obs as obs;
use rtoss_serve::{ServeConfig, Server};
use rtoss_sparse::SparseModel;
use rtoss_tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

fn engine() -> SparseModel {
    let mut model = rtoss_models::yolov5s_twin(4, 2, 11).expect("twin builds");
    RTossPruner::new(EntryPattern::Two)
        .prune_graph(&mut model.graph)
        .expect("prunes");
    SparseModel::compile(&model.graph).expect("compiles")
}

#[test]
fn traced_server_run_emits_nested_phase_and_layer_spans() {
    obs::set_enabled(true);
    obs::set_sample_every(1);
    obs::reset();

    let server = Server::start(
        Arc::new(engine()),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            batch_timeout: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..3)
        .map(|_| server.submit(Tensor::zeros(&[1, 3, 32, 32]), None).unwrap())
        .collect();
    for t in tickets {
        t.wait().expect("request served");
    }
    server.shutdown();
    obs::set_enabled(false);
    let trace = obs::drain();

    assert_eq!(trace.dropped, 0);
    let count = |name: &str| trace.events.iter().filter(|e| e.name == name).count();
    assert_eq!(count("enqueue"), 3, "one enqueue marker per submit");
    let queue_waits: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "queue_wait")
        .collect();
    assert_eq!(queue_waits.len(), 3, "one queue-wait interval per request");
    let mut ids: Vec<u64> = queue_waits
        .iter()
        .map(|e| match e.kind {
            obs::EventKind::Async { id } => id,
            other => panic!("queue_wait must be async, got {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3, "queue waits carry distinct request ids");

    let executes: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.name == "execute" && e.kind == obs::EventKind::Span)
        .collect();
    assert!(!executes.is_empty(), "at least one execute span");
    assert!(count("batch_assembly") >= 1);
    assert!(count("respond") >= 1);
    assert!(count("batch") >= 1);

    // Every execute span contains at least one layer span on its own
    // thread (the invariant rtoss-verify checks as RV042).
    for exec in &executes {
        let exec_end = exec.ts_ns + exec.dur_ns;
        let nested_layers = trace
            .events
            .iter()
            .filter(|e| {
                e.name.starts_with("layer:")
                    && e.tid == exec.tid
                    && e.ts_ns >= exec.ts_ns
                    && e.ts_ns + e.dur_ns <= exec_end
            })
            .count();
        assert!(
            nested_layers > 0,
            "execute span [{}..{exec_end}] on tid {} has no nested layer spans",
            exec.ts_ns,
            exec.tid
        );
    }

    // Layer spans carry the executor tags the profile report relies on.
    let conv_layer = trace
        .events
        .iter()
        .find(|e| {
            e.name.starts_with("layer:")
                && e.args
                    .iter()
                    .any(|(k, v)| *k == "kind" && *v == obs::ArgValue::Static("conv"))
        })
        .expect("at least one conv layer span");
    for key in ["oc", "ic", "k", "nnz", "threads"] {
        assert!(
            conv_layer.args.iter().any(|(k, _)| *k == key),
            "conv layer span missing arg {key:?}"
        );
    }
    assert!(conv_layer
        .args
        .iter()
        .any(|(k, v)| *k == "format" && *v == obs::ArgValue::Static("pattern")));

    // The exports stay well-formed on a real trace.
    let json = trace.to_chrome_json();
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"b\""));
    let profile = obs::Profile::from_trace(&trace);
    assert!(!profile.with_prefix("layer:").is_empty());
}
