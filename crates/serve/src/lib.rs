//! Deadline-aware, micro-batched inference serving over the R-TOSS
//! pattern-sparse runtime.
//!
//! The paper's pitch is *real-time* object detection: latency targets on
//! embedded GPUs. This crate supplies the missing systems half of that
//! story — a std-only (threads + mutexes, no async runtime) serving
//! stack that turns a compiled [`SparseModel`](rtoss_sparse::SparseModel)
//! into a server with:
//!
//! - a **bounded MPMC queue** with three backpressure policies
//!   ([`Block`](BackpressurePolicy::Block),
//!   [`RejectWhenFull`](BackpressurePolicy::RejectWhenFull),
//!   [`ShedExpired`](BackpressurePolicy::ShedExpired));
//! - a **micro-batching worker pool**: workers pop runs of
//!   shape-compatible requests, stack them along the batch dimension,
//!   and execute one forward pass — bit-identical to per-request
//!   execution (`SparseModel::forward_batch` guarantees it);
//! - **panic isolation**: a panicking model fails only its own batch,
//!   is counted, and the worker keeps serving;
//! - **lock-striped metrics** with log-bucket latency histograms per
//!   serving phase (queue-wait / batch-assembly / execute) and a
//!   serde-serializable [`MetricsSnapshot`];
//! - a modelled **energy hook** charging each request its share of a
//!   micro-batched pass on an [`rtoss_hw`] device model;
//! - a seeded **open-loop load generator** (pure Poisson and bursty
//!   on/off-modulated arrivals) for reproducible overload experiments
//!   ([`loadgen`]).
//!
//! # Example
//!
//! ```
//! use rtoss_serve::{BackpressurePolicy, ServeConfig, Server};
//! use rtoss_sparse::SparseModel;
//! use rtoss_tensor::Tensor;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = rtoss_models::yolov5s_twin(4, 2, 1)?;
//! let engine = Arc::new(SparseModel::compile(&model.graph)?);
//! let server = Server::start(engine, ServeConfig {
//!     workers: 2,
//!     max_batch: 4,
//!     policy: BackpressurePolicy::ShedExpired,
//!     ..ServeConfig::default()
//! });
//! let ticket = server.submit(Tensor::zeros(&[1, 3, 64, 64]),
//!                            Some(Duration::from_secs(5)))?;
//! let response = ticket.wait()?;
//! assert!(!response.outputs.is_empty());
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
mod metrics;
mod queue;
mod request;
mod server;

pub use metrics::{
    LatencyHistogram, MetricsSnapshot, PhaseHistogram, PhaseStats, ServerMetrics, ServerSeries,
    StripedCounter,
};
pub use queue::BackpressurePolicy;
pub use request::{
    InferenceRequest, InferenceResponse, RequestError, RequestResult, RequestTiming, Ticket,
};
pub use rtoss_tensor::ExecConfig;
pub use server::{EnergyModelHook, QueueDepthHandle, ServeConfig, ServeModel, Server};
