//! Open-loop load generation with seeded Poisson arrivals.
//!
//! Open-loop means the arrival schedule is fixed before the run and
//! never reacts to server behaviour — the standard way to expose
//! queueing collapse that closed-loop (wait-for-response) drivers hide.
//! The schedule is drawn from a seeded ChaCha8 stream so a run is
//! reproducible end to end; wall-clock randomness never enters it.

use crate::request::{RequestError, Ticket};
use crate::server::Server;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtoss_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Draws `n` Poisson arrival offsets (cumulative, from t=0) at `qps`
/// mean arrival rate from a seeded stream.
///
/// Inter-arrival gaps are exponential: `-ln(1-u)/qps`.
pub fn poisson_schedule(seed: u64, qps: f64, n: usize) -> Vec<Duration> {
    assert!(qps > 0.0, "qps must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() / qps;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// Draws `n` bursty arrival offsets at `qps` *mean* rate: a seeded
/// on/off-modulated Poisson process (Markov-modulated, two states).
///
/// The process alternates exponentially-long ON and OFF phases (mean
/// 50 ms each); arrivals inside an ON phase come at `qps * burstiness`
/// and inside an OFF phase at `qps / burstiness`, then the whole
/// schedule is rescaled so its span matches a pure Poisson schedule's
/// (`n / qps`) — the mean rate is exactly `qps`, only the variance
/// changes. `burstiness = 1.0` degenerates to pure Poisson. Pure
/// Poisson arrivals are memoryless and thus the *kindest* possible
/// overload; real camera/sensor traffic clusters, and clustered
/// arrivals are what break deadline-bound queues.
pub fn bursty_schedule(seed: u64, qps: f64, n: usize, burstiness: f64) -> Vec<Duration> {
    assert!(qps > 0.0, "qps must be positive");
    assert!(burstiness >= 1.0, "burstiness must be >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let phase_mean_s = 0.05f64;
    let mut t = 0.0f64;
    let mut on = true;
    let mut phase_end = {
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() * phase_mean_s
    };
    let mut offsets = Vec::with_capacity(n);
    for _ in 0..n {
        let rate = if on {
            qps * burstiness
        } else {
            qps / burstiness
        };
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / rate;
        while t > phase_end {
            on = !on;
            let u: f64 = rng.gen_range(0.0..1.0);
            phase_end += -(1.0 - u).ln() * phase_mean_s;
        }
        offsets.push(t);
    }
    // Rescale so the span equals a pure-Poisson schedule's expected
    // span: the configured qps is the realized mean rate.
    let span = offsets.last().copied().unwrap_or(0.0);
    let target = n as f64 / qps;
    let scale = if span > 0.0 { target / span } else { 1.0 };
    offsets
        .into_iter()
        .map(|o| Duration::from_secs_f64(o * scale))
        .collect()
}

/// Outcome tallies and latency statistics of one load-generation run.
///
/// Latency percentiles here use **nearest-rank over the sorted raw
/// samples**: `pXX` is the value at rank `ceil(q·n)` — an actual
/// observed latency, never an interpolation. The server's
/// [`LatencyHistogram`](crate::LatencyHistogram) estimates the same
/// rank but returns its **bucket's upper bound**, so the histogram
/// estimate is ≥ the exact value and within one bucket's resolution
/// above it (buckets grow by √2 per step). The
/// `histogram_quantile_agrees_with_nearest_rank` test in `metrics.rs`
/// pins that relationship on a shared sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSummary {
    /// Requests the schedule offered.
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected at submission.
    pub rejected: u64,
    /// Requests shed for missing their deadline.
    pub shed: u64,
    /// Requests failed by the model.
    pub failed: u64,
    /// Completed requests that finished past their deadline.
    pub deadline_missed: u64,
    /// Mean end-to-end latency over completed requests, milliseconds.
    pub mean_ms: f64,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed end-to-end latency, milliseconds.
    pub max_ms: f64,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
}

impl LoadSummary {
    /// Fraction of offered requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Replays `schedule` against `server`, submitting `make_input(i)` at
/// each offset (sleeping to hold the open-loop arrival times), then
/// waits for every ticket and tallies the outcomes.
///
/// Note: under [`BackpressurePolicy::Block`](crate::BackpressurePolicy)
/// a full queue stalls the submitting thread, which *does* distort the
/// open-loop schedule — that is the policy's documented cost, visible
/// here as a longer `wall_s`.
pub fn run_open_loop(
    server: &Server,
    schedule: &[Duration],
    deadline: Option<Duration>,
    mut make_input: impl FnMut(usize) -> Tensor,
) -> LoadSummary {
    let start = Instant::now();
    let mut tickets: Vec<Option<Ticket>> = Vec::with_capacity(schedule.len());
    let mut rejected = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    for (i, &offset) in schedule.iter().enumerate() {
        let now = start.elapsed();
        if offset > now {
            std::thread::sleep(offset - now);
        }
        match server.submit(make_input(i), deadline) {
            Ok(t) => tickets.push(Some(t)),
            Err(RequestError::Rejected) => {
                rejected += 1;
                tickets.push(None);
            }
            Err(RequestError::Shed) => {
                shed += 1;
                tickets.push(None);
            }
            Err(_) => {
                failed += 1;
                tickets.push(None);
            }
        }
    }

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(schedule.len());
    let mut completed = 0u64;
    let mut deadline_missed = 0u64;
    for ticket in tickets.into_iter().flatten() {
        match ticket.wait() {
            Ok(resp) => {
                completed += 1;
                if resp.deadline_missed {
                    deadline_missed += 1;
                }
                latencies_ms.push(resp.timing.total().as_secs_f64() * 1e3);
            }
            Err(RequestError::Rejected) => rejected += 1,
            Err(RequestError::Shed) => shed += 1,
            Err(_) => failed += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    // Nearest-rank percentile: the sample at rank ceil(q·n), 1-based —
    // the same rank rule LatencyHistogram::quantile_ms resolves to a
    // bucket upper bound (see the LoadSummary docs).
    let pct = |q: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let idx =
            ((q * latencies_ms.len() as f64).ceil() as usize).clamp(1, latencies_ms.len()) - 1;
        latencies_ms[idx]
    };
    LoadSummary {
        offered: schedule.len() as u64,
        completed,
        rejected,
        shed,
        failed,
        deadline_missed,
        mean_ms: if latencies_ms.is_empty() {
            0.0
        } else {
            latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
        },
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        throughput_rps: if wall_s > 0.0 {
            completed as f64 / wall_s
        } else {
            0.0
        },
        wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, ServeModel};
    use std::sync::Arc;

    #[test]
    fn schedule_is_deterministic_and_rate_accurate() {
        let a = poisson_schedule(42, 1000.0, 500);
        let b = poisson_schedule(42, 1000.0, 500);
        assert_eq!(a, b);
        let c = poisson_schedule(43, 1000.0, 500);
        assert_ne!(a, c);
        // 500 arrivals at 1000 qps: total span ≈ 0.5 s (loose bound).
        let span = a.last().unwrap().as_secs_f64();
        assert!((0.3..0.8).contains(&span), "span {span}");
        // Monotone non-decreasing offsets.
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bursty_schedule_keeps_the_mean_rate_but_clusters() {
        let n = 2000;
        let qps = 1000.0;
        let a = bursty_schedule(42, qps, n, 8.0);
        assert_eq!(a, bursty_schedule(42, qps, n, 8.0));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Rescaling pins the span to n/qps exactly.
        let span = a.last().unwrap().as_secs_f64();
        assert!((span - n as f64 / qps).abs() < 1e-9, "span {span}");
        // Clustering: the variance of inter-arrival gaps must exceed a
        // pure Poisson schedule's at the same mean rate (for an
        // exponential, stddev == mean; bursty should be well above).
        let gaps = |s: &[Duration]| -> Vec<f64> {
            s.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect()
        };
        let var = |g: &[f64]| -> f64 {
            let m = g.iter().sum::<f64>() / g.len() as f64;
            g.iter().map(|x| (x - m).powi(2)).sum::<f64>() / g.len() as f64
        };
        let poisson = poisson_schedule(42, qps, n);
        let (bv, pv) = (var(&gaps(&a)), var(&gaps(&poisson)));
        assert!(bv > 2.0 * pv, "bursty variance {bv} not above poisson {pv}");
        // burstiness = 1 degenerates to a plain renewal process at qps.
        let flat = bursty_schedule(42, qps, n, 1.0);
        let fv = var(&gaps(&flat));
        assert!(fv < 2.0 * pv, "flat variance {fv} vs poisson {pv}");
    }

    struct Identity;

    impl ServeModel for Identity {
        fn run_batch(
            &self,
            batch: &Tensor,
            _exec: &rtoss_tensor::ExecConfig,
        ) -> Result<Vec<Tensor>, String> {
            Ok(vec![batch.clone()])
        }
    }

    #[test]
    fn open_loop_run_accounts_for_every_request() {
        let server = Server::start(Arc::new(Identity), ServeConfig::default());
        let schedule = poisson_schedule(7, 5000.0, 40);
        let summary = run_open_loop(&server, &schedule, None, |i| {
            Tensor::full(&[1, 1, 4, 4], i as f32)
        });
        server.shutdown();
        assert_eq!(summary.offered, 40);
        assert_eq!(
            summary.completed + summary.rejected + summary.shed + summary.failed,
            40
        );
        assert_eq!(summary.completed, 40);
        assert!(summary.p50_ms <= summary.p99_ms);
        assert!(summary.throughput_rps > 0.0);
    }
}
