//! The serving core: a worker pool that pops micro-batches from the
//! bounded queue, runs them through a [`ServeModel`], and resolves the
//! clients' tickets.
//!
//! Workers are panic-isolated twice over: each batch executes inside
//! `catch_unwind` (a panicking model fails only its own batch), and the
//! worker's outer loop respawns the serving loop if anything else
//! panics. Either way the panic is counted and the server stays up.

use crate::metrics::ServerMetrics;
use crate::queue::{BackpressurePolicy, BoundedQueue, Pending};
use crate::request::{
    ticket_pair, InferenceRequest, InferenceResponse, RequestError, RequestTiming, Ticket,
};
use rtoss_hw::{DeviceModel, EnergyBreakdown, Workload};
use rtoss_obs as obs;
use rtoss_sparse::SparseModel;
use rtoss_tensor::{ops, ExecConfig, Tensor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Process-wide micro-batch id source (dense, from 1), tagged onto
/// every batch-level trace event.
static NEXT_BATCH_ID: AtomicU64 = AtomicU64::new(1);

/// A model the server can drive.
///
/// `run_batch` receives requests stacked along the batch dimension and
/// must return outputs whose batch dimension matches the input's; the
/// server splits them back per request. Implementations must be safe to
/// call from several worker threads at once.
pub trait ServeModel: Send + Sync + 'static {
    /// Runs one stacked micro-batch at the server's [`ExecConfig`]
    /// (intra-op thread count); models without a parallel path may
    /// ignore `exec`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when inference fails; the server
    /// maps it to [`RequestError::Failed`] for every request on board.
    fn run_batch(&self, batch: &Tensor, exec: &ExecConfig) -> Result<Vec<Tensor>, String>;

    /// Opt-in pre-flight validation: one message per structural
    /// invariant violation in the model's compiled artifacts (empty =
    /// fit to serve). Run before [`Server::start`] to refuse ill-formed
    /// models instead of discovering them request by request. The
    /// default has nothing to check.
    fn verify(&self) -> Vec<String> {
        Vec::new()
    }

    /// Compiles whatever per-shape artifacts the model caches (e.g. an
    /// execution plan) for `input_shape`, so the first real request at
    /// that shape pays no compilation latency. The default does
    /// nothing; failures are deliberately swallowed — an unplannable
    /// shape surfaces as a per-request error, not a startup crash.
    fn prewarm(&self, _input_shape: &[usize], _exec: &ExecConfig) {}

    /// Peak activation-arena bytes across the model's compiled plans,
    /// when the model plans its execution (`None` otherwise). Exported
    /// as the `rtoss_peak_activation_bytes` gauge.
    fn peak_activation_bytes(&self) -> Option<u64> {
        None
    }

    /// Whether this model executes through compiled execution plans.
    /// For planned models `exec.threads` is the *graph-level* width —
    /// independent plan steps fan out across the persistent worker
    /// pool, and outputs stay bit-identical at every width — so
    /// callers need no thread clamping on this path.
    fn plans(&self) -> bool {
        false
    }
}

impl ServeModel for SparseModel {
    fn run_batch(&self, batch: &Tensor, exec: &ExecConfig) -> Result<Vec<Tensor>, String> {
        self.forward_with(batch, exec).map_err(|e| e.to_string())
    }

    fn verify(&self) -> Vec<String> {
        SparseModel::verify(self)
            .into_iter()
            .map(|v| v.to_string())
            .collect()
    }

    fn prewarm(&self, input_shape: &[usize], _exec: &ExecConfig) {
        if self.planning() {
            let _ = self.plan_for(input_shape);
        }
    }

    fn peak_activation_bytes(&self) -> Option<u64> {
        SparseModel::peak_activation_bytes(self)
    }

    fn plans(&self) -> bool {
        self.planning()
    }
}

/// Cloneable handle reporting a server's live queue depth without
/// holding the [`Server`] itself — control loops (e.g. a fleet's
/// degradation controller) sample it from their own thread.
#[derive(Debug, Clone)]
pub struct QueueDepthHandle {
    queue: Arc<BoundedQueue>,
}

impl QueueDepthHandle {
    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Analytic energy accounting for served requests: each completed
/// request is charged its share of a micro-batched pass on `device`
/// under `workload` (see [`EnergyBreakdown::compute_batched`]).
#[derive(Debug, Clone)]
pub struct EnergyModelHook {
    /// Device the energy model simulates.
    pub device: DeviceModel,
    /// Per-frame workload of the served model.
    pub workload: Workload,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads popping and executing micro-batches.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Behaviour when the queue is full.
    pub policy: BackpressurePolicy,
    /// Largest micro-batch a worker will assemble.
    pub max_batch: usize,
    /// How long an open batch waits for stragglers before executing.
    pub batch_timeout: Duration,
    /// Optional per-request energy accounting.
    pub energy: Option<EnergyModelHook>,
    /// Intra-op execution config passed to [`ServeModel::run_batch`]
    /// (thread count for the tiled conv executors).
    pub exec: ExecConfig,
    /// Single-frame input shape (`[1, c, h, w]`) to prewarm before
    /// serving: [`Server::start`] compiles the model's per-shape
    /// artifacts for every micro-batch size `1..=max_batch`, so the
    /// micro-batch workers never plan on the request path. `None`
    /// skips prewarming (plans compile lazily on first use).
    pub prewarm: Option<Vec<usize>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            max_batch: 4,
            batch_timeout: Duration::from_millis(2),
            energy: None,
            exec: ExecConfig::default(),
            prewarm: None,
        }
    }
}

/// A running inference server.
///
/// Submissions are thread-safe through `&self`; call
/// [`shutdown`](Server::shutdown) (or drop the server) to drain and
/// join the workers.
#[derive(Debug)]
pub struct Server {
    queue: Arc<BoundedQueue>,
    metrics: Arc<ServerMetrics>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(model: Arc<dyn ServeModel>, config: ServeConfig) -> Self {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity, config.policy));
        let metrics = Arc::new(ServerMetrics::new());
        if let Some(frame) = &config.prewarm {
            if let Some((&frames, rest)) = frame.split_first() {
                for b in 1..=config.max_batch.max(1) {
                    let mut shape = Vec::with_capacity(frame.len());
                    shape.push(frames.max(1) * b);
                    shape.extend_from_slice(rest);
                    model.prewarm(&shape, &config.exec);
                }
            }
            if let Some(bytes) = model.peak_activation_bytes() {
                metrics.record_peak_activation_bytes(bytes);
            }
        }
        let workers = (0..config.workers.max(1))
            .map(|_| {
                spawn_worker(
                    queue.clone(),
                    metrics.clone(),
                    model.clone(),
                    config.clone(),
                )
            })
            .collect();
        Server {
            queue,
            metrics,
            workers,
        }
    }

    /// Submits a request; returns a [`Ticket`] to wait on.
    ///
    /// # Errors
    ///
    /// Returns the resolved error immediately when the backpressure
    /// policy refuses the request (or the server is shutting down).
    pub fn submit(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Ticket, RequestError> {
        let (ticket, fulfiller) = ticket_pair();
        let request = InferenceRequest::new(input, deadline);
        let request_id = request.id;
        let pending = Pending {
            request,
            fulfiller,
            popped_at: None,
        };
        match self.queue.push(pending, &self.metrics) {
            Ok(()) => {
                if obs::recording() {
                    obs::emit_instant("enqueue", vec![("request", obs::ArgValue::U64(request_id))]);
                }
                Ok(ticket)
            }
            // The queue resolved the ticket; surface the reason directly.
            // A resolved-with-success ticket here would be a queue bug;
            // report it as a failure rather than panicking in submit.
            Err(()) => match ticket.wait() {
                Err(e) => Err(e),
                Ok(_) => Err(RequestError::Failed(
                    "internal: rejected ticket carried a response".into(),
                )),
            },
        }
    }

    /// Live metrics handle (counters keep updating behind it).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.metrics.clone()
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A cloneable handle that keeps reporting the queue depth from any
    /// thread (it does not keep the server alive or serving).
    pub fn queue_depth_handle(&self) -> QueueDepthHandle {
        QueueDepthHandle {
            queue: self.queue.clone(),
        }
    }

    /// Drains the queue, stops and joins all workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.queue.close(&self.metrics);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Spawns one worker. The outer loop restarts the serving loop if it
/// ever panics outside the per-batch guard, so a worker slot is never
/// silently lost.
fn spawn_worker(
    queue: Arc<BoundedQueue>,
    metrics: Arc<ServerMetrics>,
    model: Arc<dyn ServeModel>,
    config: ServeConfig,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        let ran = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(&queue, &metrics, &*model, &config)
        }));
        match ran {
            Ok(()) => break,
            Err(_) => metrics.worker_panics.incr(),
        }
    })
}

fn worker_loop(
    queue: &BoundedQueue,
    metrics: &ServerMetrics,
    model: &dyn ServeModel,
    config: &ServeConfig,
) {
    while let Some(batch) = queue.pop_batch(config.max_batch, config.batch_timeout, metrics) {
        serve_batch(batch, metrics, model, config);
    }
}

fn serve_batch(
    mut batch: Vec<Pending>,
    metrics: &ServerMetrics,
    model: &dyn ServeModel,
    config: &ServeConfig,
) {
    // Under ShedExpired, a request can outlive its deadline *after*
    // being popped — while the batch waited for stragglers or sat
    // behind a slow predecessor. Executing it wastes a batch slot on an
    // answer nobody can use, so it is shed here too, not just at the
    // queue front.
    if config.policy == BackpressurePolicy::ShedExpired {
        let now = Instant::now();
        batch.retain_mut(|pending| {
            if pending.request.expired_at(now) {
                metrics.shed.incr();
                crate::queue::trace_shed(&pending.request);
                pending.fulfiller.fulfil(Err(RequestError::Shed));
                false
            } else {
                true
            }
        });
        if batch.is_empty() {
            return;
        }
    }
    // One sampling decision per micro-batch: either the whole batch is
    // traced (queue waits, phases, nested per-layer spans) or none of
    // it, so a sampled trace never contains execute spans without their
    // layer children (RV042).
    let scope = obs::batch_scope();
    let batch_id = NEXT_BATCH_ID.fetch_add(1, Ordering::Relaxed);
    let assembly_start = Instant::now();
    metrics.batches.incr();
    metrics.batched_requests.add(batch.len() as u64);

    // Assembly is measured from the first pop: that is when the batch
    // started forming (matches the per-request `batch_assembly` phase).
    let first_popped = batch
        .iter()
        .filter_map(|p| p.popped_at)
        .min()
        .unwrap_or(assembly_start);
    if scope.recording() {
        // Queue waits overlap each other and span two threads, so they
        // are async intervals correlated by request id, not sync spans.
        for p in &batch {
            let popped = p.popped_at.unwrap_or(assembly_start);
            obs::emit_async(
                "queue_wait",
                p.request.id,
                obs::ts_ns(p.request.submitted_at),
                obs::ts_ns(popped),
                vec![
                    ("request", obs::ArgValue::U64(p.request.id)),
                    ("batch", obs::ArgValue::U64(batch_id)),
                ],
            );
        }
    }

    let inputs: Vec<&Tensor> = batch.iter().map(|p| &p.request.input).collect();
    let sizes: Vec<usize> = inputs.iter().map(|x| x.shape()[0]).collect();
    let frames: usize = sizes.iter().sum();
    // Stacking is batch assembly, not model time: it runs before
    // `exec_start` (under its own panic guard) so `execute` below is
    // pure model time.
    let stacked = catch_unwind(AssertUnwindSafe(|| {
        ops::batch_stack(&inputs).map_err(|e| e.to_string())
    }));
    let exec_start = Instant::now();
    if scope.recording() {
        obs::emit_span(
            "batch_assembly",
            obs::ts_ns(first_popped),
            obs::ts_ns(exec_start),
            vec![
                ("batch", obs::ArgValue::U64(batch_id)),
                ("requests", obs::ArgValue::U64(batch.len() as u64)),
                ("frames", obs::ArgValue::U64(frames as u64)),
            ],
        );
    }
    let result = match stacked {
        Ok(Ok(stacked)) => {
            catch_unwind(AssertUnwindSafe(|| model.run_batch(&stacked, &config.exec)))
        }
        Ok(Err(msg)) => Ok(Err(msg)),
        Err(panic) => Err(panic),
    };
    let exec_dur = exec_start.elapsed();
    // Lazily-compiled plans (no prewarm configured) surface their
    // arena footprint as soon as the first batch at a shape has run.
    if let Some(bytes) = model.peak_activation_bytes() {
        metrics.record_peak_activation_bytes(bytes);
    }
    if scope.recording() {
        // Emitted after the model's own layer spans closed, keeping the
        // per-thread buffer ordered by end timestamp (RV041); interval
        // containment still nests the layers inside this span.
        obs::emit_span(
            "execute",
            obs::ts_ns(exec_start),
            obs::ts_ns(exec_start + exec_dur),
            vec![
                ("batch", obs::ArgValue::U64(batch_id)),
                ("requests", obs::ArgValue::U64(batch.len() as u64)),
                ("frames", obs::ArgValue::U64(frames as u64)),
                ("threads", obs::ArgValue::U64(config.exec.threads as u64)),
            ],
        );
    }

    let outcome: Result<Vec<Vec<Tensor>>, RequestError> = match result {
        Ok(Ok(outs)) => split_outputs(&outs, &sizes),
        Ok(Err(msg)) => Err(RequestError::Failed(msg)),
        Err(panic) => {
            metrics.worker_panics.incr();
            Err(RequestError::Failed(format!(
                "model panicked: {}",
                panic_message(&panic)
            )))
        }
    };

    // Energy is charged per *frame*: a request whose input stacks f
    // frames (`shape()[0] == f`) costs f shares of a `frames`-wide
    // batched pass, not one share of a `batch.len()`-wide pass.
    let per_frame_energy_j = config.energy.as_ref().map(|hook| {
        EnergyBreakdown::compute_batched(&hook.device, &hook.workload, frames.max(1)).total_j()
    });

    let now = Instant::now();
    let batch_size = batch.len();
    match outcome {
        Ok(mut per_request) => {
            // Resolve in reverse so we can pop off the end cheaply.
            for pending in batch.into_iter().rev() {
                let Some(outputs) = per_request.pop() else {
                    // split_outputs produced fewer sets than requests —
                    // fail this request instead of panicking the worker.
                    pending.fulfiller.fulfil(Err(RequestError::Failed(
                        "internal: missing output set for request".into(),
                    )));
                    metrics.failed.incr();
                    continue;
                };
                let popped_at = pending.popped_at.unwrap_or(assembly_start);
                let timing = RequestTiming {
                    queue_wait: popped_at.duration_since(pending.request.submitted_at),
                    batch_assembly: exec_start.saturating_duration_since(popped_at),
                    execute: exec_dur,
                };
                let deadline_missed = pending.request.expired_at(now);
                metrics.queue_wait.record(timing.queue_wait);
                metrics.batch_assembly.record(timing.batch_assembly);
                metrics.execute.record(timing.execute);
                metrics.completed.incr();
                if deadline_missed {
                    metrics.deadline_missed.incr();
                }
                metrics.series.record_completion(
                    obs::ts_ns(now),
                    now.duration_since(pending.request.submitted_at),
                    deadline_missed,
                );
                if let Some(per_frame_j) = per_frame_energy_j {
                    let request_frames = pending.request.input.shape()[0] as f64;
                    let uj = (per_frame_j * request_frames * 1e6).round().max(0.0) as u64;
                    metrics.energy_uj.add(uj);
                }
                pending.fulfiller.fulfil(Ok(InferenceResponse {
                    outputs,
                    timing,
                    batch_size,
                    deadline_missed,
                }));
            }
        }
        Err(err) => {
            metrics.failed.add(batch.len() as u64);
            for pending in batch {
                pending.fulfiller.fulfil(Err(err.clone()));
            }
        }
    }

    if scope.recording() {
        let end = Instant::now();
        obs::emit_span(
            "respond",
            obs::ts_ns(now),
            obs::ts_ns(end),
            vec![("batch", obs::ArgValue::U64(batch_id))],
        );
        // The whole batch, first pop to last ticket resolved; emitted
        // last so it closes after everything it contains.
        obs::emit_span(
            "batch",
            obs::ts_ns(first_popped),
            obs::ts_ns(end),
            vec![
                ("batch", obs::ArgValue::U64(batch_id)),
                ("requests", obs::ArgValue::U64(batch_size as u64)),
                ("frames", obs::ArgValue::U64(frames as u64)),
            ],
        );
    }
}

fn split_outputs(outs: &[Tensor], sizes: &[usize]) -> Result<Vec<Vec<Tensor>>, RequestError> {
    let mut per_request: Vec<Vec<Tensor>> = (0..sizes.len())
        .map(|_| Vec::with_capacity(outs.len()))
        .collect();
    for out in outs {
        let parts = ops::batch_split(out, sizes)
            .map_err(|e| RequestError::Failed(format!("output split failed: {e}")))?;
        for (req, part) in parts.into_iter().enumerate() {
            per_request[req].push(part);
        }
    }
    Ok(per_request)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity "model": echoes its input, optionally slowly/panicking.
    struct Echo {
        delay: Duration,
        panic_on_value: Option<f32>,
    }

    impl ServeModel for Echo {
        fn run_batch(&self, batch: &Tensor, _exec: &ExecConfig) -> Result<Vec<Tensor>, String> {
            if let Some(v) = self.panic_on_value {
                if batch.as_slice().contains(&v) {
                    panic!("poison value {v} in batch");
                }
            }
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            Ok(vec![batch.clone()])
        }
    }

    fn echo() -> Arc<dyn ServeModel> {
        Arc::new(Echo {
            delay: Duration::ZERO,
            panic_on_value: None,
        })
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let server = Server::start(echo(), ServeConfig::default());
        let x = Tensor::full(&[1, 2, 3, 3], 7.0);
        let resp = server.submit(x.clone(), None).unwrap().wait().unwrap();
        assert_eq!(resp.outputs.len(), 1);
        assert_eq!(resp.outputs[0].as_slice(), x.as_slice());
        assert!(resp.batch_size >= 1);
        let m = server.metrics();
        server.shutdown();
        assert_eq!(m.completed.get(), 1);
        assert_eq!(m.queue_wait.count(), 1);
    }

    #[test]
    fn micro_batches_concurrent_requests() {
        let server = Server::start(
            echo(),
            ServeConfig {
                workers: 1,
                max_batch: 8,
                batch_timeout: Duration::from_millis(20),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                server
                    .submit(Tensor::full(&[1, 1, 2, 2], i as f32), None)
                    .unwrap()
            })
            .collect();
        let mut max_seen = 0;
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert_eq!(resp.outputs[0].as_slice(), &[i as f32; 4]);
            max_seen = max_seen.max(resp.batch_size);
        }
        assert!(max_seen >= 2, "no batching observed (max batch {max_seen})");
        server.shutdown();
    }

    #[test]
    fn panicking_batch_fails_cleanly_and_server_survives() {
        let server = Server::start(
            Arc::new(Echo {
                delay: Duration::ZERO,
                panic_on_value: Some(-13.0),
            }),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                ..ServeConfig::default()
            },
        );
        let bad = server
            .submit(Tensor::full(&[1, 1, 2, 2], -13.0), None)
            .unwrap();
        assert!(matches!(bad.wait(), Err(RequestError::Failed(_))));
        // Server keeps serving after the panic.
        let good = server
            .submit(Tensor::full(&[1, 1, 2, 2], 1.0), None)
            .unwrap();
        assert!(good.wait().is_ok());
        let m = server.metrics();
        assert_eq!(m.worker_panics.get(), 1);
        assert_eq!(m.failed.get(), 1);
        assert_eq!(m.completed.get(), 1);
        server.shutdown();
    }

    #[test]
    fn energy_hook_charges_completed_requests() {
        let workload = Workload {
            dense_macs: 1_000_000,
            effective_macs: 1_000_000,
            weight_bytes: 1_000,
            structure: rtoss_hw::SparsityStructure::Dense,
        };
        let server = Server::start(
            echo(),
            ServeConfig {
                energy: Some(EnergyModelHook {
                    device: DeviceModel::jetson_tx2(),
                    workload,
                }),
                ..ServeConfig::default()
            },
        );
        server
            .submit(Tensor::zeros(&[1, 1, 2, 2]), None)
            .unwrap()
            .wait()
            .unwrap();
        let m = server.metrics();
        server.shutdown();
        assert!(m.snapshot().energy_j > 0.0);
    }

    #[test]
    fn energy_charges_per_frame_not_per_request() {
        // Regression: a request carrying several frames must be charged
        // for every frame, not a single per-request share.
        let workload = Workload {
            dense_macs: 1_000_000,
            effective_macs: 1_000_000,
            weight_bytes: 1_000,
            structure: rtoss_hw::SparsityStructure::Dense,
        };
        let device = DeviceModel::jetson_tx2();
        let server = Server::start(
            echo(),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                energy: Some(EnergyModelHook {
                    device: device.clone(),
                    workload,
                }),
                ..ServeConfig::default()
            },
        );
        // One request stacking three frames along the batch dimension.
        server
            .submit(Tensor::zeros(&[3, 1, 2, 2]), None)
            .unwrap()
            .wait()
            .unwrap();
        let m = server.metrics();
        server.shutdown();
        let per_frame_j = EnergyBreakdown::compute_batched(&device, &workload, 3).total_j();
        let expected_uj = (per_frame_j * 3.0 * 1e6).round() as u64;
        assert_eq!(m.energy_uj.get(), expected_uj);
        // Sanity: strictly more than one per-frame share.
        assert!(m.energy_uj.get() > (per_frame_j * 1e6) as u64);
    }

    #[test]
    fn request_expiring_after_pop_is_shed_not_executed() {
        // Regression: a request that was live at pop time but expires
        // while the batch forms (or behind a slow predecessor) must be
        // shed at execute time, not served into a missed deadline.
        let server = Server::start(
            Arc::new(Echo {
                delay: Duration::from_millis(60),
                panic_on_value: None,
            }),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                batch_timeout: Duration::ZERO,
                policy: BackpressurePolicy::ShedExpired,
                ..ServeConfig::default()
            },
        );
        // First request occupies the single worker for ~60 ms.
        let first = server.submit(Tensor::zeros(&[1, 1, 2, 2]), None).unwrap();
        thread::sleep(Duration::from_millis(5));
        // Second request's 10 ms deadline expires while it waits behind
        // the first; it reaches serve_batch already dead.
        let doomed = server
            .submit(
                Tensor::zeros(&[1, 1, 2, 2]),
                Some(Duration::from_millis(10)),
            )
            .unwrap();
        assert!(first.wait().is_ok());
        assert!(matches!(doomed.wait(), Err(RequestError::Shed)));
        let m = server.metrics();
        server.shutdown();
        assert_eq!(m.shed.get(), 1);
        assert_eq!(m.completed.get(), 1);
        // The shed request never executed: only one batch ran.
        assert_eq!(m.batches.get(), 1);
        assert_eq!(m.deadline_missed.get(), 0);
    }

    #[test]
    fn concurrent_submit_and_shutdown_partition_submitted() {
        // Hammer submit from several threads while the server shuts
        // down mid-stream: every submitted request must land in exactly
        // one terminal counter.
        let server = Arc::new(Server::start(
            Arc::new(Echo {
                delay: Duration::from_micros(200),
                panic_on_value: None,
            }),
            ServeConfig {
                workers: 2,
                queue_capacity: 8,
                max_batch: 4,
                batch_timeout: Duration::ZERO,
                policy: BackpressurePolicy::RejectWhenFull,
                ..ServeConfig::default()
            },
        ));
        let metrics = server.metrics();
        let mut producers = Vec::new();
        for p in 0..4 {
            let server = server.clone();
            producers.push(thread::spawn(move || {
                for i in 0..100 {
                    if let Ok(t) =
                        server.submit(Tensor::full(&[1, 1, 2, 2], (p * 100 + i) as f32), None)
                    {
                        let _ = t.wait();
                    }
                    if i % 10 == 0 {
                        thread::sleep(Duration::from_micros(50));
                    }
                }
            }));
        }
        thread::sleep(Duration::from_millis(10));
        // Shut down while producers are still submitting.
        Arc::try_unwrap(server).map(Server::shutdown).unwrap_or(());
        for h in producers {
            h.join().unwrap();
        }
        // try_unwrap raced the producers; the Arc drop path also shuts
        // down, so by here all tickets are resolved either way.
        let snap = metrics.snapshot();
        assert_eq!(
            snap.submitted,
            snap.completed + snap.rejected + snap.shed + snap.failed + snap.shut_down,
            "partition violated: {snap:?}"
        );
        assert!(snap.submitted > 0);
    }

    #[test]
    fn shutdown_fails_queued_requests() {
        // One worker stuck on a slow batch; queued work fails at close.
        let server = Server::start(
            Arc::new(Echo {
                delay: Duration::from_millis(50),
                panic_on_value: None,
            }),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                batch_timeout: Duration::ZERO,
                ..ServeConfig::default()
            },
        );
        let first = server.submit(Tensor::zeros(&[1, 1, 2, 2]), None).unwrap();
        thread::sleep(Duration::from_millis(5));
        let queued = server.submit(Tensor::zeros(&[1, 1, 2, 2]), None).unwrap();
        server.shutdown();
        assert!(first.wait().is_ok());
        assert!(matches!(queued.wait(), Err(RequestError::ShutDown)));
    }
}
