//! Bounded MPMC request queue with pluggable backpressure.
//!
//! A `Mutex<VecDeque> + Condvar` pair — deliberately boring: the queue
//! holds at most `capacity` requests, producers and consumers block on
//! separate condvars, and overload behaviour is a [`BackpressurePolicy`]
//! chosen at construction. Workers pop *micro-batches*: runs of
//! shape-compatible requests taken from the front, waiting up to
//! `batch_timeout` for stragglers before closing the batch.

use crate::metrics::ServerMetrics;
use crate::request::{Fulfiller, InferenceRequest, RequestError};
use rtoss_obs as obs;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Marks one shed request in the trace (no-op unless recording).
pub(crate) fn trace_shed(request: &InferenceRequest) {
    if obs::recording() {
        obs::emit_instant("shed", vec![("request", obs::ArgValue::U64(request.id))]);
    }
}

/// What the server does when the queue is full (and, for
/// [`ShedExpired`](BackpressurePolicy::ShedExpired), when deadlines pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Producers block until space frees up. Applies backpressure to the
    /// client; nothing is ever dropped.
    Block,
    /// Submissions fail fast with [`RequestError::Rejected`] when full.
    RejectWhenFull,
    /// Requests whose deadline already passed are dropped — purged from
    /// a full queue at submit time and skipped at pop time — each
    /// counted in `shed`. A full queue with no expired entries rejects.
    ShedExpired,
}

/// A request waiting in the queue, carrying its completion handle.
#[derive(Debug)]
pub(crate) struct Pending {
    pub(crate) request: InferenceRequest,
    pub(crate) fulfiller: Fulfiller,
    /// Set when a worker drains the request into a forming batch.
    pub(crate) popped_at: Option<Instant>,
}

#[derive(Debug)]
struct Inner {
    deque: VecDeque<Pending>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer queue of pending requests.
#[derive(Debug)]
pub(crate) struct BoundedQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
}

impl BoundedQueue {
    pub(crate) fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                deque: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// Enqueues a request according to the backpressure policy.
    ///
    /// On rejection the pending's ticket is resolved here, so callers
    /// only need to count the outcome.
    pub(crate) fn push(&self, pending: Pending, metrics: &ServerMetrics) -> Result<(), ()> {
        let mut inner = self.lock();
        if inner.closed {
            pending.fulfiller.fulfil(Err(RequestError::ShutDown));
            return Err(());
        }
        // Count every open-queue submission attempt, accepted or not:
        // `submitted` is the total that the terminal counters
        // (completed / rejected / shed / failed) partition once every
        // ticket has resolved.
        metrics.submitted.incr();
        if inner.deque.len() >= self.capacity {
            match self.policy {
                BackpressurePolicy::Block => {
                    while inner.deque.len() >= self.capacity && !inner.closed {
                        inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
                    }
                    if inner.closed {
                        // Counted as submitted above, so it needs a
                        // terminal counter: shutdown took it.
                        metrics.shut_down.incr();
                        pending.fulfiller.fulfil(Err(RequestError::ShutDown));
                        return Err(());
                    }
                }
                BackpressurePolicy::RejectWhenFull => {
                    // Count before fulfilling so the terminal counters
                    // already partition `submitted` the moment a ticket
                    // resolves.
                    metrics.rejected.incr();
                    pending.fulfiller.fulfil(Err(RequestError::Rejected));
                    return Err(());
                }
                BackpressurePolicy::ShedExpired => {
                    let now = Instant::now();
                    inner.deque.retain(|p| {
                        if p.request.expired_at(now) {
                            metrics.shed.incr();
                            trace_shed(&p.request);
                            p.fulfiller.fulfil(Err(RequestError::Shed));
                            false
                        } else {
                            true
                        }
                    });
                    if inner.deque.len() >= self.capacity {
                        metrics.rejected.incr();
                        pending.fulfiller.fulfil(Err(RequestError::Rejected));
                        return Err(());
                    }
                }
            }
        }
        inner.deque.push_back(pending);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops a micro-batch: up to `max_batch` requests whose inputs share
    /// trailing (non-batch) dimensions, waiting up to `batch_timeout`
    /// after the first request for more to arrive.
    ///
    /// Returns `None` once the queue is closed and drained. Under
    /// [`BackpressurePolicy::ShedExpired`], expired requests encountered
    /// here are shed rather than batched.
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        batch_timeout: Duration,
        metrics: &ServerMetrics,
    ) -> Option<Vec<Pending>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.lock();
        let mut batch: Vec<Pending> = Vec::with_capacity(max_batch);
        let mut close_at: Option<Instant> = None;
        loop {
            // Drain compatible requests from the front.
            while batch.len() < max_batch {
                let Some(front) = inner.deque.front() else {
                    break;
                };
                if self.policy == BackpressurePolicy::ShedExpired
                    && front.request.expired_at(Instant::now())
                {
                    let Some(expired) = inner.deque.pop_front() else {
                        break;
                    };
                    metrics.shed.incr();
                    trace_shed(&expired.request);
                    expired.fulfiller.fulfil(Err(RequestError::Shed));
                    self.not_full.notify_one();
                    continue;
                }
                let compatible = batch.first().is_none_or(|first: &Pending| {
                    first.request.input.shape()[1..] == front.request.input.shape()[1..]
                });
                if !compatible {
                    break;
                }
                let Some(mut p) = inner.deque.pop_front() else {
                    break;
                };
                p.popped_at = Some(Instant::now());
                batch.push(p);
                self.not_full.notify_one();
            }
            if batch.len() >= max_batch {
                return Some(batch);
            }
            if !batch.is_empty() {
                // Batch is open: wait for stragglers until the timeout.
                let deadline = *close_at.get_or_insert_with(|| Instant::now() + batch_timeout);
                let now = Instant::now();
                if now >= deadline || inner.closed {
                    return Some(batch);
                }
                // An incompatible request at the front can never join
                // this batch; close immediately rather than wait.
                if inner.deque.front().is_some() {
                    return Some(batch);
                }
                let (g, _timeout) = self
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = g;
            } else {
                if inner.closed {
                    return None;
                }
                inner = self
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Closes the queue: wakes everyone, fails still-queued requests.
    /// Each drained request was counted as submitted, so it is tallied
    /// in `shut_down` — keeping the terminal counters a partition of
    /// `submitted` even across shutdown.
    pub(crate) fn close(&self, metrics: &ServerMetrics) {
        let mut inner = self.lock();
        inner.closed = true;
        for p in inner.deque.drain(..) {
            metrics.shut_down.incr();
            p.fulfiller.fulfil(Err(RequestError::ShutDown));
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth (for tests and reporting).
    pub(crate) fn len(&self) -> usize {
        self.lock().deque.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ticket_pair;
    use rtoss_tensor::Tensor;
    use std::sync::Arc;
    use std::thread;

    fn pending(deadline: Option<Duration>) -> (crate::request::Ticket, Pending) {
        let (ticket, fulfiller) = ticket_pair();
        (
            ticket,
            Pending {
                request: InferenceRequest::new(Tensor::zeros(&[1, 1, 2, 2]), deadline),
                fulfiller,
                popped_at: None,
            },
        )
    }

    #[test]
    fn reject_when_full_resolves_ticket() {
        let q = BoundedQueue::new(1, BackpressurePolicy::RejectWhenFull);
        let m = ServerMetrics::new();
        let (_t1, p1) = pending(None);
        assert!(q.push(p1, &m).is_ok());
        let (t2, p2) = pending(None);
        assert!(q.push(p2, &m).is_err());
        assert!(matches!(t2.wait(), Err(RequestError::Rejected)));
        assert_eq!(m.rejected.get(), 1);
        // Both attempts count as submitted; the rejection is the second
        // attempt's terminal outcome.
        assert_eq!(m.submitted.get(), 2);
    }

    #[test]
    fn shed_expired_purges_full_queue() {
        let q = BoundedQueue::new(2, BackpressurePolicy::ShedExpired);
        let m = ServerMetrics::new();
        let (t1, p1) = pending(Some(Duration::ZERO));
        let (t2, p2) = pending(Some(Duration::ZERO));
        q.push(p1, &m).unwrap();
        q.push(p2, &m).unwrap();
        thread::sleep(Duration::from_millis(2));
        // Queue full, both entries expired: push purges them.
        let (_t3, p3) = pending(Some(Duration::from_secs(60)));
        assert!(q.push(p3, &m).is_ok());
        assert!(matches!(t1.wait(), Err(RequestError::Shed)));
        assert!(matches!(t2.wait(), Err(RequestError::Shed)));
        assert_eq!(m.shed.get(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_batch_groups_compatible_requests() {
        let q = BoundedQueue::new(8, BackpressurePolicy::Block);
        let m = ServerMetrics::new();
        for _ in 0..3 {
            let (t, p) = pending(None);
            q.push(p, &m).unwrap();
            std::mem::forget(t);
        }
        let batch = q
            .pop_batch(4, Duration::from_millis(1), &m)
            .expect("queue open");
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|p| p.popped_at.is_some()));
    }

    #[test]
    fn pop_batch_returns_none_after_close() {
        let q = Arc::new(BoundedQueue::new(4, BackpressurePolicy::Block));
        let m = Arc::new(ServerMetrics::new());
        let (q2, m2) = (q.clone(), m.clone());
        let h = thread::spawn(move || q2.pop_batch(4, Duration::from_millis(1), &m2));
        thread::sleep(Duration::from_millis(10));
        q.close(&m);
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn zero_capacity_clamps_to_one_slot() {
        // Capacity 0 would deadlock Block and reject everything else;
        // the queue clamps to one slot instead.
        let q = BoundedQueue::new(0, BackpressurePolicy::RejectWhenFull);
        let m = ServerMetrics::new();
        let (_t1, p1) = pending(None);
        assert!(q.push(p1, &m).is_ok());
        assert_eq!(q.len(), 1);
        let (t2, p2) = pending(None);
        assert!(q.push(p2, &m).is_err());
        assert!(matches!(t2.wait(), Err(RequestError::Rejected)));
    }

    #[test]
    fn deadline_exactly_at_boundary_is_not_expired() {
        // `expired_at` is strict (`>`): a request whose deadline is
        // exactly `now` is still live, so ShedExpired must not drop it.
        let req = InferenceRequest::new(Tensor::zeros(&[1, 1, 2, 2]), Some(Duration::from_secs(5)));
        let at_deadline = req.submitted_at + Duration::from_secs(5);
        assert!(!req.expired_at(at_deadline));
        assert!(req.expired_at(at_deadline + Duration::from_nanos(1)));
    }

    #[test]
    fn close_counts_drained_requests_as_shut_down() {
        let q = BoundedQueue::new(4, BackpressurePolicy::Block);
        let m = ServerMetrics::new();
        let (t1, p1) = pending(None);
        let (t2, p2) = pending(None);
        q.push(p1, &m).unwrap();
        q.push(p2, &m).unwrap();
        q.close(&m);
        assert!(matches!(t1.wait(), Err(RequestError::ShutDown)));
        assert!(matches!(t2.wait(), Err(RequestError::ShutDown)));
        assert_eq!(m.shut_down.get(), 2);
        assert_eq!(m.submitted.get(), 2);
    }

    #[test]
    fn blocked_producer_wakes_on_consume() {
        let q = Arc::new(BoundedQueue::new(1, BackpressurePolicy::Block));
        let m = Arc::new(ServerMetrics::new());
        let (_t1, p1) = pending(None);
        q.push(p1, &m).unwrap();
        let (q2, m2) = (q.clone(), m.clone());
        let producer = thread::spawn(move || {
            let (t, p) = pending(None);
            q2.push(p, &m2).unwrap();
            std::mem::forget(t);
        });
        thread::sleep(Duration::from_millis(5));
        let batch = q.pop_batch(1, Duration::ZERO, &m).unwrap();
        assert_eq!(batch.len(), 1);
        producer.join().unwrap();
        assert_eq!(m.submitted.get(), 2);
    }
}
