//! Server-side metrics: lock-striped counters and log-spaced latency
//! histograms, with a serde-serializable snapshot.
//!
//! Counters are monotonic and striped across cache-line-padded atomics
//! so concurrent workers and clients never contend on one line.
//! Histograms use fixed log-spaced buckets (√2 growth from 250 ns, 60
//! buckets ≈ 250 ns … 3 min), giving ~±20 % quantile resolution with
//! O(1) lock-free recording — the classic serving-systems trade.

use rtoss_obs::timeseries::{WindowSpec, WindowedCounter, WindowedHistogram};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of stripes per counter. Eight covers typical worker-pool and
/// client-thread counts without measurable contention.
const STRIPES: usize = 8;

/// An `AtomicU64` padded to its own cache line so neighbouring stripes
/// never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedAtomic(AtomicU64);

/// Monotonic counter striped across cache lines.
///
/// Each thread increments its own stripe (assigned round-robin on first
/// use); reads sum all stripes. Totals are exact — only the ordering of
/// concurrent increments across stripes is unspecified, which a
/// monotonic counter does not care about.
#[derive(Debug, Default)]
pub struct StripedCounter {
    stripes: [PaddedAtomic; STRIPES],
}

/// Round-robin stripe assignment shared by all counters: each thread
/// gets one index for its lifetime, so a thread's increments always hit
/// the same cache line.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

impl StripedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        StripedCounter::default()
    }

    /// Adds `n` to the calling thread's stripe.
    pub fn add(&self, n: u64) {
        let idx = MY_STRIPE.with(|s| *s);
        self.stripes[idx].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sums all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Histogram geometry: 60 buckets growing by √2 from 250 ns.
const BUCKETS: usize = 60;
const BUCKET_LO_NS: f64 = 250.0;
/// log2 of the per-bucket growth factor (√2 → 0.5).
const LOG2_GROWTH: f64 = 0.5;

/// Fixed-bucket log-spaced latency histogram with lock-free recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Number of fixed log-spaced buckets.
    pub const NUM_BUCKETS: usize = BUCKETS;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Bucket 0 holds samples in `(0, BUCKET_LO_NS]`; bucket `i > 0`
    /// holds `(upper(i-1), upper(i)]`. Keeping bucket 0's upper bound at
    /// exactly `BUCKET_LO_NS` means a sub-250 ns sample can never report
    /// a quantile above 250 ns.
    ///
    /// Public (with [`bucket_upper_ns`](Self::bucket_upper_ns)) so the
    /// boundary checks in `rtoss-verify` exercise the exact mapping the
    /// recorder uses.
    pub fn bucket_index(ns: f64) -> usize {
        if ns <= BUCKET_LO_NS {
            return 0;
        }
        let steps = ((ns / BUCKET_LO_NS).log2() / LOG2_GROWTH).floor() as usize;
        let mut idx = (steps + 1).min(BUCKETS - 1);
        // The log/floor above can overshoot by one when `ns` sits exactly
        // on (or within float error of) a bucket's upper bound: a sample
        // at upper(i) computed steps == i, landing it in bucket i+1 and
        // violating the half-open range documented above (RV021).
        while idx > 0 && ns <= Self::bucket_upper_ns(idx - 1) {
            idx -= 1;
        }
        idx
    }

    /// Upper bound of bucket `i` in nanoseconds (`upper(0) == BUCKET_LO_NS`).
    pub fn bucket_upper_ns(i: usize) -> f64 {
        BUCKET_LO_NS * 2f64.powf(LOG2_GROWTH * i as f64)
    }

    /// Records one latency sample.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(ns as f64)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1e6
    }

    /// Quantile estimate in milliseconds: the upper bound of the bucket
    /// containing the sample at nearest rank `ceil(q·count)` (0 when
    /// empty). Same rank rule as the load generator's exact percentiles
    /// (`LoadSummary`), but resolved to a bucket upper bound — so the
    /// estimate is ≥ the exact nearest-rank sample and exceeds it by at
    /// most one bucket's resolution (bucket bounds grow by √2 per
    /// step). `histogram_quantile_agrees_with_nearest_rank` below pins
    /// this agreement on a shared sample set.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_ns(i) / 1e6;
            }
        }
        Self::bucket_upper_ns(BUCKETS - 1) / 1e6
    }

    /// Snapshot of this histogram's headline statistics.
    pub fn stats(&self) -> PhaseStats {
        PhaseStats {
            count: self.count(),
            mean_ms: self.mean_ms(),
            p50_ms: self.quantile_ms(0.50),
            p95_ms: self.quantile_ms(0.95),
            p99_ms: self.quantile_ms(0.99),
        }
    }

    /// Full bucket-level snapshot (every bucket count plus the exact
    /// sum), for diffable reports and Prometheus exposition.
    pub fn full(&self) -> PhaseHistogram {
        PhaseHistogram {
            count: self.count(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Upper bounds of every bucket in nanoseconds, in order. The last
    /// bucket also absorbs anything larger (the recorder clamps), so
    /// `sum(buckets) == count` always holds for [`full`](Self::full).
    pub fn bucket_upper_bounds_ns() -> Vec<f64> {
        (0..BUCKETS).map(Self::bucket_upper_ns).collect()
    }
}

/// Headline latency statistics for one serving phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Median (bucket upper bound), milliseconds.
    pub p50_ms: f64,
    /// 95th percentile (bucket upper bound), milliseconds.
    pub p95_ms: f64,
    /// 99th percentile (bucket upper bound), milliseconds.
    pub p99_ms: f64,
}

/// Full bucket-level view of one phase histogram: per-bucket counts in
/// the fixed log-spaced geometry (see
/// [`LatencyHistogram::bucket_upper_bounds_ns`]) plus the exact sample
/// sum. Unlike [`PhaseStats`] this loses nothing — two runs are
/// diffable bucket by bucket, and the Prometheus exposition is derived
/// from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket counts, `LatencyHistogram::NUM_BUCKETS` entries; the
    /// last bucket also holds everything above its bound, so the counts
    /// always sum to `count`.
    pub buckets: Vec<u64>,
}

/// Windowed time-series view of the respond path, recorded alongside
/// the monotonic counters when `rtoss_obs::series_enabled()` is on
/// (the recorders gate themselves — disabled cost is one relaxed
/// atomic load per call). Fleet-level SLO monitors sum trailing
/// ranges of these windows to compute deadline burn rates per
/// replica; the cumulative counters cannot answer "how bad were the
/// last two seconds", which is the question burn-rate alerting asks.
#[derive(Debug)]
pub struct ServerSeries {
    /// Requests served to completion, per aligned window.
    pub completed: WindowedCounter,
    /// Completed requests that missed their deadline, per aligned
    /// window.
    pub deadline_missed: WindowedCounter,
    /// End-to-end latency (submit → respond) in microseconds, windowed
    /// into coarse buckets for the flight recorder's post-mortem view.
    pub latency_us: WindowedHistogram,
}

impl Default for ServerSeries {
    fn default() -> Self {
        // Bounds in microseconds: 1 ms .. 1 s, log-ish spacing. Coarse
        // on purpose — the per-phase LatencyHistogram keeps the fine
        // geometry; these windows exist to localise a breach in time.
        const LATENCY_BOUNDS_US: [u64; 7] =
            [1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000];
        ServerSeries {
            completed: WindowedCounter::new(WindowSpec::default()),
            deadline_missed: WindowedCounter::new(WindowSpec::default()),
            latency_us: WindowedHistogram::new(WindowSpec::default(), &LATENCY_BOUNDS_US),
        }
    }
}

impl ServerSeries {
    /// Records one completed request at `ts_ns` (nanoseconds since the
    /// trace epoch): bumps the completion window, the miss window when
    /// `missed`, and the latency histogram window. A no-op (one atomic
    /// load per recorder) while series recording is disabled.
    pub fn record_completion(&self, ts_ns: u64, latency: Duration, missed: bool) {
        self.completed.incr_at(ts_ns);
        if missed {
            self.deadline_missed.incr_at(ts_ns);
        }
        let us = (latency.as_micros()).min(u128::from(u64::MAX)) as u64;
        self.latency_us.record_at(ts_ns, us);
    }

    /// Deadline-miss and completion counts `(missed, completed)`
    /// summed over the trailing `range_ns` ending at `now_ns` — the
    /// (bad, total) pair a deadline SLO monitor evaluates.
    pub fn deadline_range(&self, now_ns: u64, range_ns: u64) -> (u64, u64) {
        let (missed, _) = self.deadline_missed.range(now_ns, range_ns);
        let (completed, _) = self.completed.range(now_ns, range_ns);
        (missed, completed)
    }
}

/// All counters and histograms for one running server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Submission attempts while the queue was open. Every attempt ends
    /// up in exactly one of `completed`, `rejected`, `shed`, `failed`,
    /// or `shut_down`, so `submitted` equals their sum once all tickets
    /// have resolved.
    pub submitted: StripedCounter,
    /// Requests served to completion.
    pub completed: StripedCounter,
    /// Requests refused at submission (queue full).
    pub rejected: StripedCounter,
    /// Requests dropped by the `ShedExpired` policy.
    pub shed: StripedCounter,
    /// Completed requests that finished after their deadline.
    pub deadline_missed: StripedCounter,
    /// Worker panics caught (each also fails its in-flight batch).
    pub worker_panics: StripedCounter,
    /// Requests that failed with a model error.
    pub failed: StripedCounter,
    /// Submitted requests the server shut down before serving (drained
    /// at queue close, or woken from a blocked submit by shutdown).
    pub shut_down: StripedCounter,
    /// Micro-batches executed.
    pub batches: StripedCounter,
    /// Requests carried by those batches (mean batch size = this ÷ batches).
    pub batched_requests: StripedCounter,
    /// Modelled energy, microjoules (integer so it can be a counter).
    pub energy_uj: StripedCounter,
    /// Submit → popped from the queue.
    pub queue_wait: LatencyHistogram,
    /// Popped → batch closed.
    pub batch_assembly: LatencyHistogram,
    /// Batched forward pass.
    pub execute: LatencyHistogram,
    /// High-water mark of the served engine's activation-arena bytes
    /// across its compiled execution plans (0 until a planning model
    /// reports one). A gauge, not a counter: updated by max, so
    /// concurrent workers racing on it cannot lose the peak.
    pub peak_activation_bytes: AtomicU64,
    /// Windowed respond-path series (inert unless
    /// `rtoss_obs::series_enabled()`); not part of
    /// [`MetricsSnapshot`] — fleet telemetry reads it live through its
    /// `Arc<ServerMetrics>`.
    pub series: ServerSeries,
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// Raises the peak-activation-bytes high-water mark to `bytes` if
    /// it is higher than the current value.
    pub fn record_peak_activation_bytes(&self, bytes: u64) {
        self.peak_activation_bytes
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting. Counters are
    /// read individually (monotonic, so each value is exact even if the
    /// set is not an atomic cut).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        MetricsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            rejected: self.rejected.get(),
            shed: self.shed.get(),
            deadline_missed: self.deadline_missed.get(),
            worker_panics: self.worker_panics.get(),
            failed: self.failed.get(),
            shut_down: self.shut_down.get(),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            energy_j: self.energy_uj.get() as f64 / 1e6,
            peak_activation_bytes: self.peak_activation_bytes.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.stats(),
            batch_assembly: self.batch_assembly.stats(),
            execute: self.execute.stats(),
            queue_wait_hist: self.queue_wait.full(),
            batch_assembly_hist: self.batch_assembly.full(),
            execute_hist: self.execute.full(),
        }
    }
}

/// Serializable point-in-time view of [`ServerMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Submission attempts while the queue was open.
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests refused at submission.
    pub rejected: u64,
    /// Requests dropped by `ShedExpired`.
    pub shed: u64,
    /// Completed requests that missed their deadline.
    pub deadline_missed: u64,
    /// Worker panics caught.
    pub worker_panics: u64,
    /// Requests failed with a model error.
    pub failed: u64,
    /// Submitted requests taken by shutdown before serving.
    pub shut_down: u64,
    /// Mean micro-batch size over the run.
    pub mean_batch_size: f64,
    /// Modelled energy, joules.
    pub energy_j: f64,
    /// High-water mark of the served engine's activation-arena bytes
    /// (0 when the model does not plan its execution).
    pub peak_activation_bytes: u64,
    /// Queue-wait phase statistics.
    pub queue_wait: PhaseStats,
    /// Batch-assembly phase statistics.
    pub batch_assembly: PhaseStats,
    /// Execute phase statistics.
    pub execute: PhaseStats,
    /// Queue-wait phase, full bucket counts.
    pub queue_wait_hist: PhaseHistogram,
    /// Batch-assembly phase, full bucket counts.
    pub batch_assembly_hist: PhaseHistogram,
    /// Execute phase, full bucket counts.
    pub execute_hist: PhaseHistogram,
}

impl MetricsSnapshot {
    /// The three phase histograms with their exposition names, in a
    /// fixed order (`queue_wait`, `batch_assembly`, `execute`).
    pub fn phase_histograms(&self) -> [(&'static str, &PhaseHistogram); 3] {
        [
            ("queue_wait", &self.queue_wait_hist),
            ("batch_assembly", &self.batch_assembly_hist),
            ("execute", &self.execute_hist),
        ]
    }

    /// Renders the snapshot in Prometheus text exposition format:
    /// every counter as `rtoss_<name>_total`, the batch-size and
    /// energy gauges, and each phase histogram as
    /// `rtoss_<phase>_seconds` with the full log-bucket geometry
    /// (bounds converted to seconds).
    pub fn to_prometheus(&self) -> String {
        use rtoss_obs::prom::{render, PromHistogram, PromMetric, PromValue};
        let counters: [(&str, &str, u64); 8] = [
            (
                "submitted",
                "Submission attempts while the queue was open",
                self.submitted,
            ),
            ("completed", "Requests served to completion", self.completed),
            (
                "rejected",
                "Requests refused at submission (queue full)",
                self.rejected,
            ),
            (
                "shed",
                "Requests dropped by the ShedExpired policy",
                self.shed,
            ),
            (
                "deadline_missed",
                "Completed requests that finished after their deadline",
                self.deadline_missed,
            ),
            ("worker_panics", "Worker panics caught", self.worker_panics),
            ("failed", "Requests failed with a model error", self.failed),
            (
                "shut_down",
                "Submitted requests taken by shutdown before serving",
                self.shut_down,
            ),
        ];
        let mut metrics = Vec::new();
        for (name, help, v) in counters {
            metrics.push(PromMetric::counter(
                format!("rtoss_{name}_total"),
                help,
                v as f64,
            ));
        }
        metrics.push(PromMetric::gauge(
            "rtoss_mean_batch_size",
            "Mean micro-batch size over the run",
            self.mean_batch_size,
        ));
        metrics.push(PromMetric::counter(
            "rtoss_energy_joules_total",
            "Modelled energy consumed, joules",
            self.energy_j,
        ));
        metrics.push(PromMetric::gauge(
            "rtoss_peak_activation_bytes",
            "Peak activation-arena bytes across the engine's compiled execution plans",
            self.peak_activation_bytes as f64,
        ));
        let upper_bounds_s: Vec<f64> = LatencyHistogram::bucket_upper_bounds_ns()
            .into_iter()
            .map(|ns| ns / 1e9)
            .collect();
        for (phase, hist) in self.phase_histograms() {
            metrics.push(PromMetric {
                name: format!("rtoss_{phase}_seconds"),
                help: format!("Latency of the {phase} serving phase"),
                labels: Vec::new(),
                value: PromValue::Histogram(PromHistogram {
                    upper_bounds: upper_bounds_s.clone(),
                    counts: hist.buckets.clone(),
                    sum: hist.sum_ns as f64 / 1e9,
                    count: hist.count,
                }),
            });
        }
        render(&metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn striped_counter_is_exact_under_contention() {
        let c = Arc::new(StripedCounter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn histogram_quantiles_bracket_true_values() {
        let h = LatencyHistogram::new();
        // 100 samples: 1 ms .. 100 ms.
        for i in 1..=100u64 {
            h.record(Duration::from_millis(i));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        let p99 = h.quantile_ms(0.99);
        // Bucket upper bounds: within a √2 factor above the true value.
        assert!((50.0..=75.0).contains(&p50), "p50 {p50}");
        assert!((99.0..=145.0).contains(&p99), "p99 {p99}");
        assert!((h.mean_ms() - 50.5).abs() < 0.5, "mean {}", h.mean_ms());
    }

    #[test]
    fn histogram_quantile_agrees_with_nearest_rank() {
        // Cross-check of the two percentile estimators on a shared
        // sample set: the load generator takes the exact nearest-rank
        // sample (rank ceil(q·n) over the sorted raw values); the
        // histogram resolves the same rank to its bucket's upper
        // bound. The two must agree within one bucket's resolution —
        // estimate ≥ exact, and exact must not be below the bucket's
        // lower neighbour's bound.
        let mut samples_ns: Vec<f64> = Vec::new();
        // Deterministic spread over several decades, incl. repeats.
        for i in 1..=500u64 {
            let ns = 300.0 * (1.0 + (i % 97) as f64) * (1 + i / 100) as f64;
            samples_ns.push(ns);
        }
        let h = LatencyHistogram::new();
        for &ns in &samples_ns {
            h.record(Duration::from_nanos(ns as u64));
        }
        let mut sorted = samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.50, 0.90, 0.95, 0.99, 1.0] {
            // Nearest rank, exactly as serve/fleet loadgen computes it.
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            let exact_ns = sorted[idx];
            let hist_ns = h.quantile_ms(q) * 1e6;
            assert!(
                hist_ns >= exact_ns - 1e-9,
                "q={q}: histogram {hist_ns} ns below exact nearest-rank {exact_ns} ns"
            );
            // Same bucket: the histogram's answer is the upper bound of
            // the bucket the exact sample falls into.
            let bucket = LatencyHistogram::bucket_index(exact_ns);
            let upper = LatencyHistogram::bucket_upper_ns(bucket);
            assert!(
                (hist_ns - upper).abs() < 1e-6,
                "q={q}: histogram {hist_ns} ns is not the exact sample's bucket upper \
                 bound {upper} ns — estimators diverge by more than one bucket"
            );
        }
    }

    #[test]
    fn sub_bucket_sample_reports_quantile_within_first_bucket() {
        // Regression: a 100 ns sample lands in bucket 0, whose reported
        // upper bound must be the bucket floor (250 ns), not one growth
        // step above it (~354 ns).
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100));
        let p100_ns = h.quantile_ms(1.0) * 1e6;
        assert!(p100_ns <= 250.0, "quantile {p100_ns} ns exceeds bucket 0");
        assert!(p100_ns > 0.0);
    }

    #[test]
    fn bucket_boundaries_are_half_open_and_monotonic() {
        // A sample exactly on a bucket's upper bound belongs to that
        // bucket, not the next one (RV021 regression).
        for i in 0..LatencyHistogram::NUM_BUCKETS {
            let upper = LatencyHistogram::bucket_upper_ns(i);
            assert_eq!(
                LatencyHistogram::bucket_index(upper),
                i,
                "upper({i}) = {upper} ns"
            );
            if i + 1 < LatencyHistogram::NUM_BUCKETS {
                assert!(upper < LatencyHistogram::bucket_upper_ns(i + 1));
                assert_eq!(LatencyHistogram::bucket_index(upper * 1.0001), i + 1);
            }
        }
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(0.0) > 0.0);
        assert!(h.quantile_ms(1.0) >= h.quantile_ms(0.0));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = ServerMetrics::new();
        m.submitted.add(10);
        m.completed.add(9);
        m.shed.incr();
        m.batches.add(3);
        m.batched_requests.add(9);
        m.energy_uj.add(1_500_000);
        m.queue_wait.record(Duration::from_micros(80));
        m.execute.record(Duration::from_millis(4));
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        assert!(json.contains("\"completed\""));
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
        assert_eq!(back, snap);
        assert_eq!(back.energy_j, 1.5);
        assert_eq!(back.mean_batch_size, 3.0);
        // The full bucket counts ride along and survive the round trip.
        assert_eq!(back.queue_wait_hist.count, 1);
        assert_eq!(
            back.queue_wait_hist.buckets.iter().sum::<u64>(),
            back.queue_wait_hist.count
        );
        assert_eq!(
            back.execute_hist.buckets.len(),
            LatencyHistogram::NUM_BUCKETS
        );
    }

    #[test]
    fn peak_activation_bytes_is_a_high_water_mark() {
        let m = ServerMetrics::new();
        assert_eq!(m.snapshot().peak_activation_bytes, 0);
        m.record_peak_activation_bytes(4096);
        m.record_peak_activation_bytes(1024); // lower: must not regress
        assert_eq!(m.snapshot().peak_activation_bytes, 4096);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE rtoss_peak_activation_bytes gauge"));
        assert!(text.contains("rtoss_peak_activation_bytes 4096"));
    }

    #[test]
    fn prometheus_exposition_round_trips_bucket_counts() {
        let m = ServerMetrics::new();
        m.submitted.add(5);
        m.completed.add(5);
        m.execute.record(Duration::from_millis(2));
        m.execute.record(Duration::from_millis(2));
        m.execute.record(Duration::from_micros(10));
        let snap = m.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE rtoss_execute_seconds histogram"));
        assert!(text.contains("rtoss_submitted_total 5"));
        let samples = rtoss_obs::prom::parse(&text).expect("own exposition parses");
        // Cumulative bucket counts must reconstruct the snapshot's.
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "rtoss_execute_seconds_bucket")
            .map(|s| s.value)
            .collect();
        assert_eq!(buckets.len(), LatencyHistogram::NUM_BUCKETS + 1);
        let mut cumulative = 0u64;
        for (i, c) in snap.execute_hist.buckets.iter().enumerate() {
            cumulative += c;
            assert_eq!(buckets[i], cumulative as f64, "bucket {i}");
        }
        assert_eq!(*buckets.last().unwrap(), snap.execute_hist.count as f64);
        let count = samples
            .iter()
            .find(|s| s.name == "rtoss_execute_seconds_count")
            .unwrap();
        assert_eq!(count.value, 3.0);
    }
}
