//! Request/response types and the completion handshake.
//!
//! A client submits an [`InferenceRequest`] and receives a [`Ticket`] —
//! a one-shot slot the worker pool later fulfils with either an
//! [`InferenceResponse`] or a [`RequestError`]. The slot is a plain
//! `Mutex<Option<..>> + Condvar` pair: no async runtime, just the
//! std-only blocking primitives the rest of the crate is built on.

use rtoss_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process-wide request id source: dense, from 1, shared by every
/// server in the process so trace ids never collide.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// One inference request as submitted by a client.
#[derive(Debug)]
pub struct InferenceRequest {
    /// Process-unique request id (dense, from 1). Propagated into trace
    /// events (`queue_wait` async intervals are correlated by it).
    pub id: u64,
    /// Input activation tensor, NCHW (typically batch dimension 1).
    pub input: Tensor,
    /// When the request entered the server.
    pub submitted_at: Instant,
    /// Per-request latency budget, relative to `submitted_at`.
    /// `None` means the request never expires.
    pub deadline: Option<Duration>,
}

impl InferenceRequest {
    /// Builds a request stamped with the current time and a fresh id.
    pub fn new(input: Tensor, deadline: Option<Duration>) -> Self {
        InferenceRequest {
            id: NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed),
            input,
            submitted_at: Instant::now(),
            deadline,
        }
    }

    /// Whether the deadline had passed at `now`.
    pub fn expired_at(&self, now: Instant) -> bool {
        match self.deadline {
            Some(d) => now.duration_since(self.submitted_at) > d,
            None => false,
        }
    }
}

/// Wall-clock spent in each serving phase of a completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Submit → popped from the queue by a worker.
    pub queue_wait: Duration,
    /// Popped → the stacked batch tensor was ready to execute. Includes
    /// waiting for stragglers *and* stacking the inputs.
    pub batch_assembly: Duration,
    /// The batched forward pass alone (pure model time).
    pub execute: Duration,
}

impl RequestTiming {
    /// End-to-end latency: the sum of the three phases.
    pub fn total(&self) -> Duration {
        self.queue_wait + self.batch_assembly + self.execute
    }
}

/// A successfully served request.
#[derive(Debug, Clone)]
pub struct InferenceResponse {
    /// Model outputs for this request (batch dimension matches the input).
    pub outputs: Vec<Tensor>,
    /// Per-phase latency breakdown.
    pub timing: RequestTiming,
    /// Size of the micro-batch this request rode in.
    pub batch_size: usize,
    /// Whether the response arrived after the request's deadline.
    pub deadline_missed: bool,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestError {
    /// The queue was full and the backpressure policy rejected the request.
    Rejected,
    /// The deadline passed before execution and the `ShedExpired` policy
    /// dropped the request.
    Shed,
    /// The model failed or panicked while serving the request.
    Failed(String),
    /// The server shut down before the request ran.
    ShutDown,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Rejected => write!(f, "queue full: request rejected"),
            RequestError::Shed => write!(f, "deadline passed: request shed"),
            RequestError::Failed(msg) => write!(f, "inference failed: {msg}"),
            RequestError::ShutDown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Result a [`Ticket`] resolves to.
pub type RequestResult = Result<InferenceResponse, RequestError>;

type Slot = (Mutex<Option<RequestResult>>, Condvar);

/// Client-side handle to a pending request.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

/// Worker-side handle used to fulfil a ticket exactly once.
#[derive(Debug)]
pub(crate) struct Fulfiller {
    slot: Arc<Slot>,
}

/// Creates a linked ticket/fulfiller pair.
pub(crate) fn ticket_pair() -> (Ticket, Fulfiller) {
    let slot: Arc<Slot> = Arc::new((Mutex::new(None), Condvar::new()));
    (Ticket { slot: slot.clone() }, Fulfiller { slot })
}

impl Ticket {
    /// Blocks until the server resolves the request.
    pub fn wait(self) -> RequestResult {
        let (lock, cvar) = &*self.slot;
        let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = cvar.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout`; returns `Err(self)` if still pending so
    /// the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<RequestResult, Ticket> {
        let deadline = Instant::now() + timeout;
        {
            let (lock, cvar) = &*self.slot;
            let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(result) = guard.take() {
                    return Ok(result);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, timed_out) = cvar
                    .wait_timeout(guard, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                guard = g;
                if timed_out.timed_out() {
                    if let Some(result) = guard.take() {
                        return Ok(result);
                    }
                    break;
                }
            }
        }
        Err(self)
    }
}

impl Fulfiller {
    /// Resolves the paired ticket. Later calls on the same slot are
    /// ignored (first writer wins).
    pub(crate) fn fulfil(&self, result: RequestResult) {
        let (lock, cvar) = &*self.slot;
        let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(result);
        }
        cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ticket_resolves_across_threads() {
        let (ticket, fulfiller) = ticket_pair();
        let t = thread::spawn(move || ticket.wait());
        fulfiller.fulfil(Err(RequestError::Rejected));
        assert!(matches!(t.join().unwrap(), Err(RequestError::Rejected)));
    }

    #[test]
    fn wait_timeout_returns_ticket_when_pending() {
        let (ticket, fulfiller) = ticket_pair();
        let ticket = ticket
            .wait_timeout(Duration::from_millis(5))
            .expect_err("still pending");
        fulfiller.fulfil(Err(RequestError::Shed));
        assert!(matches!(ticket.wait(), Err(RequestError::Shed)));
    }

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let a = InferenceRequest::new(Tensor::zeros(&[1, 1, 2, 2]), None);
        let b = InferenceRequest::new(Tensor::zeros(&[1, 1, 2, 2]), None);
        assert_ne!(a.id, 0);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn expiry_respects_deadline() {
        let req = InferenceRequest::new(Tensor::zeros(&[1, 1, 2, 2]), Some(Duration::ZERO));
        assert!(req.expired_at(Instant::now() + Duration::from_millis(1)));
        let eternal = InferenceRequest::new(Tensor::zeros(&[1, 1, 2, 2]), None);
        assert!(!eternal.expired_at(Instant::now() + Duration::from_secs(3600)));
    }
}
