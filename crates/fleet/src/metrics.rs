//! Fleet-level metrics: per-tenant admission ledgers, per-replica and
//! per-tier serving state, and a serializable snapshot with Prometheus
//! exposition (labelled series — tenant, class, replica, tier).

use rtoss_serve::{MetricsSnapshot, StripedCounter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::tenant::SloClass;

/// Admission ledger for one tenant. Every offered request lands in
/// exactly one of `admitted`, `throttled`, or `shed` — the conservation
/// law RV062 checks.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests the tenant offered to the fleet.
    pub offered: StripedCounter,
    /// Requests that entered a replica queue.
    pub admitted: StripedCounter,
    /// Requests refused by the tenant's token bucket.
    pub throttled: StripedCounter,
    /// Requests refused by pressure admission (class gate or replica
    /// queue) — shed at the fleet boundary rather than queued.
    pub shed: StripedCounter,
}

/// Live fleet counters (tenant ledgers plus routing/controller tallies).
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Per-tenant ledgers, keyed by tenant id.
    pub tenants: BTreeMap<String, TenantCounters>,
    /// Requests routed to their hash-affine replica.
    pub routed_affinity: StripedCounter,
    /// Requests spilled to the least-outstanding replica instead.
    pub routed_spill: StripedCounter,
    /// Controller moves toward denser tiers.
    pub tier_upgrades: StripedCounter,
    /// Controller moves toward sparser tiers.
    pub tier_downgrades: StripedCounter,
    /// Hot model swaps applied.
    pub hot_swaps: StripedCounter,
}

/// Snapshot of one tenant's ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub id: String,
    /// SLO class label (`gold` / `silver` / `bulk`).
    pub class: String,
    /// Requests offered.
    pub offered: u64,
    /// Requests admitted into a replica queue.
    pub admitted: u64,
    /// Requests throttled by quota.
    pub throttled: u64,
    /// Requests shed at admission.
    pub shed: u64,
}

impl TenantSnapshot {
    /// `admitted + throttled + shed` — must equal `offered` (RV062).
    pub fn accounted(&self) -> u64 {
        self.admitted + self.throttled + self.shed
    }
}

/// Per-tier serving tallies of one replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierServedSnapshot {
    /// Tier name (`dense`, `3EP`, `2EP`, ...).
    pub tier: String,
    /// Modelled mAP of the tier's variant.
    pub map_estimate: f64,
    /// Micro-batches executed on this tier.
    pub batches: u64,
    /// Frames executed on this tier.
    pub frames: u64,
}

/// One replica's state in a fleet snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// Replica index.
    pub replica: usize,
    /// Tier index the replica was serving when snapshotted.
    pub current_tier: usize,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Served-tier tallies, densest first.
    pub tiers: Vec<TierServedSnapshot>,
    /// The replica server's own metrics.
    pub server: MetricsSnapshot,
}

/// Point-in-time view of a whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-tenant ledgers, in tenant-id order.
    pub tenants: Vec<TenantSnapshot>,
    /// Per-replica state.
    pub replicas: Vec<ReplicaSnapshot>,
    /// Requests routed to the hash-affine replica.
    pub routed_affinity: u64,
    /// Requests spilled to the least-outstanding replica.
    pub routed_spill: u64,
    /// Controller upgrades (toward dense).
    pub tier_upgrades: u64,
    /// Controller downgrades (toward sparse).
    pub tier_downgrades: u64,
    /// Hot model swaps applied.
    pub hot_swaps: u64,
}

impl FleetSnapshot {
    /// Frame-weighted mean modelled mAP over everything the fleet
    /// served (`None` before any frame completes). The gap to tier 0's
    /// mAP is the accuracy cost of degradation.
    pub fn served_map_mean(&self) -> Option<f64> {
        let (mut frames, mut weighted) = (0u64, 0.0f64);
        for r in &self.replicas {
            for t in &r.tiers {
                frames += t.frames;
                weighted += t.frames as f64 * t.map_estimate;
            }
        }
        (frames > 0).then(|| weighted / frames as f64)
    }

    /// Served frames per tier name, summed across replicas.
    pub fn tier_mix(&self) -> BTreeMap<String, u64> {
        let mut mix = BTreeMap::new();
        for r in &self.replicas {
            for t in &r.tiers {
                *mix.entry(t.tier.clone()).or_insert(0) += t.frames;
            }
        }
        mix
    }

    /// Renders the fleet snapshot in Prometheus text exposition format
    /// with labelled series: tenant ledgers (`tenant`, `class`), routing
    /// and controller counters, and per-replica per-tier served frames
    /// (`replica`, `tier`).
    pub fn to_prometheus(&self) -> String {
        use rtoss_obs::prom::{render, PromMetric, PromValue};
        let mut metrics = Vec::new();
        let tenant_counter = |name: &str, help: &str, pick: &dyn Fn(&TenantSnapshot) -> u64| {
            let mut m = Vec::new();
            for t in &self.tenants {
                m.push(PromMetric {
                    name: format!("rtoss_fleet_{name}_total"),
                    help: help.to_string(),
                    labels: vec![
                        ("tenant".into(), t.id.clone()),
                        ("class".into(), t.class.clone()),
                    ],
                    value: PromValue::Counter(pick(t) as f64),
                });
            }
            m
        };
        metrics.extend(tenant_counter(
            "offered",
            "Requests offered by the tenant",
            &|t| t.offered,
        ));
        metrics.extend(tenant_counter(
            "admitted",
            "Requests admitted into a replica queue",
            &|t| t.admitted,
        ));
        metrics.extend(tenant_counter(
            "throttled",
            "Requests refused by the tenant quota",
            &|t| t.throttled,
        ));
        metrics.extend(tenant_counter(
            "shed",
            "Requests shed by pressure admission",
            &|t| t.shed,
        ));
        for (name, help, v) in [
            (
                "routed_affinity",
                "Requests routed to their hash-affine replica",
                self.routed_affinity,
            ),
            (
                "routed_spill",
                "Requests spilled to the least-outstanding replica",
                self.routed_spill,
            ),
            (
                "tier_upgrades",
                "Degradation-controller moves toward denser tiers",
                self.tier_upgrades,
            ),
            (
                "tier_downgrades",
                "Degradation-controller moves toward sparser tiers",
                self.tier_downgrades,
            ),
            ("hot_swaps", "Hot model swaps applied", self.hot_swaps),
        ] {
            metrics.push(PromMetric::counter(
                format!("rtoss_fleet_{name}_total"),
                help,
                v as f64,
            ));
        }
        // Keep every sample of a metric contiguous (exposition-format
        // requirement): all tier gauges first, then all served-frames.
        for r in &self.replicas {
            metrics.push(PromMetric {
                name: "rtoss_fleet_replica_tier".into(),
                help: "Tier index the replica is serving (0 = densest)".into(),
                labels: vec![("replica".into(), r.replica.to_string())],
                value: PromValue::Gauge(r.current_tier as f64),
            });
        }
        for r in &self.replicas {
            for t in &r.tiers {
                metrics.push(PromMetric {
                    name: "rtoss_fleet_served_frames_total".into(),
                    help: "Frames served per replica and accuracy tier".into(),
                    labels: vec![
                        ("replica".into(), r.replica.to_string()),
                        ("tier".into(), t.tier.clone()),
                    ],
                    value: PromValue::Counter(t.frames as f64),
                });
            }
        }
        if let Some(map) = self.served_map_mean() {
            metrics.push(PromMetric::gauge(
                "rtoss_fleet_served_map_mean",
                "Frame-weighted modelled mAP of everything served",
                map,
            ));
        }
        render(&metrics)
    }
}

impl FleetMetrics {
    /// Creates ledgers for the given `(id, class)` tenants.
    pub fn new(tenants: impl IntoIterator<Item = (String, SloClass)>) -> (Self, Vec<SloClass>) {
        let mut m = FleetMetrics::default();
        let mut classes = Vec::new();
        for (id, class) in tenants {
            m.tenants.insert(id, TenantCounters::default());
            classes.push(class);
        }
        (m, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> FleetSnapshot {
        FleetSnapshot {
            tenants: vec![TenantSnapshot {
                id: "t0".into(),
                class: "gold".into(),
                offered: 10,
                admitted: 7,
                throttled: 2,
                shed: 1,
            }],
            replicas: vec![ReplicaSnapshot {
                replica: 0,
                current_tier: 1,
                queue_depth: 3,
                tiers: vec![
                    TierServedSnapshot {
                        tier: "dense".into(),
                        map_estimate: 80.0,
                        batches: 1,
                        frames: 3,
                    },
                    TierServedSnapshot {
                        tier: "2EP".into(),
                        map_estimate: 70.0,
                        batches: 1,
                        frames: 1,
                    },
                ],
                server: rtoss_serve::ServerMetrics::new().snapshot(),
            }],
            routed_affinity: 6,
            routed_spill: 1,
            tier_upgrades: 0,
            tier_downgrades: 1,
            hot_swaps: 0,
        }
    }

    #[test]
    fn served_map_mean_is_frame_weighted() {
        let s = snap();
        let map = s.served_map_mean().unwrap();
        assert!((map - (3.0 * 80.0 + 1.0 * 70.0) / 4.0).abs() < 1e-9);
        assert_eq!(s.tier_mix()["dense"], 3);
    }

    #[test]
    fn snapshot_round_trips_and_exposes_prometheus() {
        let s = snap();
        let json = serde_json::to_string(&s).unwrap();
        let back: FleetSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let prom = s.to_prometheus();
        assert!(prom.contains("rtoss_fleet_offered_total{tenant=\"t0\",class=\"gold\"} 10"));
        assert!(prom.contains("rtoss_fleet_served_frames_total{replica=\"0\",tier=\"2EP\"} 1"));
        // The exposition must parse with the shared lint.
        rtoss_obs::prom::parse(&prom).expect("fleet exposition parses");
    }
}
