//! The fleet: N tiered replicas behind a consistent-hash router with
//! tenant admission and a background degradation controller.
//!
//! Request path (all synchronous, no async runtime):
//!
//! 1. **Quota** — the tenant's token bucket; an empty bucket throttles.
//! 2. **Route** — consistent hash on the stream key for cache affinity;
//!    if the affine replica's queue is above the spill threshold, fall
//!    back to the least-outstanding replica.
//! 3. **Class admission** — the chosen replica's queue-depth fraction
//!    must be below the tenant class's admission bound (Bulk sheds
//!    first, Gold last).
//! 4. **Enqueue** — the replica's own bounded queue applies its
//!    backpressure policy; queue-level refusals also count as fleet
//!    sheds so the tenant ledger stays conserved (RV062).
//!
//! A control thread samples every replica each `control_interval`:
//! queue-depth fraction and the deadline-miss rate since the last tick
//! drive that replica's [`TierController`], and tier changes flip the
//! replica's [`TieredEngine`] atomically. With `controller: None` the
//! fleet serves pinned at tier 0 — the no-degradation baseline the
//! `fleet_bench` overload curves compare against.

use rtoss_obs as obs;
use rtoss_serve::{
    QueueDepthHandle, RequestError, ServeConfig, ServeModel, Server, ServerMetrics, Ticket,
};
use rtoss_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::TieredEngine;
use crate::metrics::{
    FleetMetrics, FleetSnapshot, ReplicaSnapshot, TenantCounters, TenantSnapshot,
    TierServedSnapshot,
};
use crate::ring::HashRing;
use crate::telemetry::{AdmissionOutcome, FleetTelemetry, ReplicaObservation, TelemetryConfig};
use crate::tenant::{SloClass, TenantSpec, TokenBucket};
use crate::tier::{TierController, TierControllerConfig, TierSpec};

/// Why the fleet refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// The tenant id is not registered with the fleet.
    UnknownTenant(String),
    /// The tenant's token bucket is empty.
    Throttled,
    /// Pressure admission refused the request (class gate, or the
    /// replica queue itself). Carries the queue error when the refusal
    /// came from the queue.
    Shed(Option<RequestError>),
    /// The fleet is shutting down.
    ShutDown,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            FleetError::Throttled => write!(f, "tenant quota exhausted: request throttled"),
            FleetError::Shed(Some(e)) => write!(f, "shed at admission: {e}"),
            FleetError::Shed(None) => write!(f, "shed at admission: replica over pressure bound"),
            FleetError::ShutDown => write!(f, "fleet shut down"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Virtual nodes per replica on the routing ring.
    pub vnodes: usize,
    /// Queue-depth fraction of the hash-affine replica above which the
    /// router spills to the least-outstanding replica.
    pub spill_threshold: f64,
    /// Per-replica server template (workers, queue, batching, exec).
    pub serve: ServeConfig,
    /// Degradation controller tuning; `None` pins every replica at
    /// tier 0 (no degradation — the baseline configuration).
    pub controller: Option<TierControllerConfig>,
    /// Control-loop sampling period.
    pub control_interval: Duration,
    /// Registered tenants.
    pub tenants: Vec<TenantSpec>,
    /// SLO telemetry (windowed series, burn-rate alerts, flight
    /// recorder); `None` disables the telemetry plane entirely. Even
    /// when configured, recording is inert until
    /// `rtoss_obs::set_series_enabled` (or `RTOSS_SERIES=1`).
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            vnodes: 32,
            spill_threshold: 0.75,
            serve: ServeConfig::default(),
            controller: Some(TierControllerConfig::default()),
            control_interval: Duration::from_millis(5),
            tenants: vec![TenantSpec::new("default", SloClass::Silver, 1e6, 1e6)],
            telemetry: None,
        }
    }
}

struct TenantState {
    spec: TenantSpec,
    bucket: Mutex<TokenBucket>,
}

struct Replica {
    server: Server,
    engine: Arc<TieredEngine>,
    depth: QueueDepthHandle,
    capacity: usize,
}

/// A running fleet of tiered replicas.
pub struct Fleet {
    replicas: Vec<Replica>,
    ring: HashRing,
    spill_threshold: f64,
    tenants: BTreeMap<String, TenantState>,
    metrics: Arc<FleetMetrics>,
    tier_specs: Vec<TierSpec>,
    serve: ServeConfig,
    stop: Arc<AtomicBool>,
    controller: Option<JoinHandle<()>>,
    telemetry: Option<Arc<FleetTelemetry>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("replicas", &self.replicas.len())
            .field("tiers", &self.tier_specs)
            .field("tenants", &self.tenants.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Fleet {
    /// Starts `config.replicas` replicas, each holding every tier of
    /// `tiers` (densest first; the `Arc`s are shared across replicas —
    /// weights are immutable) behind its own bounded queue and
    /// panic-isolated worker pool.
    ///
    /// `serve.exec.threads` is passed through unchanged to every
    /// replica: for planned models it is the graph-level width of the
    /// levelled plan scheduler (bit-identical at every width), so the
    /// old planned-path `threads=1` clamp — a workaround for the
    /// since-fixed par_scaling collapse (0.09x at 8 threads) — is gone.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration is structurally invalid
    /// (no replicas, empty/duplicate tiers, duplicate tenants, or an
    /// invalid controller config).
    pub fn start(
        tiers: Vec<(TierSpec, Arc<dyn ServeModel>)>,
        config: FleetConfig,
    ) -> Result<Self, String> {
        if config.replicas == 0 {
            return Err("fleet needs at least one replica".into());
        }
        if config.vnodes == 0 {
            return Err("fleet needs at least one vnode per replica".into());
        }
        if let Some(cc) = &config.controller {
            let problems = cc.validate();
            if !problems.is_empty() {
                return Err(format!(
                    "invalid controller config: {}",
                    problems.join("; ")
                ));
            }
        }
        let serve = config.serve.clone();
        let tier_specs: Vec<TierSpec> = tiers.iter().map(|(s, _)| s.clone()).collect();
        let mut replicas = Vec::with_capacity(config.replicas);
        for _ in 0..config.replicas {
            let engine = Arc::new(TieredEngine::new(tiers.clone())?);
            let server = Server::start(engine.clone(), serve.clone());
            let depth = server.queue_depth_handle();
            replicas.push(Replica {
                server,
                engine,
                depth,
                capacity: serve.queue_capacity.max(1),
            });
        }
        let (mut metrics, _) =
            FleetMetrics::new(config.tenants.iter().map(|t| (t.id.clone(), t.class)));
        if metrics.tenants.len() != config.tenants.len() {
            return Err("duplicate tenant ids".into());
        }
        // Ensure every tenant has a ledger even if FleetMetrics::new
        // deduplicated differently-cased ids in the future.
        for t in &config.tenants {
            metrics
                .tenants
                .entry(t.id.clone())
                .or_insert_with(TenantCounters::default);
        }
        let metrics = Arc::new(metrics);
        let now = Instant::now();
        let tenants: BTreeMap<String, TenantState> = config
            .tenants
            .iter()
            .map(|spec| {
                (
                    spec.id.clone(),
                    TenantState {
                        spec: spec.clone(),
                        bucket: Mutex::new(TokenBucket::new(spec.quota_rps, spec.burst, now)),
                    },
                )
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let telemetry = config
            .telemetry
            .map(|tc| FleetTelemetry::new(tc, &config.tenants, config.replicas))
            .transpose()?
            .map(Arc::new);
        let controller = if config.controller.is_some() || telemetry.is_some() {
            Some(spawn_control_loop(
                config.controller,
                telemetry.clone(),
                config.control_interval,
                replicas
                    .iter()
                    .map(|r| ControllerProbe {
                        engine: r.engine.clone(),
                        metrics: r.server.metrics(),
                        depth: r.depth.clone(),
                        capacity: r.capacity,
                    })
                    .collect(),
                metrics.clone(),
                stop.clone(),
            ))
        } else {
            None
        };
        Ok(Fleet {
            replicas,
            ring: HashRing::new(config.replicas, config.vnodes),
            spill_threshold: config.spill_threshold.clamp(0.0, 1.0),
            tenants,
            metrics,
            tier_specs,
            serve,
            stop,
            controller,
            telemetry,
        })
    }

    /// The telemetry plane, when configured. The `Arc` stays valid
    /// past [`shutdown`](Self::shutdown) — clone it first to read the
    /// settled series afterwards.
    pub fn telemetry(&self) -> Option<Arc<FleetTelemetry>> {
        self.telemetry.clone()
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Tier specs shared by every replica, densest first.
    pub fn tier_specs(&self) -> &[TierSpec] {
        &self.tier_specs
    }

    /// The routing ring (for verification and tests).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Execution threads each replica runs with — for planned models,
    /// the graph-level width of the plan scheduler. Always the
    /// configured value; the fleet no longer clamps it.
    pub fn exec_threads(&self) -> usize {
        self.serve.exec.threads
    }

    /// Submits one request on behalf of `tenant`, routed by
    /// `stream_key`. `deadline` overrides the tenant's default budget.
    ///
    /// # Errors
    ///
    /// [`FleetError::Throttled`] when the quota is exhausted,
    /// [`FleetError::Shed`] when pressure admission or the replica
    /// queue refuses, [`FleetError::UnknownTenant`] for an unregistered
    /// id. Every outcome is tallied in the tenant's ledger.
    pub fn submit(
        &self,
        tenant: &str,
        stream_key: &str,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Ticket, FleetError> {
        let state = self
            .tenants
            .get(tenant)
            .ok_or_else(|| FleetError::UnknownTenant(tenant.to_string()))?;
        let ledger = &self.metrics.tenants[tenant];
        ledger.offered.incr();

        let now = Instant::now();
        let admitted_by_quota = {
            let mut bucket = state.bucket.lock().unwrap_or_else(|e| e.into_inner());
            bucket.try_take(now)
        };
        if !admitted_by_quota {
            ledger.throttled.incr();
            self.record_admission(tenant, now, AdmissionOutcome::Throttled);
            obs::emit_instant_lazy(|| {
                (
                    "fleet_throttle",
                    vec![("tenant", obs::ArgValue::Str(tenant.to_string()))],
                )
            });
            return Err(FleetError::Throttled);
        }

        // Route: hash affinity, spilling off an overloaded replica. A
        // ring with no routable vnode degrades to least-outstanding
        // rather than panicking mid-request.
        let affine = match self.ring.route(stream_key) {
            Some(replica) => replica,
            None => self.least_outstanding(),
        };
        let affine_frac = self.depth_frac(affine);
        let (replica, spilled) = if affine_frac >= self.spill_threshold {
            let least = self.least_outstanding();
            (least, least != affine)
        } else {
            (affine, false)
        };

        // Class-pressure admission against the chosen replica.
        let class = state.spec.class;
        if self.depth_frac(replica) >= class.admit_depth_frac() {
            ledger.shed.incr();
            self.record_admission(tenant, now, AdmissionOutcome::Shed);
            obs::emit_instant_lazy(|| {
                (
                    "fleet_shed",
                    vec![
                        ("tenant", obs::ArgValue::Str(tenant.to_string())),
                        ("replica", obs::ArgValue::U64(replica as u64)),
                    ],
                )
            });
            return Err(FleetError::Shed(None));
        }

        let deadline = deadline.or(state.spec.deadline);
        match self.replicas[replica].server.submit(input, deadline) {
            Ok(ticket) => {
                ledger.admitted.incr();
                self.record_admission(tenant, now, AdmissionOutcome::Admitted);
                if spilled {
                    self.metrics.routed_spill.incr();
                } else {
                    self.metrics.routed_affinity.incr();
                }
                obs::emit_instant_lazy(|| {
                    (
                        "fleet_route",
                        vec![
                            ("tenant", obs::ArgValue::Str(tenant.to_string())),
                            ("replica", obs::ArgValue::U64(replica as u64)),
                            ("spill", obs::ArgValue::U64(spilled as u64)),
                        ],
                    )
                });
                Ok(ticket)
            }
            Err(RequestError::ShutDown) => {
                // Shutdown refusals are not pressure sheds; keep the
                // ledger conserved by folding them into `shed` anyway
                // (the request was offered and not admitted), but
                // surface the distinct error.
                ledger.shed.incr();
                self.record_admission(tenant, now, AdmissionOutcome::Shed);
                Err(FleetError::ShutDown)
            }
            Err(e) => {
                ledger.shed.incr();
                self.record_admission(tenant, now, AdmissionOutcome::Shed);
                Err(FleetError::Shed(Some(e)))
            }
        }
    }

    /// Mirrors one ledger outcome into the telemetry series (same
    /// `Instant`, so every lane of a request lands in the same
    /// window).
    fn record_admission(&self, tenant: &str, at: Instant, outcome: AdmissionOutcome) {
        if let Some(tel) = &self.telemetry {
            tel.record_admission(tenant, obs::ts_ns(at), outcome);
        }
    }

    /// Hot-swaps the model serving tier `tier` on **every** replica.
    /// Each incoming model is prewarmed for all micro-batch sizes
    /// before it becomes visible (same shapes `Server::start` prewarms).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range tier.
    pub fn swap_tier_model(&self, tier: usize, model: Arc<dyn ServeModel>) -> Result<(), String> {
        let shapes = prewarm_shapes(&self.serve);
        for r in &self.replicas {
            r.engine
                .swap_model(tier, model.clone(), &shapes, &self.serve.exec)?;
        }
        self.metrics.hot_swaps.incr();
        obs::emit_instant_lazy(|| {
            (
                "fleet_hot_swap",
                vec![("tier", obs::ArgValue::U64(tier as u64))],
            )
        });
        Ok(())
    }

    /// Point-in-time fleet snapshot (tenant ledgers, per-replica server
    /// metrics, served-tier mix, routing/controller tallies).
    pub fn snapshot(&self) -> FleetSnapshot {
        let tenants = self
            .tenants
            .iter()
            .map(|(id, state)| {
                let c = &self.metrics.tenants[id];
                TenantSnapshot {
                    id: id.clone(),
                    class: state.spec.class.label().to_string(),
                    offered: c.offered.get(),
                    admitted: c.admitted.get(),
                    throttled: c.throttled.get(),
                    shed: c.shed.get(),
                }
            })
            .collect();
        let replicas = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaSnapshot {
                replica: i,
                current_tier: r.engine.current_tier(),
                queue_depth: r.depth.len(),
                tiers: r
                    .engine
                    .served()
                    .into_iter()
                    .map(|(tier, map_estimate, batches, frames)| TierServedSnapshot {
                        tier,
                        map_estimate,
                        batches,
                        frames,
                    })
                    .collect(),
                server: r.server.metrics().snapshot(),
            })
            .collect();
        FleetSnapshot {
            tenants,
            replicas,
            routed_affinity: self.metrics.routed_affinity.get(),
            routed_spill: self.metrics.routed_spill.get(),
            tier_upgrades: self.metrics.tier_upgrades.get(),
            tier_downgrades: self.metrics.tier_downgrades.get(),
            hot_swaps: self.metrics.hot_swaps.get(),
        }
    }

    /// Stops the controller, drains and joins every replica, and
    /// returns the final snapshot (taken *after* every ticket has
    /// resolved, so the terminal counters are settled).
    pub fn shutdown(mut self) -> FleetSnapshot {
        self.stop_controller();
        // Keep the engine/metrics handles alive past the servers so the
        // final snapshot sees fully-settled counters.
        let kept: Vec<(Arc<TieredEngine>, Arc<ServerMetrics>)> = self
            .replicas
            .iter()
            .map(|r| (r.engine.clone(), r.server.metrics()))
            .collect();
        for r in self.replicas.drain(..) {
            r.server.shutdown();
        }
        let tenants = self
            .tenants
            .iter()
            .map(|(id, state)| {
                let c = &self.metrics.tenants[id];
                TenantSnapshot {
                    id: id.clone(),
                    class: state.spec.class.label().to_string(),
                    offered: c.offered.get(),
                    admitted: c.admitted.get(),
                    throttled: c.throttled.get(),
                    shed: c.shed.get(),
                }
            })
            .collect();
        let replicas = kept
            .into_iter()
            .enumerate()
            .map(|(i, (engine, metrics))| ReplicaSnapshot {
                replica: i,
                current_tier: engine.current_tier(),
                queue_depth: 0,
                tiers: engine
                    .served()
                    .into_iter()
                    .map(|(tier, map_estimate, batches, frames)| TierServedSnapshot {
                        tier,
                        map_estimate,
                        batches,
                        frames,
                    })
                    .collect(),
                server: metrics.snapshot(),
            })
            .collect();
        FleetSnapshot {
            tenants,
            replicas,
            routed_affinity: self.metrics.routed_affinity.get(),
            routed_spill: self.metrics.routed_spill.get(),
            tier_upgrades: self.metrics.tier_upgrades.get(),
            tier_downgrades: self.metrics.tier_downgrades.get(),
            hot_swaps: self.metrics.hot_swaps.get(),
        }
    }

    fn stop_controller(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.controller.take() {
            let _ = h.join();
        }
    }

    fn depth_frac(&self, replica: usize) -> f64 {
        let r = &self.replicas[replica];
        r.depth.len() as f64 / r.capacity as f64
    }

    fn least_outstanding(&self) -> usize {
        self.replicas
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.depth.len())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Prewarm shapes matching `Server::start`'s policy: every micro-batch
/// size `1..=max_batch` of the configured single-frame shape.
fn prewarm_shapes(serve: &ServeConfig) -> Vec<Vec<usize>> {
    let Some(frame) = &serve.prewarm else {
        return Vec::new();
    };
    let Some((&frames, rest)) = frame.split_first() else {
        return Vec::new();
    };
    (1..=serve.max_batch.max(1))
        .map(|b| {
            let mut shape = Vec::with_capacity(frame.len());
            shape.push(frames.max(1) * b);
            shape.extend_from_slice(rest);
            shape
        })
        .collect()
}

struct ControllerProbe {
    engine: Arc<TieredEngine>,
    metrics: Arc<ServerMetrics>,
    depth: QueueDepthHandle,
    capacity: usize,
}

fn spawn_control_loop(
    cfg: Option<TierControllerConfig>,
    telemetry: Option<Arc<FleetTelemetry>>,
    interval: Duration,
    probes: Vec<ControllerProbe>,
    fleet_metrics: Arc<FleetMetrics>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut controllers: Option<Vec<TierController>> = cfg.map(|cc| {
            probes
                .iter()
                .map(|p| TierController::new(cc, p.engine.num_tiers()))
                .collect()
        });
        // Per-replica (completed, deadline_missed) at the previous tick.
        let mut last: Vec<(u64, u64)> = probes.iter().map(|_| (0, 0)).collect();
        while !stop.load(Ordering::Acquire) {
            std::thread::sleep(interval);
            let now = Instant::now();
            let ts = obs::ts_ns(now);
            if let Some(controllers) = controllers.as_mut() {
                for (i, probe) in probes.iter().enumerate() {
                    let completed = probe.metrics.completed.get();
                    let missed = probe.metrics.deadline_missed.get();
                    let (c0, m0) = last[i];
                    let dc = completed.saturating_sub(c0);
                    let dm = missed.saturating_sub(m0);
                    last[i] = (completed, missed);
                    let miss_sample = if dc == 0 { 0.0 } else { dm as f64 / dc as f64 };
                    let queue_frac = probe.depth.len() as f64 / probe.capacity as f64;
                    let before = controllers[i].level();
                    let after = controllers[i].observe(queue_frac, miss_sample, now);
                    if after != before {
                        if after > before {
                            fleet_metrics.tier_downgrades.incr();
                        } else {
                            fleet_metrics.tier_upgrades.incr();
                        }
                        probe.engine.set_tier(after);
                        if let Some(tel) = &telemetry {
                            tel.record_tier_change(ts, i, before, after);
                        }
                        obs::emit_instant_lazy(|| {
                            (
                                "tier_change",
                                vec![
                                    ("replica", obs::ArgValue::U64(i as u64)),
                                    ("from", obs::ArgValue::U64(before as u64)),
                                    ("to", obs::ArgValue::U64(after as u64)),
                                ],
                            )
                        });
                    }
                }
            }
            if let Some(tel) = &telemetry {
                let observations: Vec<ReplicaObservation> = probes
                    .iter()
                    .map(|p| ReplicaObservation {
                        queue_frac: p.depth.len() as f64 / p.capacity as f64,
                        tier: p.engine.current_tier(),
                        metrics: &p.metrics,
                    })
                    .collect();
                tel.tick(ts, &observations);
            }
        }
    })
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop_controller();
        for r in self.replicas.drain(..) {
            r.server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_serve::BackpressurePolicy;
    use rtoss_tensor::ExecConfig;

    struct Echo {
        delay: Duration,
        planned: bool,
    }

    impl ServeModel for Echo {
        fn run_batch(&self, batch: &Tensor, _exec: &ExecConfig) -> Result<Vec<Tensor>, String> {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            Ok(vec![batch.clone()])
        }

        fn plans(&self) -> bool {
            self.planned
        }
    }

    fn echo(delay: Duration) -> Arc<dyn ServeModel> {
        Arc::new(Echo {
            delay,
            planned: false,
        })
    }

    fn tiers(delay: Duration) -> Vec<(TierSpec, Arc<dyn ServeModel>)> {
        vec![
            (TierSpec::new("dense", 75.0), echo(delay)),
            (TierSpec::new("3EP", 74.0), echo(delay / 2)),
            (TierSpec::new("2EP", 72.0), echo(delay / 4)),
        ]
    }

    #[test]
    fn serves_tenants_and_conserves_the_ledger() {
        let fleet = Fleet::start(
            tiers(Duration::ZERO),
            FleetConfig {
                replicas: 2,
                tenants: vec![
                    TenantSpec::new("gold", SloClass::Gold, 1e6, 1e6),
                    TenantSpec::new("bulk", SloClass::Bulk, 1e6, 1e6),
                ],
                controller: None,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let mut tickets = Vec::new();
        for i in 0..40 {
            let tenant = if i % 2 == 0 { "gold" } else { "bulk" };
            let key = format!("{tenant}/stream-{}", i % 4);
            tickets.push(
                fleet
                    .submit(tenant, &key, Tensor::zeros(&[1, 1, 4, 4]), None)
                    .unwrap(),
            );
        }
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert!(matches!(
            fleet.submit("nobody", "k", Tensor::zeros(&[1, 1, 4, 4]), None),
            Err(FleetError::UnknownTenant(_))
        ));
        let snap = fleet.shutdown();
        for t in &snap.tenants {
            assert_eq!(t.offered, t.accounted(), "ledger leak for {}", t.id);
            assert_eq!(t.offered, 20);
            assert_eq!(t.admitted, 20);
        }
        assert_eq!(snap.routed_affinity + snap.routed_spill, 40);
        // Pinned fleet: everything served on tier 0.
        assert_eq!(snap.tier_mix()["dense"], 40);
        assert_eq!(snap.tier_mix()["3EP"], 0);
        assert!((snap.served_map_mean().unwrap() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn quota_throttles_and_stays_conserved() {
        let fleet = Fleet::start(
            tiers(Duration::ZERO),
            FleetConfig {
                replicas: 1,
                // 2-token burst, negligible refill: 3rd request throttles.
                tenants: vec![TenantSpec::new("t", SloClass::Silver, 1e-6, 2.0)],
                controller: None,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let a = fleet.submit("t", "k", Tensor::zeros(&[1, 1, 4, 4]), None);
        let b = fleet.submit("t", "k", Tensor::zeros(&[1, 1, 4, 4]), None);
        let c = fleet.submit("t", "k", Tensor::zeros(&[1, 1, 4, 4]), None);
        assert!(a.is_ok() && b.is_ok());
        assert!(matches!(c, Err(FleetError::Throttled)));
        a.unwrap().wait().unwrap();
        b.unwrap().wait().unwrap();
        let snap = fleet.shutdown();
        let t = &snap.tenants[0];
        assert_eq!((t.offered, t.admitted, t.throttled, t.shed), (3, 2, 1, 0));
    }

    #[test]
    fn overload_degrades_tiers_and_recovery_upgrades() {
        let fleet = Fleet::start(
            tiers(Duration::from_millis(4)),
            FleetConfig {
                replicas: 1,
                serve: ServeConfig {
                    workers: 1,
                    queue_capacity: 8,
                    max_batch: 1,
                    batch_timeout: Duration::ZERO,
                    policy: BackpressurePolicy::ShedExpired,
                    ..ServeConfig::default()
                },
                controller: Some(TierControllerConfig {
                    dwell: Duration::from_millis(2),
                    ..TierControllerConfig::default()
                }),
                control_interval: Duration::from_millis(1),
                tenants: vec![TenantSpec::new("cam", SloClass::Gold, 1e6, 1e6)],
                ..FleetConfig::default()
            },
        )
        .unwrap();
        // Flood far beyond the replica's capacity with tight deadlines.
        let mut tickets = Vec::new();
        for i in 0..300 {
            if let Ok(t) = fleet.submit(
                "cam",
                &format!("cam/{}", i % 3),
                Tensor::zeros(&[1, 1, 4, 4]),
                Some(Duration::from_millis(8)),
            ) {
                tickets.push(t);
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        // Give the controller time to observe the now-idle fleet.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = fleet.snapshot();
            if (snap.tier_downgrades >= 1 && snap.replicas[0].current_tier == 0)
                || Instant::now() > deadline
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = fleet.shutdown();
        assert!(
            snap.tier_downgrades >= 1,
            "sustained overload never degraded: {snap:?}"
        );
        assert!(
            snap.tier_upgrades >= 1,
            "pressure cleared but the fleet never upgraded: {snap:?}"
        );
        assert_eq!(snap.replicas[0].current_tier, 0, "did not recover to dense");
        // Some work was actually served on a sparser tier.
        let mix = snap.tier_mix();
        assert!(mix["3EP"] + mix["2EP"] > 0, "no degraded serving: {mix:?}");
    }

    #[test]
    fn planned_models_keep_configured_threads() {
        // The old planned-path guard clamped threads to 1 around the
        // par_scaling collapse; with the levelled plan scheduler the
        // configured width must survive for planned and unplanned
        // models alike.
        let planned: Vec<(TierSpec, Arc<dyn ServeModel>)> = vec![(
            TierSpec::new("dense", 75.0),
            Arc::new(Echo {
                delay: Duration::ZERO,
                planned: true,
            }) as _,
        )];
        let fleet = Fleet::start(
            planned,
            FleetConfig {
                replicas: 1,
                serve: ServeConfig {
                    exec: ExecConfig::with_threads(8),
                    ..ServeConfig::default()
                },
                controller: None,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(fleet.exec_threads(), 8);
        drop(fleet);
        let fleet = Fleet::start(
            tiers(Duration::ZERO),
            FleetConfig {
                replicas: 1,
                serve: ServeConfig {
                    exec: ExecConfig::with_threads(4),
                    ..ServeConfig::default()
                },
                controller: None,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(fleet.exec_threads(), 4);
    }

    #[test]
    fn hot_swap_reaches_every_replica() {
        let fleet = Fleet::start(
            tiers(Duration::ZERO),
            FleetConfig {
                replicas: 3,
                controller: None,
                tenants: vec![TenantSpec::new("t", SloClass::Gold, 1e6, 1e6)],
                ..FleetConfig::default()
            },
        )
        .unwrap();
        fleet.swap_tier_model(0, echo(Duration::ZERO)).unwrap();
        assert!(fleet.swap_tier_model(9, echo(Duration::ZERO)).is_err());
        let snap = fleet.shutdown();
        assert_eq!(snap.hot_swaps, 1);
    }

    #[test]
    fn structurally_invalid_configs_are_refused() {
        assert!(Fleet::start(
            tiers(Duration::ZERO),
            FleetConfig {
                replicas: 0,
                ..FleetConfig::default()
            }
        )
        .is_err());
        assert!(Fleet::start(
            tiers(Duration::ZERO),
            FleetConfig {
                controller: Some(TierControllerConfig {
                    upgrade_below: 0.9,
                    downgrade_above: 0.2,
                    ..TierControllerConfig::default()
                }),
                ..FleetConfig::default()
            }
        )
        .is_err());
        assert!(Fleet::start(Vec::new(), FleetConfig::default()).is_err());
    }
}
