//! Tenant SLO classes and per-tenant token-bucket quotas.
//!
//! A tenant is admitted through two gates: a **token bucket** (mean
//! rate + burst headroom — exceeding it counts as *throttled*) and a
//! **class-pressure gate** (each SLO class may only enter a replica
//! whose queue is below a class-specific depth fraction, so Bulk work
//! is shed before Silver before Gold when the fleet is loaded). Both
//! decisions are made synchronously at submit time and tallied so that
//! `offered == admitted + throttled + shed` holds exactly (RV062).

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Service-level class of a tenant, ordered best-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SloClass {
    /// Latency-critical traffic: admitted while any queue space remains.
    Gold,
    /// Standard traffic: admitted while queues are below ~85 % depth.
    Silver,
    /// Best-effort batch traffic: first to be shed under pressure.
    Bulk,
}

impl SloClass {
    /// Queue-depth fraction (0..=1) of the routed replica above which
    /// this class is refused admission. Gold is only refused by the
    /// queue itself.
    pub fn admit_depth_frac(self) -> f64 {
        match self {
            SloClass::Gold => 1.0,
            SloClass::Silver => 0.85,
            SloClass::Bulk => 0.60,
        }
    }

    /// Stable lowercase label (metrics, traces).
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Gold => "gold",
            SloClass::Silver => "silver",
            SloClass::Bulk => "bulk",
        }
    }
}

/// Static description of one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id — also the default routing key prefix.
    pub id: String,
    /// SLO class controlling pressure admission.
    pub class: SloClass,
    /// Sustained quota, requests/second (token-bucket refill rate).
    pub quota_rps: f64,
    /// Burst allowance, requests (token-bucket capacity).
    pub burst: f64,
    /// Default per-request deadline when the caller passes none.
    pub deadline: Option<Duration>,
}

impl TenantSpec {
    /// Convenience constructor with a class-typical deadline.
    pub fn new(id: impl Into<String>, class: SloClass, quota_rps: f64, burst: f64) -> Self {
        let deadline = match class {
            SloClass::Gold => Some(Duration::from_millis(50)),
            SloClass::Silver => Some(Duration::from_millis(150)),
            SloClass::Bulk => Some(Duration::from_millis(500)),
        };
        TenantSpec {
            id: id.into(),
            class,
            quota_rps,
            burst,
            deadline,
        }
    }
}

/// Classic token bucket: `rate` tokens/second refill up to `capacity`;
/// each admitted request takes one token. Time is passed in explicitly
/// so tests and fixtures are deterministic.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    rate: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// Creates a full bucket refilling at `rate`/s up to `capacity`.
    pub fn new(rate: f64, capacity: f64, now: Instant) -> Self {
        let capacity = capacity.max(1.0);
        TokenBucket {
            capacity,
            tokens: capacity,
            rate: rate.max(0.0),
            last_refill: now,
        }
    }

    /// Takes one token if available at `now`; `false` means throttle.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (for reporting).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_burst_then_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 3.0, t0);
        // Burst of 3 admitted instantly, the 4th throttled.
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0));
        // 100 ms at 10 rps refills exactly one token.
        assert!(b.try_take(t0 + Duration::from_millis(100)));
        assert!(!b.try_take(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1000.0, 2.0, t0);
        // A long idle period must not bank more than `capacity`.
        let later = t0 + Duration::from_secs(60);
        assert!(b.try_take(later));
        assert!(b.try_take(later));
        assert!(!b.try_take(later));
    }

    #[test]
    fn classes_order_admission_pressure() {
        assert!(SloClass::Gold.admit_depth_frac() > SloClass::Silver.admit_depth_frac());
        assert!(SloClass::Silver.admit_depth_frac() > SloClass::Bulk.admit_depth_frac());
    }
}
