//! Sharded multi-replica serving with tenant SLO classes and
//! accuracy-tier overload degradation.
//!
//! `rtoss-serve` gives one model one queue and one worker pool. This
//! crate scales that out and adds the R-TOSS-specific overload story:
//! when a replica can't keep its deadlines, it doesn't just shed —
//! it *degrades*, swapping the serving engine to a sparser R-TOSS
//! variant (3EP, then 2EP) that runs faster at a small, *modelled* mAP
//! cost, and swaps back when pressure clears.
//!
//! Pieces (each its own module, composable and separately testable):
//!
//! - [`ring`] — consistent-hash router (FNV-1a, virtual nodes) keyed on
//!   a stream/tenant key for plan-cache affinity, with
//!   least-outstanding spill when the affine replica is saturated;
//! - [`tenant`] — SLO classes (Gold/Silver/Bulk), token-bucket quotas,
//!   and class-ordered pressure admission;
//! - [`tier`] — the hysteresis degradation controller: pressure =
//!   max(queue-depth fraction, deadline-miss EWMA), dwell-limited
//!   transitions, a pure state machine checkable by `rtoss-verify`
//!   (RV061);
//! - [`engine`] — [`TieredEngine`]: one replica's dense→3EP→2EP variant
//!   stack behind a single [`ServeModel`](rtoss_serve::ServeModel)
//!   front, with prewarmed atomic hot swap;
//! - [`fleet`] — the orchestrator tying it together, with a
//!   conservation-accounted tenant ledger
//!   (`offered == admitted + throttled + shed`, RV062);
//! - [`metrics`] — per-tenant / per-tier snapshots with Prometheus
//!   exposition;
//! - [`telemetry`] — the SLO telemetry plane: per-tenant windowed
//!   admission series, per-replica queue/tier gauges, multi-window
//!   burn-rate monitors with firing/resolved alerts, and a black-box
//!   flight recorder dumping post-mortem JSON on breach (RV080–RV083);
//! - [`loadgen`] — multi-tenant open-loop driver (Poisson or bursty
//!   arrivals) producing per-tenant deadline-hit rates.
//!
//! # Example
//!
//! ```
//! use rtoss_fleet::{Fleet, FleetConfig, SloClass, TenantSpec, TierSpec};
//! use rtoss_serve::{ServeConfig, ServeModel};
//! use rtoss_tensor::{ExecConfig, Tensor};
//! use std::sync::Arc;
//!
//! struct Echo;
//! impl ServeModel for Echo {
//!     fn run_batch(&self, batch: &Tensor, _exec: &ExecConfig)
//!         -> Result<Vec<Tensor>, String> {
//!         Ok(vec![batch.clone()])
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = Fleet::start(
//!     vec![
//!         (TierSpec::new("dense", 75.0), Arc::new(Echo) as _),
//!         (TierSpec::new("2EP", 72.0), Arc::new(Echo) as _),
//!     ],
//!     FleetConfig {
//!         replicas: 2,
//!         tenants: vec![TenantSpec::new("cam", SloClass::Gold, 1e6, 1e6)],
//!         ..FleetConfig::default()
//!     },
//! )?;
//! let ticket = fleet.submit("cam", "cam/stream-0", Tensor::zeros(&[1, 1, 4, 4]), None)?;
//! assert!(ticket.wait().is_ok());
//! let snapshot = fleet.shutdown();
//! assert_eq!(snapshot.tenants[0].offered, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fleet;
pub mod loadgen;
pub mod metrics;
pub mod ring;
pub mod telemetry;
pub mod tenant;
pub mod tier;

pub use engine::TieredEngine;
pub use fleet::{Fleet, FleetConfig, FleetError};
pub use metrics::{
    FleetMetrics, FleetSnapshot, ReplicaSnapshot, TenantCounters, TenantSnapshot,
    TierServedSnapshot,
};
pub use ring::HashRing;
pub use telemetry::{
    AdmissionOutcome, AdmissionTotals, AdmissionWindow, AlertRecord, BurnPoint, FleetTelemetry,
    FlightDump, GaugeWindow, PolicySnapshot, ReplicaObservation, ReplicaTelemetrySnapshot,
    TelemetryConfig, TelemetrySnapshot, TenantTelemetrySnapshot,
};
pub use tenant::{SloClass, TenantSpec, TokenBucket};
pub use tier::{TierController, TierControllerConfig, TierSpec};
