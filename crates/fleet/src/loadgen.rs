//! Multi-tenant open-loop load generation for fleets.
//!
//! Extends the serve crate's seeded open-loop driver with tenant and
//! stream tagging: each arrival is assigned a tenant (weighted draw)
//! and a stream key (bounded pool per tenant, so consistent-hash
//! affinity is observable), then replayed against [`Fleet::submit`].
//! Arrival schedules come from either [`poisson_schedule`] or
//! [`bursty_schedule`] — both seeded, both reproducible.

use crate::fleet::{Fleet, FleetError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtoss_serve::{RequestError, Ticket};
use rtoss_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

pub use rtoss_serve::loadgen::{bursty_schedule, poisson_schedule};

/// Relative traffic weight of one tenant in a generated workload.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant id (must be registered with the fleet).
    pub id: String,
    /// Relative share of arrivals (weights are normalized).
    pub weight: f64,
    /// Number of distinct stream keys the tenant cycles through.
    pub streams: usize,
}

/// Per-tenant outcome tallies of one fleet load run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant id.
    pub id: String,
    /// Requests offered on behalf of this tenant.
    pub offered: u64,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Completed requests that beat their deadline.
    pub deadline_hit: u64,
    /// Requests throttled by the tenant quota.
    pub throttled: u64,
    /// Requests shed at admission or in the queue.
    pub shed: u64,
    /// Requests that failed (model error or shutdown).
    pub failed: u64,
}

/// Outcome of one multi-tenant open-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetLoadSummary {
    /// Total requests offered.
    pub offered: u64,
    /// Total completed.
    pub completed: u64,
    /// Completed requests that beat their deadline.
    pub deadline_hit: u64,
    /// Per-tenant breakdown, in tenant-id order.
    pub tenants: Vec<TenantOutcome>,
    /// Mean end-to-end latency over completed requests, milliseconds.
    pub mean_ms: f64,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Wall-clock duration, seconds.
    pub wall_s: f64,
}

impl FleetLoadSummary {
    /// Fraction of *offered* requests that completed within deadline —
    /// the fleet-level goodput measure the degradation curves plot
    /// (shed and throttled requests count against it).
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.deadline_hit as f64 / self.offered as f64
        }
    }
}

/// Replays `schedule` against `fleet`, drawing a tenant for each
/// arrival by weight and a stream key from the tenant's pool (both from
/// `seed`, independent of the schedule's seed), then waits for every
/// ticket and tallies outcomes per tenant.
pub fn run_fleet_open_loop(
    fleet: &Fleet,
    schedule: &[Duration],
    mix: &[TenantLoad],
    seed: u64,
    mut make_input: impl FnMut(usize) -> Tensor,
) -> FleetLoadSummary {
    assert!(!mix.is_empty(), "tenant mix must not be empty");
    let total_weight: f64 = mix.iter().map(|t| t.weight.max(0.0)).sum();
    assert!(total_weight > 0.0, "tenant mix needs positive weight");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tenants: BTreeMap<String, TenantOutcome> = mix
        .iter()
        .map(|t| {
            (
                t.id.clone(),
                TenantOutcome {
                    id: t.id.clone(),
                    ..TenantOutcome::default()
                },
            )
        })
        .collect();

    let start = Instant::now();
    let mut tickets: Vec<Option<(String, Ticket)>> = Vec::with_capacity(schedule.len());
    for (i, &offset) in schedule.iter().enumerate() {
        let now = start.elapsed();
        if offset > now {
            std::thread::sleep(offset - now);
        }
        // Weighted tenant draw.
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut chosen = &mix[0];
        for t in mix {
            let w = t.weight.max(0.0);
            if pick < w {
                chosen = t;
                break;
            }
            pick -= w;
        }
        let stream = rng.gen_range(0..chosen.streams.max(1));
        let key = format!("{}/stream-{stream}", chosen.id);
        let Some(outcome) = tenants.get_mut(&chosen.id) else {
            tickets.push(None);
            continue;
        };
        outcome.offered += 1;
        match fleet.submit(&chosen.id, &key, make_input(i), None) {
            Ok(ticket) => tickets.push(Some((chosen.id.clone(), ticket))),
            Err(e) => {
                match e {
                    FleetError::Throttled => outcome.throttled += 1,
                    FleetError::Shed(_) => outcome.shed += 1,
                    _ => outcome.failed += 1,
                }
                tickets.push(None);
            }
        }
    }

    let mut latencies_ms: Vec<f64> = Vec::new();
    for (tenant, ticket) in tickets.into_iter().flatten() {
        let Some(outcome) = tenants.get_mut(&tenant) else {
            continue;
        };
        match ticket.wait() {
            Ok(resp) => {
                outcome.completed += 1;
                if !resp.deadline_missed {
                    outcome.deadline_hit += 1;
                }
                latencies_ms.push(resp.timing.total().as_secs_f64() * 1e3);
            }
            Err(RequestError::Shed) => outcome.shed += 1,
            Err(_) => outcome.failed += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    // Nearest-rank percentile over raw samples, same rule as
    // rtoss-serve's load generator (see its LoadSummary docs for how
    // it relates to the histogram's bucket-upper-bound estimate).
    let pct = |q: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let idx =
            ((q * latencies_ms.len() as f64).ceil() as usize).clamp(1, latencies_ms.len()) - 1;
        latencies_ms[idx]
    };
    FleetLoadSummary {
        offered: schedule.len() as u64,
        completed: tenants.values().map(|t| t.completed).sum(),
        deadline_hit: tenants.values().map(|t| t.deadline_hit).sum(),
        tenants: tenants.into_values().collect(),
        mean_ms: if latencies_ms.is_empty() {
            0.0
        } else {
            latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
        },
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        wall_s,
    }
}
