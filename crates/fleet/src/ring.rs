//! Consistent-hash routing ring over replica indices.
//!
//! Stream/tenant keys hash onto a ring of virtual nodes (FNV-1a with an
//! avalanche finalizer, no external dependency), so a key's replica
//! assignment is stable across
//! requests — cache affinity for per-stream state — and adding or
//! removing a replica only remaps the keys that landed on its arcs.
//! Routing is fully deterministic: the ring is a pure function of
//! `(replica count, vnode count)`, pinned by the RV060 verify pass.

/// 64-bit FNV-1a over a byte string. Chosen for determinism and zero
/// dependencies, not cryptographic strength — ring placement only needs
/// a stable, well-spread hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Ring-placement hash: FNV-1a followed by a 64-bit avalanche finalizer
/// (murmur3's fmix64). Raw FNV-1a has no final mixing step, so inputs
/// differing only in their last characters — exactly the shape of
/// `replica-N/vnode-M` labels and `stream-N` keys — land clustered on
/// the ring and can starve whole replicas; the finalizer spreads every
/// input bit across all 64 output bits.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Consistent-hash ring mapping string keys to replica indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring point, replica index)` sorted by point.
    points: Vec<(u64, usize)>,
    /// Virtual nodes requested per replica (kept for verification:
    /// RV060 flags replicas with zero vnodes — they are unreachable).
    vnode_counts: Vec<usize>,
}

impl HashRing {
    /// Builds a ring with `replicas` replicas, `vnodes` virtual nodes
    /// each.
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        Self::with_vnode_counts(&vec![vnodes; replicas])
    }

    /// Builds a ring with an explicit vnode count per replica. Mainly
    /// for tests and corruption fixtures (a zero entry makes that
    /// replica unreachable, which RV060 detects).
    pub fn with_vnode_counts(counts: &[usize]) -> Self {
        let mut points = Vec::with_capacity(counts.iter().sum());
        for (replica, &n) in counts.iter().enumerate() {
            for v in 0..n {
                let label = format!("replica-{replica}/vnode-{v}");
                points.push((ring_hash(label.as_bytes()), replica));
            }
        }
        // Sort by point; break (astronomically unlikely) hash ties by
        // replica index so the ring order never depends on sort
        // stability.
        points.sort_unstable();
        HashRing {
            points,
            vnode_counts: counts.to_vec(),
        }
    }

    /// Number of replicas the ring was built for.
    pub fn replicas(&self) -> usize {
        self.vnode_counts.len()
    }

    /// Virtual nodes requested per replica, in replica order.
    pub fn vnode_counts(&self) -> &[usize] {
        &self.vnode_counts
    }

    /// All ring points as `(point, replica)`, sorted by point.
    pub fn points(&self) -> &[(u64, usize)] {
        &self.points
    }

    /// Routes a key: the replica owning the first ring point at or
    /// after the key's hash (wrapping around). Returns `None` for an
    /// empty ring.
    pub fn route(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = ring_hash(key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, replica) = self.points[idx % self.points.len()];
        Some(replica)
    }

    /// Fraction of `samples` synthetic keys routed to each replica —
    /// the load-balance view RV060 checks for coverage.
    pub fn coverage(&self, samples: usize) -> Vec<f64> {
        let mut hits = vec![0u64; self.replicas()];
        for i in 0..samples {
            if let Some(r) = self.route(&format!("coverage-key-{i}")) {
                hits[r] += 1;
            }
        }
        hits.into_iter()
            .map(|h| {
                if samples == 0 {
                    0.0
                } else {
                    h as f64 / samples as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_stable_across_builds() {
        let a = HashRing::new(4, 32);
        let b = HashRing::new(4, 32);
        for i in 0..200 {
            let key = format!("stream-{i}");
            assert_eq!(a.route(&key), b.route(&key));
            assert_eq!(a.route(&key), a.route(&key));
        }
    }

    #[test]
    fn every_replica_receives_traffic() {
        let ring = HashRing::new(5, 32);
        let cov = ring.coverage(2000);
        assert_eq!(cov.len(), 5);
        for (r, &frac) in cov.iter().enumerate() {
            assert!(frac > 0.02, "replica {r} starved: {frac}");
        }
        let total: f64 = cov.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn removing_a_replica_only_remaps_its_keys() {
        let big = HashRing::new(4, 64);
        let small = HashRing::with_vnode_counts(&[64, 64, 64, 0]);
        let mut moved = 0usize;
        let n = 1000;
        for i in 0..n {
            let key = format!("stream-{i}");
            let before = big.route(&key).unwrap();
            let after = small.route(&key).unwrap();
            if before != 3 {
                // Keys not on the removed replica must not move.
                assert_eq!(before, after, "key {key} moved needlessly");
            } else {
                moved += 1;
            }
        }
        // Roughly a quarter of the keys lived on the removed replica.
        assert!((100..=400).contains(&moved), "moved {moved}");
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::with_vnode_counts(&[]);
        assert_eq!(ring.route("anything"), None);
        assert!(ring.coverage(10).is_empty());
    }
}
