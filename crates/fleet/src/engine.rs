//! Tiered engine: one replica's dense→3EP→2EP variant stack with
//! atomic hot swap.
//!
//! A [`TieredEngine`] implements [`ServeModel`] so it drops straight
//! into the existing `rtoss-serve` worker pool. Each micro-batch
//! executes on the variant selected by the replica's degradation
//! controller at that moment (an atomic tier index — no lock on the
//! request path beyond one uncontended `RwLock` read to clone the
//! model `Arc`). Per-tier served counts feed the fleet's served-tier
//! mix and modelled-mAP reporting.
//!
//! **Hot swap**: [`TieredEngine::swap_model`] prewarms the incoming
//! model's per-shape artifacts *before* publishing it, then replaces
//! the `Arc` under a write lock held only for the pointer store — the
//! std-only equivalent of an atomic `Arc` swap (std has no `AtomicArc`;
//! an uncontended `RwLock` read is a single atomic acquire). In-flight
//! batches keep the old `Arc` alive until they finish.

use rtoss_serve::{ExecConfig, ServeModel};
use rtoss_tensor::Tensor;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::tier::TierSpec;

/// One tier's slot: spec + hot-swappable model.
struct TierSlot {
    spec: TierSpec,
    model: RwLock<Arc<dyn ServeModel>>,
    batches: AtomicU64,
    frames: AtomicU64,
}

/// A replica's stack of accuracy-tier variants behind one [`ServeModel`]
/// front. Tier 0 is the densest; higher tiers are sparser and faster.
pub struct TieredEngine {
    tiers: Vec<TierSlot>,
    current: AtomicUsize,
}

impl std::fmt::Debug for TieredEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredEngine")
            .field("tiers", &self.tier_specs())
            .field("current", &self.current_tier())
            .finish()
    }
}

impl TieredEngine {
    /// Builds the engine from `(spec, model)` pairs, densest first.
    ///
    /// # Errors
    ///
    /// Returns an error when the tier list is empty or has duplicate
    /// names (the served-tier mix would be ambiguous).
    pub fn new(tiers: Vec<(TierSpec, Arc<dyn ServeModel>)>) -> Result<Self, String> {
        if tiers.is_empty() {
            return Err("a tiered engine needs at least one tier".into());
        }
        for (i, (a, _)) in tiers.iter().enumerate() {
            if tiers.iter().skip(i + 1).any(|(b, _)| b.name == a.name) {
                return Err(format!("duplicate tier name {:?}", a.name));
            }
        }
        Ok(TieredEngine {
            tiers: tiers
                .into_iter()
                .map(|(spec, model)| TierSlot {
                    spec,
                    model: RwLock::new(model),
                    batches: AtomicU64::new(0),
                    frames: AtomicU64::new(0),
                })
                .collect(),
            current: AtomicUsize::new(0),
        })
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Tier specs in tier order (densest first).
    pub fn tier_specs(&self) -> Vec<TierSpec> {
        self.tiers.iter().map(|t| t.spec.clone()).collect()
    }

    /// Index of the tier new batches currently execute on.
    pub fn current_tier(&self) -> usize {
        // Acquire pairs with the Release in `set_tier`/`hot_swap` so a
        // reader acting on the published index also sees the tier state
        // written before it.
        self.current.load(Ordering::Acquire)
    }

    /// Sets the serving tier (clamped to the valid range). Batches
    /// already executing finish on their old tier.
    pub fn set_tier(&self, level: usize) {
        self.current
            .store(level.min(self.tiers.len() - 1), Ordering::Release);
    }

    /// `(name, mAP estimate, batches, frames)` served per tier so far.
    pub fn served(&self) -> Vec<(String, f64, u64, u64)> {
        self.tiers
            .iter()
            .map(|t| {
                (
                    t.spec.name.clone(),
                    t.spec.map_estimate,
                    t.batches.load(Ordering::Relaxed),
                    t.frames.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Hot-swaps tier `tier`'s model. The incoming model is prewarmed
    /// for every shape in `prewarm_shapes` *before* it becomes visible,
    /// so the first post-swap batch never compiles on the hot path.
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range tier index.
    pub fn swap_model(
        &self,
        tier: usize,
        model: Arc<dyn ServeModel>,
        prewarm_shapes: &[Vec<usize>],
        exec: &ExecConfig,
    ) -> Result<(), String> {
        let slot = self
            .tiers
            .get(tier)
            .ok_or_else(|| format!("tier {tier} out of range (have {})", self.tiers.len()))?;
        for shape in prewarm_shapes {
            model.prewarm(shape, exec);
        }
        let mut guard = slot.model.write().unwrap_or_else(|e| e.into_inner());
        *guard = model;
        Ok(())
    }

    /// The model currently serving tier `tier` (cloned `Arc`).
    pub fn tier_model(&self, tier: usize) -> Option<Arc<dyn ServeModel>> {
        self.tiers
            .get(tier)
            .map(|s| s.model.read().unwrap_or_else(|e| e.into_inner()).clone())
    }
}

impl ServeModel for TieredEngine {
    fn run_batch(&self, batch: &Tensor, exec: &ExecConfig) -> Result<Vec<Tensor>, String> {
        let level = self.current_tier();
        let slot = &self.tiers[level];
        // Clone the Arc out of the lock so a concurrent hot swap never
        // blocks behind a running batch.
        let model = slot.model.read().unwrap_or_else(|e| e.into_inner()).clone();
        let out = model.run_batch(batch, exec)?;
        slot.batches.fetch_add(1, Ordering::Relaxed);
        slot.frames.fetch_add(
            batch.shape().first().copied().unwrap_or(0) as u64,
            Ordering::Relaxed,
        );
        Ok(out)
    }

    fn verify(&self) -> Vec<String> {
        self.tiers
            .iter()
            .flat_map(|t| {
                let model = t.model.read().unwrap_or_else(|e| e.into_inner()).clone();
                model
                    .verify()
                    .into_iter()
                    .map(move |msg| format!("tier {}: {msg}", t.spec.name))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn prewarm(&self, input_shape: &[usize], exec: &ExecConfig) {
        for t in &self.tiers {
            let model = t.model.read().unwrap_or_else(|e| e.into_inner()).clone();
            model.prewarm(input_shape, exec);
        }
    }

    fn peak_activation_bytes(&self) -> Option<u64> {
        self.tiers
            .iter()
            .filter_map(|t| {
                t.model
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .peak_activation_bytes()
            })
            .max()
    }

    fn plans(&self) -> bool {
        self.tiers
            .iter()
            .any(|t| t.model.read().unwrap_or_else(|e| e.into_inner()).plans())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test model answering with a constant so the tier that served a
    /// batch is observable in the output.
    struct Constant(f32);

    impl ServeModel for Constant {
        fn run_batch(&self, batch: &Tensor, _exec: &ExecConfig) -> Result<Vec<Tensor>, String> {
            Ok(vec![Tensor::full(batch.shape(), self.0)])
        }
    }

    fn engine() -> TieredEngine {
        TieredEngine::new(vec![
            (TierSpec::new("dense", 75.0), Arc::new(Constant(0.0)) as _),
            (TierSpec::new("3EP", 74.0), Arc::new(Constant(1.0)) as _),
            (TierSpec::new("2EP", 72.0), Arc::new(Constant(2.0)) as _),
        ])
        .unwrap()
    }

    #[test]
    fn batches_execute_on_the_current_tier() {
        let e = engine();
        let x = Tensor::zeros(&[2, 1, 2, 2]);
        let exec = ExecConfig::with_threads(1);
        assert_eq!(e.run_batch(&x, &exec).unwrap()[0].as_slice()[0], 0.0);
        e.set_tier(2);
        assert_eq!(e.run_batch(&x, &exec).unwrap()[0].as_slice()[0], 2.0);
        let served = e.served();
        assert_eq!(served[0].2, 1); // dense: 1 batch
        assert_eq!(served[2].2, 1); // 2EP: 1 batch
        assert_eq!(served[2].3, 2); // 2EP: 2 frames
        assert_eq!(served[1].2, 0);
    }

    #[test]
    fn set_tier_clamps_to_range() {
        let e = engine();
        e.set_tier(99);
        assert_eq!(e.current_tier(), 2);
    }

    #[test]
    fn hot_swap_replaces_a_tier_model() {
        let e = engine();
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let exec = ExecConfig::with_threads(1);
        e.swap_model(0, Arc::new(Constant(9.0)), &[vec![1, 1, 2, 2]], &exec)
            .unwrap();
        assert_eq!(e.run_batch(&x, &exec).unwrap()[0].as_slice()[0], 9.0);
        assert!(e
            .swap_model(7, Arc::new(Constant(0.0)), &[], &exec)
            .is_err());
    }

    #[test]
    fn rejects_empty_and_duplicate_tiers() {
        assert!(TieredEngine::new(vec![]).is_err());
        assert!(TieredEngine::new(vec![
            (TierSpec::new("a", 1.0), Arc::new(Constant(0.0)) as _),
            (TierSpec::new("a", 2.0), Arc::new(Constant(1.0)) as _),
        ])
        .is_err());
    }
}
