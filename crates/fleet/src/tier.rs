//! Accuracy tiers and the hysteresis degradation controller.
//!
//! The paper's lever: the same detector exists as a dense engine and as
//! progressively sparser R-TOSS variants (3EP, 2EP) with known
//! accuracy/latency trade-offs. Instead of shedding frames under
//! overload, a replica *degrades* — the controller moves the serving
//! tier toward the sparser (faster, slightly less accurate) variants
//! when pressure rises, and back when it clears. The controller is a
//! pure state machine (`observe` takes explicit time), so its monotone
//! and hysteresis properties are checkable without a running fleet
//! (RV061).

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One accuracy tier of a replica: tier 0 is the densest/most accurate,
/// higher indices are sparser and faster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Display name, e.g. `"dense"`, `"3EP"`, `"2EP"`.
    pub name: String,
    /// Modelled KITTI mAP of this variant (points, 0–100) from the
    /// calibrated accuracy model — the cost the fleet reports when it
    /// serves at this tier.
    pub map_estimate: f64,
}

impl TierSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, map_estimate: f64) -> Self {
        TierSpec {
            name: name.into(),
            map_estimate,
        }
    }
}

/// Controller tuning. Pressure is `max(queue-depth fraction,
/// deadline-miss EWMA)`, both in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierControllerConfig {
    /// Upgrade (toward denser) only while pressure is below this.
    pub upgrade_below: f64,
    /// Downgrade (toward sparser) once pressure reaches this. Must be
    /// strictly above `upgrade_below` — the gap is the hysteresis band
    /// that stops tier flapping.
    pub downgrade_above: f64,
    /// Minimum time between transitions (in either direction).
    pub dwell: Duration,
    /// EWMA smoothing factor for the deadline-miss sample, in `(0, 1]`.
    pub miss_alpha: f64,
}

impl Default for TierControllerConfig {
    fn default() -> Self {
        TierControllerConfig {
            upgrade_below: 0.25,
            downgrade_above: 0.70,
            dwell: Duration::from_millis(25),
            miss_alpha: 0.3,
        }
    }
}

impl TierControllerConfig {
    /// Structural validation: the hysteresis band must be well-formed.
    /// Violations are what RV061 reports.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if !(0.0..=1.0).contains(&self.upgrade_below) {
            problems.push(format!(
                "upgrade_below {} outside [0, 1]",
                self.upgrade_below
            ));
        }
        if !(0.0..=1.0).contains(&self.downgrade_above) {
            problems.push(format!(
                "downgrade_above {} outside [0, 1]",
                self.downgrade_above
            ));
        }
        if self.upgrade_below >= self.downgrade_above {
            problems.push(format!(
                "hysteresis band inverted: upgrade_below {} >= downgrade_above {} \
                 (the controller would flap between tiers)",
                self.upgrade_below, self.downgrade_above
            ));
        }
        if !(self.miss_alpha > 0.0 && self.miss_alpha <= 1.0) {
            problems.push(format!("miss_alpha {} outside (0, 1]", self.miss_alpha));
        }
        problems
    }
}

/// Hysteresis tier controller for one replica.
#[derive(Debug, Clone)]
pub struct TierController {
    cfg: TierControllerConfig,
    num_tiers: usize,
    level: usize,
    miss_ewma: f64,
    last_transition: Option<Instant>,
}

impl TierController {
    /// Creates a controller pinned at tier 0 (densest).
    pub fn new(cfg: TierControllerConfig, num_tiers: usize) -> Self {
        TierController {
            cfg,
            num_tiers: num_tiers.max(1),
            level: 0,
            miss_ewma: 0.0,
            last_transition: None,
        }
    }

    /// Current tier index (0 = densest).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Smoothed deadline-miss fraction.
    pub fn miss_ewma(&self) -> f64 {
        self.miss_ewma
    }

    /// Combined pressure for the given queue-depth fraction at the
    /// current EWMA state.
    pub fn pressure(&self, queue_frac: f64) -> f64 {
        queue_frac.clamp(0.0, 1.0).max(self.miss_ewma)
    }

    /// Feeds one control-loop sample and returns the (possibly updated)
    /// tier. `queue_frac` is queue depth over capacity; `miss_sample`
    /// the deadline-miss fraction observed since the last tick. Both
    /// clamp to `[0, 1]`.
    pub fn observe(&mut self, queue_frac: f64, miss_sample: f64, now: Instant) -> usize {
        let a = self.cfg.miss_alpha;
        self.miss_ewma = a * miss_sample.clamp(0.0, 1.0) + (1.0 - a) * self.miss_ewma;
        let pressure = self.pressure(queue_frac);
        let dwell_over = self
            .last_transition
            .is_none_or(|t| now.saturating_duration_since(t) >= self.cfg.dwell);
        if dwell_over {
            if pressure >= self.cfg.downgrade_above && self.level + 1 < self.num_tiers {
                self.level += 1;
                self.last_transition = Some(now);
            } else if pressure <= self.cfg.upgrade_below && self.level > 0 {
                self.level -= 1;
                self.last_transition = Some(now);
            }
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TierControllerConfig {
        TierControllerConfig {
            dwell: Duration::from_millis(1),
            ..TierControllerConfig::default()
        }
    }

    #[test]
    fn degrades_under_pressure_and_recovers() {
        let mut c = TierController::new(cfg(), 3);
        let t0 = Instant::now();
        // Sustained overload walks down tier by tier (dwell-limited).
        assert_eq!(c.observe(1.0, 1.0, t0), 1);
        assert_eq!(c.observe(1.0, 1.0, t0 + Duration::from_millis(2)), 2);
        // Already at the sparsest tier: stays there.
        assert_eq!(c.observe(1.0, 1.0, t0 + Duration::from_millis(4)), 2);
        // Pressure clears: upgrades back one dwell at a time.
        let mut t = t0 + Duration::from_millis(6);
        for _ in 0..60 {
            c.observe(0.0, 0.0, t);
            t += Duration::from_millis(2);
        }
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn hysteresis_band_holds_the_tier() {
        let mut c = TierController::new(cfg(), 3);
        let t0 = Instant::now();
        c.observe(1.0, 1.0, t0); // down to 1
        assert_eq!(c.level(), 1);
        // Mid-band pressure (between the thresholds): no movement ever.
        let mut t = t0 + Duration::from_millis(5);
        for _ in 0..50 {
            assert_eq!(c.observe(0.5, 0.0, t), 1);
            t += Duration::from_millis(2);
        }
    }

    #[test]
    fn dwell_limits_transition_rate() {
        let slow = TierControllerConfig {
            dwell: Duration::from_secs(60),
            ..TierControllerConfig::default()
        };
        let mut c = TierController::new(slow, 4);
        let t0 = Instant::now();
        assert_eq!(c.observe(1.0, 1.0, t0), 1);
        // Seconds of overload, but dwell has not elapsed: stays at 1.
        assert_eq!(c.observe(1.0, 1.0, t0 + Duration::from_secs(1)), 1);
    }

    #[test]
    fn invalid_configs_are_reported() {
        let bad = TierControllerConfig {
            upgrade_below: 0.8,
            downgrade_above: 0.3,
            ..TierControllerConfig::default()
        };
        assert!(!bad.validate().is_empty());
        assert!(TierControllerConfig::default().validate().is_empty());
    }
}
