//! Fleet-wide SLO telemetry: windowed admission/deadline series,
//! multi-window burn-rate monitors, and the black-box flight recorder.
//!
//! The cumulative ledgers in [`crate::metrics`] answer "how did the
//! run go"; this module answers "how are the last few seconds going"
//! — the question burn-rate alerting and post-mortems ask. Per tenant
//! it keeps one [`WindowedSet`] with the four admission lanes
//! (`offered` / `admitted` / `throttled` / `shed`) sharing a single
//! window ring, so `offered == admitted + throttled + shed` holds
//! **per window**, not just in aggregate (RV081). Per replica it keeps
//! queue-depth-fraction and served-tier gauges plus a deadline-miss
//! monitor fed from the replica's [`rtoss_serve::ServerSeries`].
//!
//! Each control tick evaluates every [`SloMonitor`] over the policy's
//! short/long trailing ranges (query-time sums over the aligned
//! storage windows). Transitions are appended to an alert log whose
//! legality `rtoss-verify` replays (RV082), and a `firing` transition
//! — or a worker-panic delta — triggers a [`FlightRecorder`] dump
//! (RV083).
//!
//! Everything here is inert until [`rtoss_obs::set_series_enabled`]
//! (or `RTOSS_SERIES=1`): the recorders gate themselves on one relaxed
//! atomic load, and the control thread skips monitor evaluation
//! entirely, so a telemetry-configured fleet with series disabled pays
//! nothing on the request path.

use rtoss_obs as obs;
use rtoss_obs::prom::{render, PromMetric};
use rtoss_obs::slo::{AlertEvent, AlertKind, AlertState, BurnRatePolicy, SloMonitor};
use rtoss_obs::timeseries::{GaugeSample, WindowSpec, WindowedGauge, WindowedSet};
use rtoss_obs::FlightRecorder;
use rtoss_serve::ServerMetrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::tenant::TenantSpec;

/// Admission lanes, in lane order of the per-tenant [`WindowedSet`].
pub const ADMISSION_LANES: [&str; 4] = ["offered", "admitted", "throttled", "shed"];
const LANE_OFFERED: usize = 0;
const LANE_ADMITTED: usize = 1;
const LANE_THROTTLED: usize = 2;
const LANE_SHED: usize = 3;

/// Burn-point series are bounded so a long-running fleet cannot grow
/// them without limit; the oldest points are dropped first.
const MAX_BURN_POINTS: usize = 4096;

/// How one offered request left the admission path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Accepted by the chosen replica's queue.
    Admitted,
    /// Refused by the tenant's token bucket.
    Throttled,
    /// Refused by class-pressure admission or the replica queue.
    Shed,
}

impl AdmissionOutcome {
    fn lane(self) -> usize {
        match self {
            AdmissionOutcome::Admitted => LANE_ADMITTED,
            AdmissionOutcome::Throttled => LANE_THROTTLED,
            AdmissionOutcome::Shed => LANE_SHED,
        }
    }
}

/// Telemetry subsystem tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Storage window width for every series.
    pub window: Duration,
    /// Ring length (live windows kept per series).
    pub windows: usize,
    /// Burn-rate policy for the per-tenant admission SLO (good =
    /// admitted, bad = throttled + shed, out of offered).
    pub admission: BurnRatePolicy,
    /// Burn-rate policy for the per-replica deadline SLO (bad =
    /// deadline misses out of completions).
    pub deadline: BurnRatePolicy,
    /// Flight-recorder ring capacity (entries).
    pub flight_capacity: usize,
    /// At most this many flight dumps are retained per run; further
    /// triggers are counted but not rendered.
    pub max_dumps: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window: Duration::from_millis(250),
            windows: 256,
            admission: BurnRatePolicy {
                short_range_ns: 5_000_000_000,
                long_range_ns: 60_000_000_000,
                ..BurnRatePolicy::new(0.95)
            },
            deadline: BurnRatePolicy {
                short_range_ns: 5_000_000_000,
                long_range_ns: 60_000_000_000,
                ..BurnRatePolicy::new(0.9)
            },
            flight_capacity: 1024,
            max_dumps: 8,
        }
    }
}

impl TelemetryConfig {
    /// A configuration scaled for second-long bench runs: 100 ms
    /// windows, 500 ms / 2 s alert ranges, so a multi-window burn-rate
    /// story (fire *and* resolve) fits inside one `fleet_bench`
    /// invocation.
    pub fn bench() -> Self {
        TelemetryConfig {
            window: Duration::from_millis(100),
            windows: 128,
            admission: BurnRatePolicy {
                short_range_ns: 500_000_000,
                long_range_ns: 2_000_000_000,
                min_total: 20,
                ..BurnRatePolicy::new(0.95)
            },
            deadline: BurnRatePolicy {
                short_range_ns: 500_000_000,
                long_range_ns: 2_000_000_000,
                min_total: 20,
                ..BurnRatePolicy::new(0.9)
            },
            ..TelemetryConfig::default()
        }
    }

    /// Structural problems with the configuration, empty when valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.window.is_zero() {
            problems.push("telemetry window must be > 0".into());
        }
        if self.windows < 2 {
            problems.push(format!(
                "telemetry needs >= 2 windows, got {}",
                self.windows
            ));
        }
        let span_ns = self.window.as_nanos().saturating_mul(self.windows as u128);
        for (name, policy) in [("admission", &self.admission), ("deadline", &self.deadline)] {
            for p in policy.validate() {
                problems.push(format!("{name} policy: {p}"));
            }
            if u128::from(policy.long_range_ns) > span_ns {
                problems.push(format!(
                    "{name} policy long range ({} ns) exceeds the ring span ({span_ns} ns) — \
                     the monitor would sum windows that no longer exist",
                    policy.long_range_ns
                ));
            }
        }
        if self.flight_capacity == 0 {
            problems.push("flight_capacity must be > 0".into());
        }
        problems
    }

    fn spec(&self) -> WindowSpec {
        WindowSpec::new(
            self.window.as_nanos().min(u128::from(u64::MAX)) as u64,
            self.windows,
        )
    }
}

/// One burn-rate evaluation of a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnPoint {
    /// Evaluation time, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Short-range burn rate.
    pub short: f64,
    /// Long-range burn rate.
    pub long: f64,
}

struct TenantTelemetry {
    class: String,
    admission: WindowedSet,
    monitor: Mutex<SloMonitor>,
    burns: Mutex<Vec<BurnPoint>>,
}

struct ReplicaTelemetry {
    queue_frac: WindowedGauge,
    tier: WindowedGauge,
    monitor: Mutex<SloMonitor>,
    burns: Mutex<Vec<BurnPoint>>,
    last_panics: Mutex<u64>,
}

/// One replica's state as seen by a control tick.
#[derive(Debug)]
pub struct ReplicaObservation<'a> {
    /// Queue depth as a fraction of capacity.
    pub queue_frac: f64,
    /// Currently served tier index.
    pub tier: usize,
    /// The replica server's metrics (windowed series + panic counter).
    pub metrics: &'a ServerMetrics,
}

/// A rendered flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// What triggered the dump (`"slo-breach"`, `"worker-panic"`,
    /// `"manual"`).
    pub reason: String,
    /// Trigger instant, nanoseconds since the trace epoch.
    pub trigger_ts_ns: u64,
    /// The self-contained post-mortem JSON document (RV083).
    pub json: String,
}

/// The fleet's telemetry plane; one per [`crate::Fleet`] when
/// configured.
pub struct FleetTelemetry {
    config: TelemetryConfig,
    tenants: BTreeMap<String, TenantTelemetry>,
    replicas: Vec<ReplicaTelemetry>,
    flight: FlightRecorder,
    alerts: Mutex<Vec<AlertEvent>>,
    dumps: Mutex<Vec<FlightDump>>,
    dumps_suppressed: Mutex<u64>,
}

impl std::fmt::Debug for FleetTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTelemetry")
            .field("tenants", &self.tenants.keys().collect::<Vec<_>>())
            .field("replicas", &self.replicas.len())
            .field(
                "alerts",
                &self.alerts.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}

impl FleetTelemetry {
    /// Builds the telemetry plane for `tenants` over `replicas`
    /// replicas.
    ///
    /// # Errors
    ///
    /// Returns the joined [`TelemetryConfig::validate`] problems when
    /// the configuration is structurally invalid.
    pub fn new(
        config: TelemetryConfig,
        tenants: &[TenantSpec],
        replicas: usize,
    ) -> Result<Self, String> {
        let problems = config.validate();
        if !problems.is_empty() {
            return Err(format!("invalid telemetry config: {}", problems.join("; ")));
        }
        let spec = config.spec();
        let tenants = tenants
            .iter()
            .map(|t| {
                (
                    t.id.clone(),
                    TenantTelemetry {
                        class: t.class.label().to_string(),
                        admission: WindowedSet::new(spec, &ADMISSION_LANES),
                        monitor: Mutex::new(SloMonitor::new(
                            "admission",
                            t.id.clone(),
                            config.admission,
                        )),
                        burns: Mutex::new(Vec::new()),
                    },
                )
            })
            .collect();
        let replicas = (0..replicas)
            .map(|i| ReplicaTelemetry {
                queue_frac: WindowedGauge::new(spec),
                tier: WindowedGauge::new(spec),
                monitor: Mutex::new(SloMonitor::new(
                    "deadline",
                    format!("replica/{i}"),
                    config.deadline,
                )),
                burns: Mutex::new(Vec::new()),
                last_panics: Mutex::new(0),
            })
            .collect();
        Ok(FleetTelemetry {
            flight: FlightRecorder::new(config.flight_capacity),
            config,
            tenants,
            replicas,
            alerts: Mutex::new(Vec::new()),
            dumps: Mutex::new(Vec::new()),
            dumps_suppressed: Mutex::new(0),
        })
    }

    /// The governing configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The flight recorder (feed it spans/instants from outside the
    /// fleet if useful).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Records one admission decision for `tenant` at `ts_ns`: the
    /// `offered` lane and the outcome lane land (or drop) as one
    /// sample, keeping per-window conservation exact. Unknown tenants
    /// are ignored (the fleet refuses them before offering). Inert
    /// while series recording is disabled.
    pub fn record_admission(&self, tenant: &str, ts_ns: u64, outcome: AdmissionOutcome) {
        if let Some(t) = self.tenants.get(tenant) {
            t.admission
                .incr_pair_at(ts_ns, LANE_OFFERED, outcome.lane());
        }
    }

    /// Feeds a tier change into the flight recorder.
    pub fn record_tier_change(&self, ts_ns: u64, replica: usize, from: usize, to: usize) {
        self.flight.instant(
            "tier_change",
            ts_ns,
            format!("replica/{replica} {from}->{to}"),
        );
    }

    /// One control tick at `ts_ns`: samples the per-replica gauges,
    /// evaluates every monitor over its policy ranges, logs alert
    /// transitions, and dumps the flight recorder on a firing
    /// transition or a worker-panic delta. Call order must be
    /// single-threaded (the fleet's control thread). No-op while
    /// series recording is disabled.
    pub fn tick(&self, ts_ns: u64, replicas: &[ReplicaObservation]) {
        if !obs::series_enabled() {
            return;
        }
        let tick_start = std::time::Instant::now();
        for (i, (state, seen)) in self.replicas.iter().zip(replicas).enumerate() {
            state.queue_frac.set_at(ts_ns, seen.queue_frac);
            state.tier.set_at(ts_ns, seen.tier as f64);
            self.flight
                .sample(format!("replica/{i}/queue_frac"), ts_ns, seen.queue_frac);
            let p = &self.config.deadline;
            let short = seen.metrics.series.deadline_range(ts_ns, p.short_range_ns);
            let long = seen.metrics.series.deadline_range(ts_ns, p.long_range_ns);
            let (event, burns) = {
                let mut monitor = state.monitor.lock().unwrap_or_else(|e| e.into_inner());
                let event = monitor.evaluate(ts_ns, short, long);
                (event, monitor.last_burns())
            };
            push_burn(&state.burns, ts_ns, burns);
            if let Some(event) = event {
                self.log_alert(event);
            }
            let panics = seen.metrics.worker_panics.get();
            let mut last = state.last_panics.lock().unwrap_or_else(|e| e.into_inner());
            if panics > *last {
                *last = panics;
                drop(last);
                self.flight
                    .instant("worker_panic", ts_ns, format!("replica/{i} total={panics}"));
                self.dump("worker-panic", ts_ns);
            }
        }
        for (id, t) in &self.tenants {
            let p = &self.config.admission;
            let (event, burns) = {
                let mut monitor = t.monitor.lock().unwrap_or_else(|e| e.into_inner());
                let event = monitor.evaluate(
                    ts_ns,
                    admission_range(&t.admission, ts_ns, p.short_range_ns),
                    admission_range(&t.admission, ts_ns, p.long_range_ns),
                );
                (event, monitor.last_burns())
            };
            push_burn(&t.burns, ts_ns, burns);
            self.flight
                .sample(format!("tenant/{id}/burn_short"), ts_ns, burns.0);
            if let Some(event) = event {
                self.log_alert(event);
            }
        }
        self.flight.span(
            "telemetry_tick",
            ts_ns,
            tick_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        );
    }

    fn log_alert(&self, event: AlertEvent) {
        self.flight.alert(&event);
        let firing = event.kind == AlertKind::Firing;
        let ts = event.ts_ns;
        self.alerts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
        if firing {
            self.dump("slo-breach", ts);
        }
    }

    /// Renders and retains a flight dump now (also the manual
    /// entry point: `reason = "manual"`). Dumps beyond
    /// [`TelemetryConfig::max_dumps`] are counted, not rendered.
    pub fn dump(&self, reason: &str, trigger_ts_ns: u64) {
        let mut dumps = self.dumps.lock().unwrap_or_else(|e| e.into_inner());
        if dumps.len() >= self.config.max_dumps {
            *self
                .dumps_suppressed
                .lock()
                .unwrap_or_else(|e| e.into_inner()) += 1;
            return;
        }
        dumps.push(FlightDump {
            reason: reason.to_string(),
            trigger_ts_ns,
            json: self.flight.dump(reason, trigger_ts_ns),
        });
    }

    /// Every alert transition so far, in log order.
    pub fn alerts(&self) -> Vec<AlertEvent> {
        self.alerts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Every retained flight dump so far, in trigger order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Serializable point-in-time view of the whole telemetry plane.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let tenants = self
            .tenants
            .iter()
            .map(|(id, t)| {
                let windows = t
                    .admission
                    .samples()
                    .into_iter()
                    .map(|w| AdmissionWindow {
                        start_ns: w.start_ns,
                        offered: w.counts[LANE_OFFERED],
                        admitted: w.counts[LANE_ADMITTED],
                        throttled: w.counts[LANE_THROTTLED],
                        shed: w.counts[LANE_SHED],
                    })
                    .collect();
                let lane_total = |l| t.admission.total_lane(l);
                let lane_evicted = |l| t.admission.evicted_lane(l);
                let monitor = t.monitor.lock().unwrap_or_else(|e| e.into_inner());
                TenantTelemetrySnapshot {
                    id: id.clone(),
                    class: t.class.clone(),
                    windows,
                    totals: AdmissionTotals {
                        offered: lane_total(LANE_OFFERED),
                        admitted: lane_total(LANE_ADMITTED),
                        throttled: lane_total(LANE_THROTTLED),
                        shed: lane_total(LANE_SHED),
                    },
                    evicted: AdmissionTotals {
                        offered: lane_evicted(LANE_OFFERED),
                        admitted: lane_evicted(LANE_ADMITTED),
                        throttled: lane_evicted(LANE_THROTTLED),
                        shed: lane_evicted(LANE_SHED),
                    },
                    late: t.admission.late(),
                    burns: t.burns.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                    firing: monitor.state() == AlertState::Firing,
                }
            })
            .collect();
        let replicas = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let monitor = r.monitor.lock().unwrap_or_else(|e| e.into_inner());
                ReplicaTelemetrySnapshot {
                    replica: i,
                    queue_frac: r
                        .queue_frac
                        .samples()
                        .into_iter()
                        .map(gauge_window)
                        .collect(),
                    tier: r.tier.samples().into_iter().map(gauge_window).collect(),
                    burns: r.burns.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                    firing: monitor.state() == AlertState::Firing,
                }
            })
            .collect();
        TelemetrySnapshot {
            window_ns: self.config.spec().window_ns,
            windows: self.config.windows,
            admission_policy: PolicySnapshot::from(&self.config.admission),
            deadline_policy: PolicySnapshot::from(&self.config.deadline),
            tenants,
            replicas,
            alerts: self.alerts().iter().map(AlertRecord::from).collect(),
            dump_count: self.dumps.lock().unwrap_or_else(|e| e.into_inner()).len(),
            dumps_suppressed: *self
                .dumps_suppressed
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        }
    }
}

fn admission_range(set: &WindowedSet, now_ns: u64, range_ns: u64) -> (u64, u64) {
    let throttled = set.range_lane(now_ns, range_ns, LANE_THROTTLED);
    let shed = set.range_lane(now_ns, range_ns, LANE_SHED);
    let offered = set.range_lane(now_ns, range_ns, LANE_OFFERED);
    (throttled + shed, offered)
}

fn push_burn(burns: &Mutex<Vec<BurnPoint>>, ts_ns: u64, (short, long): (f64, f64)) {
    let mut burns = burns.lock().unwrap_or_else(|e| e.into_inner());
    if burns.len() >= MAX_BURN_POINTS {
        burns.remove(0);
    }
    burns.push(BurnPoint { ts_ns, short, long });
}

fn gauge_window(s: GaugeSample) -> GaugeWindow {
    GaugeWindow {
        start_ns: s.start_ns,
        count: s.count,
        last: s.last,
        min: s.min,
        max: s.max,
    }
}

/// Serde mirror of [`BurnRatePolicy`] (the obs crate is serde-free by
/// design).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicySnapshot {
    /// Target good/total ratio.
    pub objective: f64,
    /// Short trailing range, nanoseconds.
    pub short_range_ns: u64,
    /// Long trailing range, nanoseconds.
    pub long_range_ns: u64,
    /// Firing threshold.
    pub fire_burn: f64,
    /// Resolve threshold (below `fire_burn`).
    pub resolve_burn: f64,
    /// Minimum events for a range to produce a non-zero burn.
    pub min_total: u64,
}

impl From<&BurnRatePolicy> for PolicySnapshot {
    fn from(p: &BurnRatePolicy) -> Self {
        PolicySnapshot {
            objective: p.objective,
            short_range_ns: p.short_range_ns,
            long_range_ns: p.long_range_ns,
            fire_burn: p.fire_burn,
            resolve_burn: p.resolve_burn,
            min_total: p.min_total,
        }
    }
}

impl PolicySnapshot {
    /// The policy this snapshot mirrors (for replay in `rtoss-verify`).
    pub fn to_policy(self) -> BurnRatePolicy {
        BurnRatePolicy {
            objective: self.objective,
            short_range_ns: self.short_range_ns,
            long_range_ns: self.long_range_ns,
            fire_burn: self.fire_burn,
            resolve_burn: self.resolve_burn,
            min_total: self.min_total,
        }
    }
}

/// Serde mirror of [`AlertEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    /// Rule name (`"admission"` / `"deadline"`).
    pub rule: String,
    /// Monitored subject (tenant id or `"replica/N"`).
    pub subject: String,
    /// `"firing"` or `"resolved"`.
    pub state: String,
    /// Transition time, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Short-range burn at the transition.
    pub burn_short: f64,
    /// Long-range burn at the transition.
    pub burn_long: f64,
}

impl From<&AlertEvent> for AlertRecord {
    fn from(e: &AlertEvent) -> Self {
        AlertRecord {
            rule: e.rule.clone(),
            subject: e.subject.clone(),
            state: e.kind.label().to_string(),
            ts_ns: e.ts_ns,
            burn_short: e.burn_short,
            burn_long: e.burn_long,
        }
    }
}

/// One admission window of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionWindow {
    /// Window start, nanoseconds since the trace epoch (aligned to the
    /// window width).
    pub start_ns: u64,
    /// Requests offered in this window.
    pub offered: u64,
    /// …admitted.
    pub admitted: u64,
    /// …throttled by quota.
    pub throttled: u64,
    /// …shed by pressure admission or the queue.
    pub shed: u64,
}

/// Admission lane totals (live + evicted breakdowns use the same
/// shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionTotals {
    /// Offered-lane count.
    pub offered: u64,
    /// Admitted-lane count.
    pub admitted: u64,
    /// Throttled-lane count.
    pub throttled: u64,
    /// Shed-lane count.
    pub shed: u64,
}

/// One window of a gauge series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaugeWindow {
    /// Window start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Observations in this window.
    pub count: u64,
    /// Last observed value.
    pub last: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

/// One tenant's telemetry view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTelemetrySnapshot {
    /// Tenant id.
    pub id: String,
    /// SLO class label.
    pub class: String,
    /// Live admission windows, sorted by start.
    pub windows: Vec<AdmissionWindow>,
    /// Grand totals of samples accepted into the series.
    pub totals: AdmissionTotals,
    /// Counts harvested from rotated-out windows.
    pub evicted: AdmissionTotals,
    /// Samples dropped as older than the ring span.
    pub late: u64,
    /// Burn-rate evaluations, one per control tick (bounded, oldest
    /// dropped first).
    pub burns: Vec<BurnPoint>,
    /// Whether the admission monitor is currently firing.
    pub firing: bool,
}

/// One replica's telemetry view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaTelemetrySnapshot {
    /// Replica index.
    pub replica: usize,
    /// Queue-depth-fraction gauge windows.
    pub queue_frac: Vec<GaugeWindow>,
    /// Served-tier gauge windows.
    pub tier: Vec<GaugeWindow>,
    /// Deadline burn-rate evaluations, one per control tick.
    pub burns: Vec<BurnPoint>,
    /// Whether the deadline monitor is currently firing.
    pub firing: bool,
}

/// Serializable point-in-time view of a [`FleetTelemetry`], the
/// document `fleet_bench --telemetry` writes and RV080–RV082 validate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Storage window width, nanoseconds.
    pub window_ns: u64,
    /// Ring length.
    pub windows: usize,
    /// The admission policy in force.
    pub admission_policy: PolicySnapshot,
    /// The deadline policy in force.
    pub deadline_policy: PolicySnapshot,
    /// Per-tenant series, sorted by tenant id.
    pub tenants: Vec<TenantTelemetrySnapshot>,
    /// Per-replica series, in replica order.
    pub replicas: Vec<ReplicaTelemetrySnapshot>,
    /// Alert transitions in log order.
    pub alerts: Vec<AlertRecord>,
    /// Flight dumps rendered.
    pub dump_count: usize,
    /// Dump triggers beyond `max_dumps`, counted not rendered.
    pub dumps_suppressed: u64,
}

impl TelemetrySnapshot {
    /// Renders the snapshot as Prometheus text exposition with
    /// `tenant=` / `replica=` labels: admission lane counters,
    /// burn-rate and firing gauges per tenant, and queue-fraction /
    /// tier gauges per replica. Tenant ids are escaped as label
    /// values, so hostile names cannot corrupt the exposition.
    pub fn to_prometheus(&self) -> String {
        let mut metrics = Vec::new();
        for t in &self.tenants {
            let lanes: [(&str, &str, u64); 4] = [
                (
                    "offered",
                    "Requests offered by the tenant",
                    t.totals.offered,
                ),
                ("admitted", "Requests admitted", t.totals.admitted),
                (
                    "throttled",
                    "Requests throttled by quota",
                    t.totals.throttled,
                ),
                ("shed", "Requests shed under pressure", t.totals.shed),
            ];
            for (lane, help, v) in lanes {
                metrics.push(
                    PromMetric::counter(format!("rtoss_fleet_{lane}_total"), help, v as f64)
                        .with_label("tenant", t.id.clone())
                        .with_label("class", t.class.clone()),
                );
            }
            let (short, long) = t.burns.last().map_or((0.0, 0.0), |b| (b.short, b.long));
            for (range, v) in [("short", short), ("long", long)] {
                metrics.push(
                    PromMetric::gauge(
                        "rtoss_fleet_admission_burn",
                        "Admission SLO burn rate over the policy range",
                        v,
                    )
                    .with_label("tenant", t.id.clone())
                    .with_label("range", range),
                );
            }
            metrics.push(
                PromMetric::gauge(
                    "rtoss_fleet_alert_firing",
                    "1 while the SLO monitor is firing",
                    t.firing as u64 as f64,
                )
                .with_label("rule", "admission")
                .with_label("subject", t.id.clone()),
            );
        }
        for r in &self.replicas {
            let replica = r.replica.to_string();
            if let Some(w) = r.queue_frac.last() {
                metrics.push(
                    PromMetric::gauge(
                        "rtoss_fleet_queue_frac",
                        "Queue depth as a fraction of capacity",
                        w.last,
                    )
                    .with_label("replica", replica.clone()),
                );
            }
            if let Some(w) = r.tier.last() {
                metrics.push(
                    PromMetric::gauge(
                        "rtoss_fleet_tier",
                        "Currently served accuracy tier (0 = densest)",
                        w.last,
                    )
                    .with_label("replica", replica.clone()),
                );
            }
            metrics.push(
                PromMetric::gauge(
                    "rtoss_fleet_alert_firing",
                    "1 while the SLO monitor is firing",
                    r.firing as u64 as f64,
                )
                .with_label("rule", "deadline")
                .with_label("subject", format!("replica/{}", r.replica)),
            );
        }
        render(&metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::SloClass;

    /// Serializes the tests that flip the process-wide series flag.
    fn series_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn config() -> TelemetryConfig {
        TelemetryConfig {
            window: Duration::from_millis(10),
            windows: 64,
            admission: BurnRatePolicy {
                short_range_ns: 50_000_000,
                long_range_ns: 200_000_000,
                min_total: 5,
                ..BurnRatePolicy::new(0.95)
            },
            deadline: BurnRatePolicy {
                short_range_ns: 50_000_000,
                long_range_ns: 200_000_000,
                min_total: 5,
                ..BurnRatePolicy::new(0.9)
            },
            ..TelemetryConfig::default()
        }
    }

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new("gold", SloClass::Gold, 1e6, 1e6),
            TenantSpec::new("bulk", SloClass::Bulk, 1e6, 1e6),
        ]
    }

    #[test]
    fn validate_rejects_ranges_wider_than_the_ring() {
        let mut cfg = config();
        cfg.admission.long_range_ns = 10_000_000_000; // 10 s > 640 ms span
        let err = FleetTelemetry::new(cfg, &tenants(), 1).unwrap_err();
        assert!(err.contains("ring span"), "{err}");
    }

    #[test]
    fn overload_fires_and_recovery_resolves_with_dump() {
        let _guard = series_lock();
        obs::set_series_enabled(true);
        let tel = FleetTelemetry::new(config(), &tenants(), 1).unwrap();
        let server = ServerMetrics::new();
        let base = obs::now_ns();
        let win = 10_000_000u64;
        // 20 ticks of heavy shedding for bulk: every window 5 offered,
        // 4 shed.
        let mut ts = base;
        for _ in 0..20 {
            for k in 0..5 {
                let outcome = if k == 0 {
                    AdmissionOutcome::Admitted
                } else {
                    AdmissionOutcome::Shed
                };
                tel.record_admission("bulk", ts, outcome);
                tel.record_admission("gold", ts, AdmissionOutcome::Admitted);
            }
            ts += win;
            tel.tick(
                ts,
                &[ReplicaObservation {
                    queue_frac: 0.9,
                    tier: 2,
                    metrics: &server,
                }],
            );
        }
        let firing: Vec<_> = tel
            .alerts()
            .into_iter()
            .filter(|a| a.kind == AlertKind::Firing)
            .collect();
        assert_eq!(firing.len(), 1, "bulk should fire exactly once");
        assert_eq!(firing[0].subject, "bulk");
        assert_eq!(tel.dumps().len(), 1);
        assert_eq!(tel.dumps()[0].reason, "slo-breach");
        // Quiet period long past the short range: burn decays, resolves.
        ts += 30 * win;
        tel.tick(
            ts,
            &[ReplicaObservation {
                queue_frac: 0.1,
                tier: 0,
                metrics: &server,
            }],
        );
        let alerts = tel.alerts();
        let last = alerts.last().unwrap();
        assert_eq!(last.kind, AlertKind::Resolved);
        assert_eq!(last.subject, "bulk");
        let snap = tel.snapshot();
        let bulk = snap.tenants.iter().find(|t| t.id == "bulk").unwrap();
        assert!(!bulk.firing);
        // Per-window and total conservation.
        for w in &bulk.windows {
            assert_eq!(w.offered, w.admitted + w.throttled + w.shed);
        }
        assert_eq!(
            bulk.totals.offered,
            bulk.totals.admitted + bulk.totals.throttled + bulk.totals.shed
        );
        // The flight dump covers the breach instant.
        let dump = &tel.dumps()[0];
        assert!(dump.json.contains("\"reason\":\"slo-breach\""));
        assert!(dump.json.contains("\"kind\":\"alert\""));
        // Prometheus rendering carries tenant labels and parses back.
        let prom = snap.to_prometheus();
        assert!(prom.contains("rtoss_fleet_shed_total{tenant=\"bulk\""));
        assert!(rtoss_obs::prom::parse(&prom).is_ok());
        obs::set_series_enabled(false);
    }

    #[test]
    fn disabled_series_record_nothing() {
        let _guard = series_lock();
        obs::set_series_enabled(false);
        let tel = FleetTelemetry::new(config(), &tenants(), 1).unwrap();
        let server = ServerMetrics::new();
        tel.record_admission("gold", obs::now_ns(), AdmissionOutcome::Admitted);
        tel.tick(
            obs::now_ns(),
            &[ReplicaObservation {
                queue_frac: 0.5,
                tier: 0,
                metrics: &server,
            }],
        );
        let snap = tel.snapshot();
        assert_eq!(snap.tenants[1].totals.offered, 0);
        assert!(snap.tenants[1].burns.is_empty());
        assert!(tel.flight().is_empty());
        assert_eq!(snap.dump_count, 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let _guard = series_lock();
        obs::set_series_enabled(true);
        let tel = FleetTelemetry::new(config(), &tenants(), 2).unwrap();
        let ts = obs::now_ns();
        tel.record_admission("gold", ts, AdmissionOutcome::Throttled);
        let server = ServerMetrics::new();
        tel.tick(
            ts + 10_000_000,
            &[
                ReplicaObservation {
                    queue_frac: 0.25,
                    tier: 1,
                    metrics: &server,
                },
                ReplicaObservation {
                    queue_frac: 0.75,
                    tier: 2,
                    metrics: &server,
                },
            ],
        );
        let snap = tel.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.replicas.len(), 2);
        assert_eq!(back.tenants[1].totals.throttled, 1);
        obs::set_series_enabled(false);
    }
}
