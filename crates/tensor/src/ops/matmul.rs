//! Dense matrix multiplication on rank-2 tensors.

use crate::{Tensor, TensorError};

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize), TensorError> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// `C = A (m×k) · B (k×n)` using an i-k-j loop order for cache locality.
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or the inner
/// dimensions disagree.
///
/// # Example
///
/// ```
/// use rtoss_tensor::{ops, Tensor};
/// # fn main() -> Result<(), rtoss_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ops::matmul(&a, &b)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k) = check_rank2(a, "matmul")?;
    let (k2, n) = check_rank2(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        for p in 0..k {
            let aik = ad[i * k + p];
            let brow = &bd[p * n..(p + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                *c += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ (k×m)ᵀ · B (k×n)` without materialising the transpose.
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or the shared
/// leading dimensions disagree.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (k, m) = check_rank2(a, "matmul_transpose_a")?;
    let (k2, n) = check_rank2(b, "matmul_transpose_a")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_a",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for p in 0..k {
        for i in 0..m {
            let av = ad[p * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                *c += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A (m×k) · Bᵀ (n×k)ᵀ` without materialising the transpose.
///
/// # Errors
///
/// Returns an error if either operand is not rank 2 or the trailing
/// dimensions disagree.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k) = check_rank2(a, "matmul_transpose_b")?;
    let (n, k2) = check_rank2(b, "matmul_transpose_b")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_b",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn small_product() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn transpose_variants_agree_with_plain() {
        let a = t((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = t((0..12).map(|x| (x as f32) * 0.5).collect(), &[3, 4]);
        let c = matmul(&a, &b).unwrap();

        // Aᵀ path: build At explicitly, then compare.
        let mut at = Tensor::zeros(&[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                at.set(&[j, i], a.at(&[i, j]));
            }
        }
        assert_eq!(matmul_transpose_a(&at, &b).unwrap(), c);

        let mut bt = Tensor::zeros(&[4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                bt.set(&[j, i], b.at(&[i, j]));
            }
        }
        assert_eq!(matmul_transpose_b(&a, &bt).unwrap(), c);
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(matmul(&a, &b).is_err());
        let v = t(vec![0.0; 3], &[3]);
        assert!(matmul(&v, &b).is_err());
    }
}
