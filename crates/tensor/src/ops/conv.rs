//! 2-D convolution via im2col + matrix multiplication, with gradients.
//!
//! Layouts follow the paper's framing: activations `(N, C, H, W)`,
//! weights `(O, I, kH, kW)`. `conv2d` is the dense reference executor;
//! the `rtoss-sparse` crate provides the pattern-grouped sparse executor
//! that exploits R-TOSS masks.

use super::matmul::{matmul, matmul_transpose_a, matmul_transpose_b};
use crate::exec::{run_tiles, ExecConfig};
use crate::{Tensor, TensorError};
use std::sync::atomic::{AtomicBool, Ordering};

/// Output spatial extent for one dimension: `(input + 2·pad − kernel) /
/// stride + 1`, or `None` when the kernel does not fit the padded input
/// or `stride` is zero. Public so shape inference (`rtoss-nn`) and the
/// static checks in `rtoss-verify` use the exact formula the executors
/// validate against, rather than a re-derivation of it.
pub fn out_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    let padded = input + 2 * pad;
    if padded < kernel || stride == 0 {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

/// Validated conv geometry:
/// `(batch, in_ch, in_h, in_w, out_ch, kh, kw, out_h, out_w)`.
type ConvGeometry = (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

fn check_conv_args(
    x: &Tensor,
    w: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<ConvGeometry, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "conv2d",
        });
    }
    if w.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: w.rank(),
            op: "conv2d",
        });
    }
    let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (o, ci, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    if c != ci {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().to_vec(),
            right: w.shape().to_vec(),
            op: "conv2d",
        });
    }
    let oh = out_extent(h, kh, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "conv2d",
        msg: format!("kernel {kh} does not fit input height {h} with pad {pad} stride {stride}"),
    })?;
    let ow = out_extent(wd, kw, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "conv2d",
        msg: format!("kernel {kw} does not fit input width {wd} with pad {pad} stride {stride}"),
    })?;
    Ok((n, c, h, wd, o, kh, kw, oh, ow))
}

/// Unfolds one image `(C, H, W)` into a `(C*kh*kw, oh*ow)` column matrix.
///
/// # Errors
///
/// Returns an error if `x` is not rank 3 or the kernel does not fit.
pub fn im2col(
    x: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<Tensor, TensorError> {
    if x.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: x.rank(),
            op: "im2col",
        });
    }
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let oh = out_extent(h, kh, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "im2col",
        msg: "kernel does not fit".into(),
    })?;
    let ow = out_extent(w, kw, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "im2col",
        msg: "kernel does not fit".into(),
    })?;
    let rows = c * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let xd = x.as_slice();
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let xrow = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[base + oy * ow + ox] = xd[xrow + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Folds a `(C*kh*kw, oh*ow)` column matrix back into `(C, H, W)`,
/// accumulating overlapping contributions (the adjoint of [`im2col`]).
///
/// # Errors
///
/// Returns an error if shapes are inconsistent.
#[allow(clippy::too_many_arguments)] // mirrors im2col's geometry args
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Result<Tensor, TensorError> {
    let oh = out_extent(h, kh, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "col2im",
        msg: "kernel does not fit".into(),
    })?;
    let ow = out_extent(w, kw, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "col2im",
        msg: "kernel does not fit".into(),
    })?;
    if cols.shape() != [c * kh * kw, oh * ow] {
        return Err(TensorError::ShapeMismatch {
            left: cols.shape().to_vec(),
            right: vec![c * kh * kw, oh * ow],
            op: "col2im",
        });
    }
    let mut out = vec![0.0f32; c * h * w];
    let cd = cols.as_slice();
    let ncols = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let base = row * ncols;
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let orow = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[orow + ix as usize] += cd[base + oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[c, h, w])
}

/// Dense 2-D convolution: `x (N,C,H,W) * w (O,C,kh,kw) → (N,O,oh,ow)`.
///
/// # Errors
///
/// Returns an error if ranks are wrong, channel counts disagree, the
/// kernel does not fit the (padded) input, or the bias length differs
/// from the output-channel count.
pub fn conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
) -> Result<Tensor, TensorError> {
    conv2d_with(x, w, bias, stride, pad, &ExecConfig::default())
}

/// [`conv2d`] with an explicit [`ExecConfig`].
///
/// With `exec.threads > 1` the output is tiled across
/// `(batch, out-channel-block)` tiles — each worker runs the im2col
/// matmul for a disjoint block of output rows — so no synchronisation
/// is needed and results stay bit-identical to the serial path for
/// every thread count. `threads = 1` runs the classic streaming loop.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    exec: &ExecConfig,
) -> Result<Tensor, TensorError> {
    let (n, c, h, wd, o, kh, kw, oh, ow) = check_conv_args(x, w, stride, pad)?;
    let _span = rtoss_obs::span_lazy(|| {
        use rtoss_obs::ArgValue;
        (
            "conv2d",
            vec![
                ("n", ArgValue::U64(n as u64)),
                ("c", ArgValue::U64(c as u64)),
                ("oc", ArgValue::U64(o as u64)),
                ("k", ArgValue::U64(kh as u64)),
                ("threads", ArgValue::U64(exec.threads.max(1) as u64)),
            ],
        )
    });
    if let Some(b) = bias {
        if b.len() != o {
            return Err(TensorError::Invalid {
                op: "conv2d",
                msg: format!("bias length {} != out channels {o}", b.len()),
            });
        }
    }
    let wmat = w.reshape(&[o, c * kh * kw])?;
    let mut out = vec![0.0f32; n * o * oh * ow];
    let img_elems = c * h * wd;
    let out_plane = oh * ow;
    let threads = exec.threads.max(1);
    // Serial body: one im2col buffer live at a time. Also the fallback
    // when a parallel tile fails — tile closures cannot return errors,
    // so a poisoned parallel run is redone here where the `?`s surface
    // the precise failure.
    let serial = |out: &mut [f32]| -> Result<(), TensorError> {
        for ni in 0..n {
            let img = Tensor::from_vec(
                x.as_slice()[ni * img_elems..(ni + 1) * img_elems].to_vec(),
                &[c, h, wd],
            )?;
            let cols = im2col(&img, kh, kw, stride, pad)?;
            let y = matmul(&wmat, &cols)?; // (O, oh*ow)
            let dst = &mut out[ni * o * out_plane..(ni + 1) * o * out_plane];
            dst.copy_from_slice(y.as_slice());
            if let Some(b) = bias {
                for (oc, &bo) in b.iter().enumerate() {
                    for v in &mut dst[oc * out_plane..(oc + 1) * out_plane] {
                        *v += bo;
                    }
                }
            }
        }
        Ok(())
    };
    if threads == 1 {
        serial(&mut out)?;
        return Tensor::from_vec(out, &[n, o, oh, ow]);
    }

    // Parallel path. Phase 1: unfold every image (one tile per image).
    let poisoned = AtomicBool::new(false);
    let mut cols: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
    {
        let col_tiles: Vec<(usize, &mut Option<Tensor>)> = cols.iter_mut().enumerate().collect();
        run_tiles(col_tiles, threads, |(ni, slot)| {
            let Ok(img) = Tensor::from_vec(
                x.as_slice()[ni * img_elems..(ni + 1) * img_elems].to_vec(),
                &[c, h, wd],
            ) else {
                poisoned.store(true, Ordering::Release);
                return;
            };
            match im2col(&img, kh, kw, stride, pad) {
                Ok(c) => *slot = Some(c),
                Err(_) => poisoned.store(true, Ordering::Release),
            }
        });
    }
    if !poisoned.load(Ordering::Acquire) {
        // Phase 2: (batch, out-channel-block) tiles over the output
        // buffer. Splitting wmat by rows never changes any element's
        // accumulation order, so every thread count produces the same
        // bits.
        let blocks_per_img = threads.div_ceil(n.max(1)).min(o).max(1);
        let rows_per_block = o.div_ceil(blocks_per_img).max(1);
        let wd_mat = wmat.as_slice();
        let krows = c * kh * kw;
        let mut tiles: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(n * blocks_per_img);
        for (ni, img_out) in out.chunks_mut(o * out_plane).enumerate() {
            for (bi, block) in img_out.chunks_mut(rows_per_block * out_plane).enumerate() {
                tiles.push((ni, bi * rows_per_block, block));
            }
        }
        run_tiles(tiles, threads, |(ni, oc0, block)| {
            let rows = block.len() / out_plane;
            let Ok(wblock) = Tensor::from_vec(
                wd_mat[oc0 * krows..(oc0 + rows) * krows].to_vec(),
                &[rows, krows],
            ) else {
                poisoned.store(true, Ordering::Release);
                return;
            };
            let Some(cols) = cols[ni].as_ref() else {
                poisoned.store(true, Ordering::Release);
                return;
            };
            let Ok(y) = matmul(&wblock, cols) else {
                poisoned.store(true, Ordering::Release);
                return;
            };
            block.copy_from_slice(y.as_slice());
            if let Some(b) = bias {
                for r in 0..rows {
                    let bo = b[oc0 + r];
                    for v in &mut block[r * out_plane..(r + 1) * out_plane] {
                        *v += bo;
                    }
                }
            }
        });
    }
    if poisoned.load(Ordering::Acquire) {
        serial(&mut out)?;
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, shape `(N, C, H, W)`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weight, shape `(O, C, kH, kW)`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, length `O`.
    pub grad_bias: Vec<f32>,
}

/// Backward pass of [`conv2d`].
///
/// `grad_out` has shape `(N, O, oh, ow)`; `x` and `w` are the forward
/// inputs.
///
/// # Errors
///
/// Returns an error on any shape inconsistency with the forward pass.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Conv2dGrads, TensorError> {
    let (n, c, h, wd, o, kh, kw, oh, ow) = check_conv_args(x, w, stride, pad)?;
    if grad_out.shape() != [n, o, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: grad_out.shape().to_vec(),
            right: vec![n, o, oh, ow],
            op: "conv2d_backward",
        });
    }
    let wmat = w.reshape(&[o, c * kh * kw])?;
    let img_elems = c * h * wd;
    let out_plane = oh * ow;
    let mut grad_input = vec![0.0f32; n * img_elems];
    let mut grad_weight = Tensor::zeros(&[o, c * kh * kw]);
    let mut grad_bias = vec![0.0f32; o];

    for ni in 0..n {
        let go = Tensor::from_vec(
            grad_out.as_slice()[ni * o * out_plane..(ni + 1) * o * out_plane].to_vec(),
            &[o, out_plane],
        )?;
        // Bias gradient: sum over spatial positions.
        for (oc, gb) in grad_bias.iter_mut().enumerate() {
            *gb += go.as_slice()[oc * out_plane..(oc + 1) * out_plane]
                .iter()
                .sum::<f32>();
        }
        let img = Tensor::from_vec(
            x.as_slice()[ni * img_elems..(ni + 1) * img_elems].to_vec(),
            &[c, h, wd],
        )?;
        let cols = im2col(&img, kh, kw, stride, pad)?;
        // dW = dY · colsᵀ
        let gw = matmul_transpose_b(&go, &cols)?;
        grad_weight.add_scaled_in_place(&gw, 1.0)?;
        // dcols = Wᵀ · dY, then fold back.
        let dcols = matmul_transpose_a(&wmat, &go)?;
        let gx = col2im(&dcols, c, h, wd, kh, kw, stride, pad)?;
        grad_input[ni * img_elems..(ni + 1) * img_elems].copy_from_slice(gx.as_slice());
    }

    Ok(Conv2dGrads {
        grad_input: Tensor::from_vec(grad_input, &[n, c, h, wd])?,
        grad_weight: grad_weight.reshape(&[o, c, kh, kw])?,
        grad_bias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (quadruple-loop) convolution used as the ground truth.
    fn conv2d_naive(
        x: &Tensor,
        w: &Tensor,
        bias: Option<&[f32]>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (o, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let oh = out_extent(h, kh, stride, pad).unwrap();
        let ow = out_extent(wd, kw, stride, pad).unwrap();
        let mut out = Tensor::zeros(&[n, o, oh, ow]);
        for ni in 0..n {
            for oc in 0..o {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |b| b[oc]);
                        for ci in 0..c {
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let iy = (oy * stride + ki) as isize - pad as isize;
                                    let ix = (ox * stride + kj) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= wd as isize {
                                        continue;
                                    }
                                    acc += x.at(&[ni, ci, iy as usize, ix as usize])
                                        * w.at(&[oc, ci, ki, kj]);
                                }
                            }
                        }
                        out.set(&[ni, oc, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn rand_t(seed: u64, dims: &[usize]) -> Tensor {
        crate::init::uniform(&mut crate::init::rng(seed), dims, -1.0, 1.0)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
            assert!((x - y).abs() < tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_various_geometries() {
        for &(c, h, w, o, k, s, p) in &[
            (1usize, 5usize, 5usize, 1usize, 3usize, 1usize, 1usize),
            (3, 8, 8, 4, 3, 1, 1),
            (2, 7, 9, 3, 3, 2, 1),
            (4, 6, 6, 2, 1, 1, 0),
            (2, 9, 9, 2, 5, 2, 2),
        ] {
            let x = rand_t(11, &[2, c, h, w]);
            let wt = rand_t(13, &[o, c, k, k]);
            let b: Vec<f32> = (0..o).map(|i| i as f32 * 0.1).collect();
            let got = conv2d(&x, &wt, Some(&b), s, p).unwrap();
            let want = conv2d_naive(&x, &wt, Some(&b), s, p);
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel of value 1 on single channel = identity.
        let x = rand_t(3, &[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, 1, 0).unwrap();
        assert_close(&y, &x, 1e-6);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random y: adjoint property.
        let x = rand_t(5, &[2, 6, 6]);
        let cols = im2col(&x, 3, 3, 1, 1).unwrap();
        let y = rand_t(6, &[cols.shape()[0], cols.shape()[1]]);
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let folded = col2im(&y, 2, 6, 6, 3, 3, 1, 1).unwrap();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(folded.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = rand_t(21, &[1, 2, 5, 5]);
        let w = rand_t(22, &[3, 2, 3, 3]);
        let stride = 1;
        let pad = 1;
        let y = conv2d(&x, &w, None, stride, pad).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let go = Tensor::ones(y.shape());
        let grads = conv2d_backward(&x, &w, &go, stride, pad).unwrap();

        let eps = 1e-3f32;
        // Check a scattering of weight coordinates.
        for &(a, b, ci, cj) in &[(0usize, 0usize, 0usize, 0usize), (1, 1, 1, 2), (2, 0, 2, 1)] {
            let mut wp = w.clone();
            wp.set(&[a, b, ci, cj], w.at(&[a, b, ci, cj]) + eps);
            let yp = conv2d(&x, &wp, None, stride, pad).unwrap();
            let mut wm = w.clone();
            wm.set(&[a, b, ci, cj], w.at(&[a, b, ci, cj]) - eps);
            let ym = conv2d(&x, &wm, None, stride, pad).unwrap();
            let num = (yp.sum() - ym.sum()) / (2.0 * eps);
            let ana = grads.grad_weight.at(&[a, b, ci, cj]);
            assert!(
                (num - ana).abs() < 2e-2,
                "dW[{a},{b},{ci},{cj}]: {num} vs {ana}"
            );
        }
        // And a scattering of input coordinates.
        for &(ci, iy, ix) in &[(0usize, 0usize, 0usize), (1, 2, 3), (0, 4, 4)] {
            let mut xp = x.clone();
            xp.set(&[0, ci, iy, ix], x.at(&[0, ci, iy, ix]) + eps);
            let yp = conv2d(&xp, &w, None, stride, pad).unwrap();
            let mut xm = x.clone();
            xm.set(&[0, ci, iy, ix], x.at(&[0, ci, iy, ix]) - eps);
            let ym = conv2d(&xm, &w, None, stride, pad).unwrap();
            let num = (yp.sum() - ym.sum()) / (2.0 * eps);
            let ana = grads.grad_input.at(&[0, ci, iy, ix]);
            assert!(
                (num - ana).abs() < 2e-2,
                "dX[{ci},{iy},{ix}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let x = rand_t(31, &[2, 1, 4, 4]);
        let w = rand_t(32, &[2, 1, 3, 3]);
        let y = conv2d(&x, &w, None, 1, 1).unwrap();
        let go = Tensor::ones(y.shape());
        let g = conv2d_backward(&x, &w, &go, 1, 1).unwrap();
        // dL/db_o = number of (batch, spatial) positions = 2*4*4.
        for &gb in &g.grad_bias {
            assert!((gb - 32.0).abs() < 1e-4);
        }
    }

    #[test]
    fn parallel_conv_is_bit_identical_to_serial() {
        for &(n, c, h, w, o, k, s, p) in &[
            (
                3usize, 4usize, 9usize, 9usize, 6usize, 3usize, 1usize, 1usize,
            ),
            (1, 2, 7, 8, 5, 3, 2, 1),
            (2, 3, 6, 6, 4, 1, 1, 0),
        ] {
            let x = rand_t(41, &[n, c, h, w]);
            let wt = rand_t(42, &[o, c, k, k]);
            let b: Vec<f32> = (0..o).map(|i| i as f32 * 0.05).collect();
            let serial = conv2d_with(&x, &wt, Some(&b), s, p, &ExecConfig::serial()).unwrap();
            for threads in [2usize, 3, 4, 8] {
                let par = conv2d_with(&x, &wt, Some(&b), s, p, &ExecConfig::with_threads(threads))
                    .unwrap();
                assert_eq!(
                    serial.as_slice(),
                    par.as_slice(),
                    "threads={threads} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn rejects_channel_mismatch_and_bad_kernel() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        assert!(conv2d(&x, &w, None, 1, 1).is_err());
        let w2 = Tensor::zeros(&[2, 3, 7, 7]);
        assert!(conv2d(&x, &w2, None, 1, 0).is_err());
        let w3 = Tensor::zeros(&[2, 3, 3, 3]);
        assert!(conv2d(&x, &w3, Some(&[0.0]), 1, 1).is_err());
    }
}
