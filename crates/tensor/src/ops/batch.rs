//! Batch-dimension stacking and splitting for NCHW activation tensors.
//!
//! The serving layer (`rtoss-serve`) micro-batches independent requests
//! by concatenating them along the batch dimension, running one forward
//! pass, and splitting the result back out. Because every executor in
//! the workspace loops over batch samples independently, a stacked
//! forward pass is bit-identical to running each sample alone; these two
//! ops are the (cheap, copy-only) glue that makes that usable.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Concatenates tensors along dimension 0.
///
/// Every input must have the same rank and identical trailing (non-batch)
/// dimensions; the output batch dimension is the sum of the input batch
/// dimensions.
///
/// # Errors
///
/// Returns [`TensorError::Invalid`] when `xs` is empty and
/// [`TensorError::ShapeMismatch`] when trailing dimensions disagree.
pub fn batch_stack(xs: &[&Tensor]) -> Result<Tensor, TensorError> {
    let first = xs.first().ok_or(TensorError::Invalid {
        op: "batch_stack",
        msg: "no tensors to stack".into(),
    })?;
    let tail = &first.shape()[1..];
    let mut total_batch = 0usize;
    for x in xs {
        if x.rank() != first.rank() || &x.shape()[1..] != tail {
            return Err(TensorError::ShapeMismatch {
                left: first.shape().to_vec(),
                right: x.shape().to_vec(),
                op: "batch_stack",
            });
        }
        total_batch += x.shape()[0];
    }
    let _span = rtoss_obs::span_lazy(|| {
        use rtoss_obs::ArgValue;
        (
            "batch_stack",
            vec![
                ("inputs", ArgValue::U64(xs.len() as u64)),
                ("frames", ArgValue::U64(total_batch as u64)),
            ],
        )
    });
    let mut data = Vec::with_capacity(total_batch * tail.iter().product::<usize>());
    for x in xs {
        data.extend_from_slice(x.as_slice());
    }
    let mut dims = Vec::with_capacity(first.rank());
    dims.push(total_batch);
    dims.extend_from_slice(tail);
    Tensor::from_vec(data, &dims)
}

/// Splits a tensor along dimension 0 into chunks of the given batch sizes.
///
/// Inverse of [`batch_stack`]: `batch_split(&batch_stack(xs)?, sizes)`
/// recovers `xs` exactly when `sizes` lists each input's batch dimension.
///
/// # Errors
///
/// Returns [`TensorError::Invalid`] when `sizes` does not sum to the
/// batch dimension of `x`.
pub fn batch_split(x: &Tensor, sizes: &[usize]) -> Result<Vec<Tensor>, TensorError> {
    let total: usize = sizes.iter().sum();
    if x.rank() == 0 || x.shape()[0] != total {
        return Err(TensorError::Invalid {
            op: "batch_split",
            msg: format!(
                "sizes sum to {total} but batch dimension is {:?}",
                x.shape().first()
            ),
        });
    }
    let tail = &x.shape()[1..];
    let sample: usize = tail.iter().product();
    let mut out = Vec::with_capacity(sizes.len());
    let mut offset = 0usize;
    for &n in sizes {
        let mut dims = Vec::with_capacity(x.rank());
        dims.push(n);
        dims.extend_from_slice(tail);
        let chunk = x.as_slice()[offset * sample..(offset + n) * sample].to_vec();
        out.push(Tensor::from_vec(chunk, &dims)?);
        offset += n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(batch: usize, fill: f32) -> Tensor {
        Tensor::full(&[batch, 2, 3, 3], fill)
    }

    #[test]
    fn stack_then_split_round_trips() {
        let (a, b, c) = (t(1, 1.0), t(2, 2.0), t(1, 3.0));
        let stacked = batch_stack(&[&a, &b, &c]).unwrap();
        assert_eq!(stacked.shape(), &[4, 2, 3, 3]);
        let parts = batch_split(&stacked, &[1, 2, 1]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].as_slice(), a.as_slice());
        assert_eq!(parts[1].as_slice(), b.as_slice());
        assert_eq!(parts[2].as_slice(), c.as_slice());
    }

    #[test]
    fn stack_rejects_mismatched_tails() {
        let a = Tensor::zeros(&[1, 2, 3, 3]);
        let b = Tensor::zeros(&[1, 2, 4, 3]);
        assert!(batch_stack(&[&a, &b]).is_err());
    }

    #[test]
    fn stack_rejects_empty_and_split_rejects_bad_sizes() {
        assert!(batch_stack(&[]).is_err());
        let x = Tensor::zeros(&[3, 2, 2, 2]);
        assert!(batch_split(&x, &[1, 1]).is_err());
    }
}
