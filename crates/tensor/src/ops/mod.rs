//! Tensor operations: matrix multiplication, convolution, pooling.
//!
//! Forward operations come with matching backward (gradient) operations so
//! the `rtoss-nn` crate can train the scaled detector twins. All functions
//! validate shapes and return [`TensorError`](crate::TensorError) on
//! mismatch.

mod batch;
mod conv;
mod matmul;
mod pool;

pub use batch::{batch_split, batch_stack};
pub use conv::{col2im, conv2d, conv2d_backward, conv2d_with, im2col, out_extent, Conv2dGrads};
pub use matmul::{matmul, matmul_transpose_a, matmul_transpose_b};
pub use pool::{
    avgpool2d_global, maxpool2d, maxpool2d_backward, upsample_nearest2x,
    upsample_nearest2x_backward, MaxPoolOutput,
};
