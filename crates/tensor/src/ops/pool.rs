//! Pooling and upsampling with gradients.

use super::conv::out_extent;
use crate::{Tensor, TensorError};

/// Result of [`maxpool2d`]: the pooled tensor plus argmax indices used by
/// the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations, shape `(N, C, oh, ow)`.
    pub output: Tensor,
    /// For each output element, the flat index into the input buffer of
    /// the element that won the max.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over `(N, C, H, W)` with square window `k`, stride
/// `stride` and symmetric zero padding `pad` (padded cells never win
/// unless the window is entirely padding, in which case the output is 0).
///
/// # Errors
///
/// Returns an error if `x` is not rank 4 or the window does not fit.
pub fn maxpool2d(
    x: &Tensor,
    k: usize,
    stride: usize,
    pad: usize,
) -> Result<MaxPoolOutput, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "maxpool2d",
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let oh = out_extent(h, k, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "maxpool2d",
        msg: "window does not fit".into(),
    })?;
    let ow = out_extent(w, k, stride, pad).ok_or_else(|| TensorError::Invalid {
        op: "maxpool2d",
        msg: "window does not fit".into(),
    })?;
    let xd = x.as_slice();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut argmax = vec![usize::MAX; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ki in 0..k {
                        let iy = (oy * stride + ki) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let ix = (ox * stride + kj) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = plane + iy as usize * w + ix as usize;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                    if best_idx == usize::MAX {
                        out[oidx] = 0.0;
                    } else {
                        out[oidx] = best;
                        argmax[oidx] = best_idx;
                    }
                }
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, oh, ow])?,
        argmax,
    })
}

/// Backward pass of [`maxpool2d`]: routes each output gradient to the
/// input element that won the max.
///
/// # Errors
///
/// Returns an error if `grad_out` does not match the recorded argmax
/// length.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor, TensorError> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::Invalid {
            op: "maxpool2d_backward",
            msg: format!(
                "grad_out numel {} != argmax len {}",
                grad_out.numel(),
                argmax.len()
            ),
        });
    }
    let mut gx = Tensor::zeros(input_dims);
    let gxd = gx.as_mut_slice();
    for (&g, &idx) in grad_out.as_slice().iter().zip(argmax.iter()) {
        if idx != usize::MAX {
            gxd[idx] += g;
        }
    }
    Ok(gx)
}

/// Global average pooling: `(N, C, H, W) → (N, C)`.
///
/// # Errors
///
/// Returns an error if `x` is not rank 4.
pub fn avgpool2d_global(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "avgpool2d_global",
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let plane = h * w;
    let xd = x.as_slice();
    let mut out = vec![0.0f32; n * c];
    for (i, o) in out.iter_mut().enumerate() {
        let s: f32 = xd[i * plane..(i + 1) * plane].iter().sum();
        *o = s / plane as f32;
    }
    Tensor::from_vec(out, &[n, c])
}

/// Nearest-neighbour 2× upsampling: `(N, C, H, W) → (N, C, 2H, 2W)`.
///
/// # Errors
///
/// Returns an error if `x` is not rank 4.
pub fn upsample_nearest2x(x: &Tensor) -> Result<Tensor, TensorError> {
    if x.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: x.rank(),
            op: "upsample_nearest2x",
        });
    }
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = (2 * h, 2 * w);
    let xd = x.as_slice();
    let mut out = vec![0.0f32; n * c * oh * ow];
    for nc in 0..n * c {
        let src = nc * h * w;
        let dst = nc * oh * ow;
        for y in 0..oh {
            for xx in 0..ow {
                out[dst + y * ow + xx] = xd[src + (y / 2) * w + (xx / 2)];
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`upsample_nearest2x`]: sums each 2×2 block of the
/// output gradient into the corresponding input cell.
///
/// # Errors
///
/// Returns an error if `grad_out` is not rank 4 with even spatial dims.
pub fn upsample_nearest2x_backward(grad_out: &Tensor) -> Result<Tensor, TensorError> {
    if grad_out.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: grad_out.rank(),
            op: "upsample_nearest2x_backward",
        });
    }
    let (n, c, oh, ow) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    if oh % 2 != 0 || ow % 2 != 0 {
        return Err(TensorError::Invalid {
            op: "upsample_nearest2x_backward",
            msg: format!("spatial dims ({oh},{ow}) must be even"),
        });
    }
    let (h, w) = (oh / 2, ow / 2);
    let gd = grad_out.as_slice();
    let mut out = vec![0.0f32; n * c * h * w];
    for nc in 0..n * c {
        let src = nc * oh * ow;
        let dst = nc * h * w;
        for y in 0..oh {
            for xx in 0..ow {
                out[dst + (y / 2) * w + (xx / 2)] += gd[src + y * ow + xx];
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_basic() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let p = maxpool2d(&x, 2, 2, 0).unwrap();
        assert_eq!(p.output.shape(), &[1, 1, 2, 2]);
        assert_eq!(p.output.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let p = maxpool2d(&x, 2, 2, 0).unwrap();
        let go = Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]).unwrap();
        let gx = maxpool2d_backward(&go, &p.argmax, &[1, 1, 2, 2]).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_with_padding_same_size() {
        // SPP-style: k=5, stride=1, pad=2 keeps spatial size.
        let x = crate::init::uniform(&mut crate::init::rng(4), &[1, 2, 6, 6], -1.0, 1.0);
        let p = maxpool2d(&x, 5, 1, 2).unwrap();
        assert_eq!(p.output.shape(), x.shape());
        // Every output >= corresponding input (window includes the cell).
        for (o, i) in p.output.as_slice().iter().zip(x.as_slice()) {
            assert!(o >= i);
        }
    }

    #[test]
    fn upsample_round_trip_shape_and_backward_sum() {
        let x = crate::init::uniform(&mut crate::init::rng(9), &[2, 3, 4, 4], -1.0, 1.0);
        let y = upsample_nearest2x(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3, 8, 8]);
        assert_eq!(y.at(&[0, 0, 0, 0]), x.at(&[0, 0, 0, 0]));
        assert_eq!(y.at(&[1, 2, 7, 7]), x.at(&[1, 2, 3, 3]));
        // Backward of ones = 4 per input cell (each cell copied 4 times).
        let gx = upsample_nearest2x_backward(&Tensor::ones(y.shape())).unwrap();
        assert!(gx.as_slice().iter().all(|&g| (g - 4.0).abs() < 1e-6));
    }

    #[test]
    fn global_avgpool() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = avgpool2d_global(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1]);
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn rejects_bad_ranks() {
        let x = Tensor::zeros(&[3, 3]);
        assert!(maxpool2d(&x, 2, 2, 0).is_err());
        assert!(upsample_nearest2x(&x).is_err());
        assert!(avgpool2d_global(&x).is_err());
    }
}
