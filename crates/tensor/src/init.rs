//! Deterministic random weight initialisation.
//!
//! All randomness in the workspace flows through seeded ChaCha8 generators
//! so every experiment is exactly reproducible. The paper's pattern
//! selection step ("random initiations in the range \[-1, 1\]", §IV.B)
//! uses [`uniform`]; network weights use [`kaiming_uniform`].

use crate::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a seeded RNG used across the workspace.
///
/// # Example
///
/// ```
/// let mut rng = rtoss_tensor::init::rng(42);
/// let t = rtoss_tensor::init::uniform(&mut rng, &[3, 3], -1.0, 1.0);
/// assert_eq!(t.numel(), 9);
/// ```
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Tensor with elements drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform: lo {lo} must be < hi {hi}");
    let dist = Uniform::new(lo, hi);
    let mut t = Tensor::zeros(dims);
    for v in t.as_mut_slice() {
        *v = dist.sample(rng);
    }
    t
}

/// Tensor with elements drawn from a normal distribution via Box–Muller.
pub fn normal<R: Rng>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let data = t.as_mut_slice();
    let mut i = 0;
    while i < data.len() {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data[i] = mean + std * r * theta.cos();
        i += 1;
        if i < data.len() {
            data[i] = mean + std * r * theta.sin();
            i += 1;
        }
    }
    t
}

/// Kaiming (He) uniform initialisation for a conv weight `(O, I, kH, kW)`
/// or linear weight `(O, I)`: bound = sqrt(6 / fan_in).
///
/// # Panics
///
/// Panics if `dims` has rank < 2 or fan-in is zero.
pub fn kaiming_uniform<R: Rng>(rng: &mut R, dims: &[usize]) -> Tensor {
    assert!(dims.len() >= 2, "kaiming_uniform: rank must be >= 2");
    let fan_in: usize = dims[1..].iter().product();
    assert!(fan_in > 0, "kaiming_uniform: zero fan-in");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(rng, dims, -bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let a = uniform(&mut r1, &[100], -1.0, 1.0);
        let b = uniform(&mut r2, &[100], -1.0, 1.0);
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(&mut rng(1), &[50], -1.0, 1.0);
        let b = uniform(&mut rng(2), &[50], -1.0, 1.0);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let t = normal(&mut rng(3), &[10_000], 0.0, 1.0);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn kaiming_bound_scales_with_fan_in() {
        let t = kaiming_uniform(&mut rng(5), &[8, 4, 3, 3]);
        let bound = (6.0f32 / 36.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn uniform_rejects_bad_range() {
        uniform(&mut rng(0), &[2], 1.0, 1.0);
    }
}
