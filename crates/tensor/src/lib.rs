//! Dense `f32` N-dimensional tensor substrate for the R-TOSS reproduction.
//!
//! The paper's pruning algorithms (R-TOSS, DAC 2023) operate on convolution
//! weight tensors laid out as `(out_channels, in_channels, kh, kw)` and on
//! activation tensors laid out as `(batch, channels, height, width)`.
//! This crate provides exactly that substrate: a contiguous row-major
//! [`Tensor`] plus the operations needed to run and train small detectors
//! on a CPU — im2col convolution, pooling, matrix multiplication,
//! reductions, and weight initialisation.
//!
//! # Example
//!
//! ```
//! use rtoss_tensor::Tensor;
//!
//! # fn main() -> Result<(), rtoss_tensor::TensorError> {
//! let x = Tensor::zeros(&[1, 3, 8, 8]);
//! let w = Tensor::ones(&[4, 3, 3, 3]);
//! let y = rtoss_tensor::ops::conv2d(&x, &w, None, 1, 1)?;
//! assert_eq!(y.shape(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod exec;
pub mod init;
pub mod microkernel;
pub mod ops;
pub mod pool;

pub use error::TensorError;
pub use exec::{Epilogue, EpilogueAct, ExecConfig};
pub use pool::{BatchHandle, PoolTask, WorkerPool};
pub use shape::Shape;
pub use tensor::Tensor;
