//! Data-parallel execution configuration and the scoped-thread tiling
//! helper shared by the dense and sparse convolution executors.
//!
//! The executors parallelise over *output-disjoint* tiles — one
//! `(batch, out-channel)` output plane (or a contiguous block of them)
//! per tile, carved out of the output buffer with `chunks_mut`. Every
//! tile owns its `&mut` slice exclusively, so workers never synchronise
//! on the hot path; `std::thread::scope` is the only machinery used (no
//! external thread-pool dependency — the workspace is offline/vendored).
//!
//! Within a tile, each output element is accumulated in exactly the
//! same floating-point order as the single-threaded executor, so
//! results are **bit-identical** for every thread count, and
//! `threads = 1` takes the plain serial loop with zero spawn overhead.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "RTOSS_THREADS";

/// Default worker-thread count: `RTOSS_THREADS` when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`]. Cached for
/// the process lifetime (CI sets the variable before launch).
pub fn default_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// A per-output-channel post-processing hook an executor applies to an
/// output plane while it is still hot in cache, instead of as separate
/// full passes over the tensor afterwards.
///
/// The epilogue is the fusion half of the compile-before-run execution
/// plan: a `Conv → ChannelAffine → Activation` chain collapses into one
/// conv step whose epilogue carries the folded batch-norm scale/shift
/// and the activation function. Applied per `(batch, out-channel)`
/// plane inside the tiled executors, after the plane's accumulation
/// finishes, so results are bit-identical to running the affine and
/// activation as standalone elementwise passes (`act(scale*v + shift)`
/// performs the exact same `f32` operations in the same order), for
/// every thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// Per-channel affine `v ← scale[c] * v + shift[c]` (folded BN).
    /// Both slices must be indexable by every output channel the
    /// executor touches.
    pub affine: Option<(&'a [f32], &'a [f32])>,
    /// Elementwise activation applied after the affine. An enum rather
    /// than a function pointer so the fused per-plane loop
    /// monomorphizes and inlines — an indirect call per element costs
    /// more than the fusion saves.
    pub act: Option<EpilogueAct>,
}

/// Elementwise activation an [`Epilogue`] can apply. The arithmetic
/// here is the single definition both the fused executors and the
/// graph interpreter evaluate, so the two paths stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpilogueAct {
    /// `x * sigmoid(x)`.
    Silu,
    /// `max(x, 0)`.
    Relu,
    /// `x` for positive `x`, else `0.1 * x`.
    LeakyRelu,
    /// `1 / (1 + exp(-x))`.
    Sigmoid,
}

impl EpilogueAct {
    /// Evaluates the activation at `x`.
    #[inline(always)]
    pub fn eval(self, x: f32) -> f32 {
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        match self {
            EpilogueAct::Silu => x * sigmoid(x),
            EpilogueAct::Relu => x.max(0.0),
            EpilogueAct::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
            EpilogueAct::Sigmoid => sigmoid(x),
        }
    }
}

impl Epilogue<'_> {
    /// The identity epilogue: the executor's plain, unfused behaviour.
    pub const NONE: Epilogue<'static> = Epilogue {
        affine: None,
        act: None,
    };

    /// True when applying this epilogue would change nothing.
    pub fn is_identity(&self) -> bool {
        self.affine.is_none() && self.act.is_none()
    }

    /// Applies the epilogue to one output-channel plane.
    pub fn apply(&self, ch: usize, plane: &mut [f32]) {
        // Monomorphized per activation so `f` inlines into the loop;
        // the arithmetic (`f(s * v + b)`) is identical across arms.
        #[inline(always)]
        fn fused(plane: &mut [f32], sb: Option<(f32, f32)>, f: impl Fn(f32) -> f32) {
            match sb {
                Some((s, b)) => {
                    for v in plane.iter_mut() {
                        *v = f(s * *v + b);
                    }
                }
                None => {
                    for v in plane.iter_mut() {
                        *v = f(*v);
                    }
                }
            }
        }
        match (self.affine, self.act) {
            (affine, Some(act)) => {
                let sb = affine.map(|(scale, shift)| (scale[ch], shift[ch]));
                match act {
                    EpilogueAct::Silu => fused(plane, sb, |x| EpilogueAct::Silu.eval(x)),
                    EpilogueAct::Relu => fused(plane, sb, |x| EpilogueAct::Relu.eval(x)),
                    EpilogueAct::LeakyRelu => fused(plane, sb, |x| EpilogueAct::LeakyRelu.eval(x)),
                    EpilogueAct::Sigmoid => fused(plane, sb, |x| EpilogueAct::Sigmoid.eval(x)),
                }
            }
            (Some((scale, shift)), None) => {
                let (s, b) = (scale[ch], shift[ch]);
                for v in plane.iter_mut() {
                    *v = s * *v + b;
                }
            }
            (None, None) => {}
        }
    }
}

/// How an executor spreads its tile work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads to tile across (clamped to ≥ 1 at use sites;
    /// `1` means the plain serial path).
    pub threads: usize,
}

impl ExecConfig {
    /// The serial configuration: one thread, today's classic loops.
    pub fn serial() -> Self {
        ExecConfig { threads: 1 }
    }

    /// A configuration with an explicit thread count (min 1).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
        }
    }

    /// The process default: `RTOSS_THREADS` or the machine's available
    /// parallelism (see [`default_threads`]).
    pub fn from_env() -> Self {
        ExecConfig {
            threads: default_threads(),
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

/// The worker count [`run_tiles`] actually spawns for a tile count and
/// a requested thread count: clamped to at least 1 and at most one
/// worker per tile.
pub fn effective_threads(n_tiles: usize, threads: usize) -> usize {
    threads.max(1).min(n_tiles.max(1))
}

/// The worker bucket tile `tile_index` is dealt to when `run_tiles`
/// spreads tiles round-robin across `threads` workers. Exposed so the
/// static executor checks in `rtoss-verify` prove the partition the
/// runtime *actually uses* is disjoint and exhaustive, rather than a
/// re-derivation of it.
pub fn bucket_of(tile_index: usize, threads: usize) -> usize {
    tile_index % threads.max(1)
}

/// Runs `f` over every tile, spread across up to `threads` scoped
/// threads.
///
/// Tiles are dealt round-robin to workers (see [`bucket_of`]), so
/// equal-cost tiles balance without a shared work queue. Tiles
/// typically carry disjoint `&mut` output slices (from `chunks_mut`),
/// which is what makes this safe without any locking. With
/// `threads <= 1` (or a single tile) the tiles run inline on the
/// caller's thread in order.
pub fn run_tiles<T, F>(tiles: Vec<T>, threads: usize, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = effective_threads(tiles.len(), threads);
    if threads == 1 {
        for t in tiles {
            f(t);
        }
        return;
    }
    let mut buckets: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, t) in tiles.into_iter().enumerate() {
        buckets[bucket_of(i, threads)].push(t);
    }
    std::thread::scope(|s| {
        for bucket in buckets {
            let f = &f;
            s.spawn(move || {
                for t in bucket {
                    f(t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn epilogue_matches_separate_passes() {
        let scale = [2.0f32, -1.0];
        let shift = [0.5f32, 3.0];
        let relu: fn(f32) -> f32 = |v| v.max(0.0);
        for ch in 0..2 {
            let data = [-1.5f32, 0.0, 0.25, 7.0];
            // Reference: affine pass, then activation pass.
            let mut want = data;
            for v in want.iter_mut() {
                *v = scale[ch] * *v + shift[ch];
            }
            for v in want.iter_mut() {
                *v = relu(*v);
            }
            let mut got = data;
            let epi = Epilogue {
                affine: Some((&scale, &shift)),
                act: Some(EpilogueAct::Relu),
            };
            epi.apply(ch, &mut got);
            assert_eq!(got, want, "channel {ch}");
        }
        let mut unchanged = [1.0f32, -2.0];
        Epilogue::NONE.apply(0, &mut unchanged);
        assert!(Epilogue::NONE.is_identity());
        assert_eq!(unchanged, [1.0, -2.0]);
    }

    #[test]
    fn exec_config_clamps_to_one_thread() {
        assert_eq!(ExecConfig::with_threads(0).threads, 1);
        assert_eq!(ExecConfig::serial().threads, 1);
        assert!(ExecConfig::default().threads >= 1);
    }

    #[test]
    fn run_tiles_visits_every_tile_once() {
        for threads in [1usize, 2, 4, 8] {
            let mut out = [0u8; 37];
            let tiles: Vec<(usize, &mut [u8])> = out.chunks_mut(5).enumerate().collect();
            let visits = AtomicUsize::new(0);
            run_tiles(tiles, threads, |(i, tile)| {
                visits.fetch_add(1, Ordering::Relaxed);
                for v in tile.iter_mut() {
                    *v = i as u8 + 1;
                }
            });
            assert_eq!(visits.load(Ordering::Relaxed), 8, "threads={threads}");
            assert!(out.iter().all(|&v| v != 0), "threads={threads}");
            // Tile i covers elements [5i, 5i+5): check the mapping held.
            assert_eq!(out[0], 1);
            assert_eq!(out[36], 8);
        }
    }

    #[test]
    fn bucket_assignment_partitions_tiles() {
        for threads in 1..=8usize {
            for n_tiles in 0..20usize {
                let eff = effective_threads(n_tiles, threads);
                assert!(eff >= 1 && eff <= threads.max(1));
                let mut per_bucket = vec![0usize; eff];
                for i in 0..n_tiles {
                    let b = bucket_of(i, eff);
                    assert!(b < eff, "tile {i} -> bucket {b} of {eff}");
                    per_bucket[b] += 1;
                }
                assert_eq!(per_bucket.iter().sum::<usize>(), n_tiles);
            }
        }
        assert_eq!(bucket_of(5, 0), 0, "zero threads clamps to one bucket");
    }

    #[test]
    fn run_tiles_handles_empty_and_oversubscribed() {
        run_tiles(Vec::<usize>::new(), 4, |_| panic!("no tiles to run"));
        let mut out = [0u8; 2];
        let tiles: Vec<&mut [u8]> = out.chunks_mut(1).collect();
        run_tiles(tiles, 16, |t| t[0] = 9);
        assert_eq!(out, [9, 9]);
    }
}
