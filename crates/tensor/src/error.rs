use std::error::Error;
use std::fmt;

/// Error produced by tensor constructors and operations.
///
/// All fallible public functions in this crate return
/// `Result<_, TensorError>`; the variants carry enough context to state
/// which shapes were incompatible and why.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The element count implied by a shape does not match the data length.
    DataLenMismatch {
        /// Element count implied by the requested shape.
        expected: usize,
        /// Length of the provided buffer.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: Vec<usize>,
        /// Shape of the right/second operand.
        right: Vec<usize>,
        /// Operation that rejected the shapes.
        op: &'static str,
    },
    /// A tensor had the wrong rank for an operation.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the offending tensor.
        actual: usize,
        /// Operation that rejected the rank.
        op: &'static str,
    },
    /// An operation-specific invariant was violated (dimension too small,
    /// stride of zero, channel mismatch, ...).
    Invalid {
        /// Operation that rejected its arguments.
        op: &'static str,
        /// Human-readable description of the violation.
        msg: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLenMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "{op}: incompatible shapes {left:?} and {right:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            TensorError::Invalid { op, msg } => write!(f, "{op}: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TensorError::DataLenMismatch {
            expected: 4,
            actual: 3,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('4'));

        let e = TensorError::ShapeMismatch {
            left: vec![1, 2],
            right: vec![2, 1],
            op: "add",
        };
        assert!(e.to_string().starts_with("add"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
