//! Persistent work-stealing worker pool for graph-level parallelism.
//!
//! The intra-op tiling helper ([`run_tiles`](crate::exec::run_tiles))
//! spawns scoped threads *per call*, which is fine for a single large
//! dense conv but collapses when a compiled execution plan issues
//! dozens of small fused convs per forward — par_scaling measured the
//! planned path at 0.30x with 2 threads and 0.09x with 8 before this
//! module existed. A [`WorkerPool`] is the fix's substrate: worker
//! threads are spawned **once** (lazily, for [`WorkerPool::global`])
//! and reused across forwards, and callers hand them batches of
//! independent tasks (e.g. the steps of one dependency level of an
//! execution plan).
//!
//! Scheduling is work-stealing over per-worker deques: a submitted
//! batch is dealt round-robin across the deques, each worker drains its
//! own deque from the front and steals from the back of a sibling's
//! deque when its own runs dry, and the submitting caller participates
//! too ([`WorkerPool::help`]) so no thread idles while work remains.
//!
//! The crate forbids `unsafe`, so tasks are `'static` boxed closures
//! ([`PoolTask`]); callers share state with tasks through `Arc`. A
//! panicking task is caught on the worker, the first payload is kept,
//! and [`BatchHandle::wait`] resumes the unwind on the caller — the
//! worker threads themselves never die.

use crate::exec::default_threads;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

/// Monotonic scheduling counters for one [`WorkerPool`], snapshot via
/// [`WorkerPool::stats`]. Where each executed task is counted tells you
/// how work actually flowed: `own_tasks` ran on the worker whose deque
/// they were dealt to, `stolen_tasks` were claimed cross-deque by an
/// idle worker, `helped_tasks` ran on a submitting caller inside
/// [`WorkerPool::help`], and `inline_tasks` ran inline because the pool
/// has zero workers. For any quiesced pool,
/// `own + stolen + helped + inline` equals the total tasks submitted —
/// the conservation law the pool tests and the verify fixtures lean on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Batches accepted by [`WorkerPool::submit`].
    pub batches: u64,
    /// Tasks run inline on the submitter (zero-worker pool).
    pub inline_tasks: u64,
    /// Tasks a worker popped from its own deque.
    pub own_tasks: u64,
    /// Tasks a worker stole from a sibling's deque.
    pub stolen_tasks: u64,
    /// Tasks a helping caller drained via [`WorkerPool::help`].
    pub helped_tasks: u64,
}

/// Shared counter cells behind [`PoolStats`]. All increments and reads
/// are `Relaxed`: these are statistics, not publication — no reader
/// infers data visibility from them.
#[derive(Default)]
struct Stats {
    batches: AtomicU64,
    inline: AtomicU64,
    own: AtomicU64,
    stolen: AtomicU64,
    helped: AtomicU64,
}

impl Stats {
    fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// A unit of work a [`WorkerPool`] executes: a boxed, sendable,
/// `'static` closure. Borrowed state must be shared via `Arc`.
pub type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// Per-batch completion state shared between the queued tasks and the
/// caller's [`BatchHandle`].
struct BatchState {
    /// Tasks not yet finished (decremented *after* a task runs or
    /// panics, so a zero count means every task's effects are visible).
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a task of this batch.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl BatchState {
    fn new(tasks: usize) -> Arc<Self> {
        Arc::new(BatchState {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Runs one task of this batch, catching panics and counting it
    /// finished afterwards (the order matters: the task's captures are
    /// dropped before the count reaches zero, so a waiter observing
    /// zero knows every task-held `Arc` is released).
    fn run_task(self: &Arc<Self>, task: PoolTask) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut remaining = lock(&self.remaining);
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// Waits for one submitted batch; returned by [`WorkerPool::submit`].
#[must_use = "dropping a BatchHandle without waiting loses completion and panic signals"]
pub struct BatchHandle {
    state: Arc<BatchState>,
}

impl BatchHandle {
    /// Blocks until every task of the batch has finished. If any task
    /// panicked, the first panic is re-raised here on the caller.
    pub fn wait(self) {
        let mut remaining = lock(&self.state.remaining);
        while *remaining > 0 {
            remaining = self
                .state
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);
        if let Some(payload) = lock(&self.state.panic).take() {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Wake/shutdown state guarded by one mutex; `generation` is bumped on
/// every submit so sleeping workers can tell a real wake from a
/// spurious one.
struct Gate {
    generation: u64,
    shutdown: bool,
}

/// A queued task plus the batch it reports completion to, so a stolen
/// task still wakes the right waiter.
type QueuedTask = (PoolTask, Arc<BatchState>);

struct Shared {
    /// One deque per *configured* worker slot. May exceed the number of
    /// live worker threads when a spawn failed: tasks dealt into an
    /// unowned deque are still drained, because both [`Shared::claim`]
    /// and [`Shared::steal_any`] scan every deque.
    deques: Vec<Mutex<VecDeque<QueuedTask>>>,
    gate: Mutex<Gate>,
    work: Condvar,
    stats: Stats,
}

impl Shared {
    /// Claims one task for worker `me`: own deque from the front,
    /// then steal from the back of the others.
    fn claim(&self, me: usize) -> Option<QueuedTask> {
        if let Some(own) = self.deques.get(me) {
            if let Some(t) = lock(own).pop_front() {
                Stats::bump(&self.stats.own);
                return Some(t);
            }
        }
        let n = self.deques.len();
        for k in 1..=n {
            let victim = (me + k) % n;
            if victim == me {
                continue;
            }
            if let Some(t) = lock(&self.deques[victim]).pop_back() {
                Stats::bump(&self.stats.stolen);
                return Some(t);
            }
        }
        None
    }

    /// Claims one task for an external helper (the submitting caller):
    /// steals from the back of any deque.
    fn steal_any(&self) -> Option<QueuedTask> {
        for deque in &self.deques {
            if let Some(t) = lock(deque).pop_back() {
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    let mut seen_generation = 0u64;
    loop {
        if let Some((task, batch)) = shared.claim(me) {
            batch.run_task(task);
            continue;
        }
        let mut gate = lock(&shared.gate);
        loop {
            if gate.shutdown {
                return;
            }
            if gate.generation != seen_generation {
                seen_generation = gate.generation;
                break;
            }
            gate = shared
                .work
                .wait(gate)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A persistent pool of worker threads executing batches of independent
/// tasks with work stealing. See the module docs for the design.
///
/// # Example
///
/// ```
/// use rtoss_tensor::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2);
/// let hits = Arc::new(AtomicUsize::new(0));
/// let tasks = (0..8)
///     .map(|_| {
///         let hits = Arc::clone(&hits);
///         Box::new(move || {
///             hits.fetch_add(1, Ordering::Relaxed);
///         }) as Box<dyn FnOnce() + Send>
///     })
///     .collect();
/// let batch = pool.submit(tasks);
/// pool.help(); // the caller works too
/// batch.wait();
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
    /// Rotates the deque a batch starts dealing into, so small batches
    /// don't always land on worker 0.
    next_deque: AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` persistent threads. Zero workers is
    /// allowed: [`run_batch`](Self::run_batch) then executes inline on
    /// the caller.
    ///
    /// If the OS refuses to spawn some worker threads (resource
    /// exhaustion), the pool degrades to the threads that did start
    /// rather than panicking: the unowned deques still get dealt tasks,
    /// and work-stealing (plus the caller's [`help`](Self::help))
    /// drains them. With zero live workers, batches run inline.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(Gate {
                generation: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            stats: Stats::default(),
        });
        let handles = (0..workers)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("rtoss-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .ok()
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            next_deque: AtomicUsize::new(0),
        }
    }

    /// Snapshot of the scheduling counters. Counters are monotonic and
    /// only exact once in-flight batches have been waited on.
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared.stats;
        PoolStats {
            batches: s.batches.load(Ordering::Relaxed),
            inline_tasks: s.inline.load(Ordering::Relaxed),
            own_tasks: s.own.load(Ordering::Relaxed),
            stolen_tasks: s.stolen.load(Ordering::Relaxed),
            helped_tasks: s.helped.load(Ordering::Relaxed),
        }
    }

    /// The process-wide pool, spawned on first use with
    /// [`default_threads`]` - 1` workers (the calling thread is the
    /// remaining worker: it always participates via
    /// [`help`](Self::help)). On a single-core host — or with
    /// `RTOSS_THREADS=1` — the pool has zero workers and batch
    /// execution stays inline, paying no synchronisation at all.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_threads().saturating_sub(1)))
    }

    /// Number of persistent worker threads (not counting callers).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queues a batch of tasks, dealing them round-robin across the
    /// worker deques, and returns a handle to wait on. The caller
    /// should [`help`](Self::help) before waiting so it contributes
    /// instead of idling. With zero workers the tasks run inline here.
    pub fn submit(&self, tasks: Vec<PoolTask>) -> BatchHandle {
        let state = BatchState::new(tasks.len());
        Stats::bump(&self.shared.stats.batches);
        if self.handles.is_empty() {
            for task in tasks {
                Stats::bump(&self.shared.stats.inline);
                state.run_task(task);
            }
            return BatchHandle { state };
        }
        let n = self.shared.deques.len();
        let start = self.next_deque.fetch_add(1, Ordering::Relaxed);
        for (i, task) in tasks.into_iter().enumerate() {
            let deque = &self.shared.deques[(start + i) % n];
            lock(deque).push_back((task, Arc::clone(&state)));
        }
        let mut gate = lock(&self.shared.gate);
        gate.generation = gate.generation.wrapping_add(1);
        drop(gate);
        self.shared.work.notify_all();
        BatchHandle { state }
    }

    /// Runs queued tasks on the calling thread until every deque is
    /// empty. Tasks may belong to any in-flight batch (the pool is
    /// work-conserving); their completions are reported to their own
    /// batches.
    pub fn help(&self) {
        while let Some((task, batch)) = self.shared.steal_any() {
            Stats::bump(&self.shared.stats.helped);
            batch.run_task(task);
        }
    }

    /// Convenience: submit `tasks`, help drain, and wait. Panics from
    /// tasks are re-raised on the caller.
    pub fn run_batch(&self, tasks: Vec<PoolTask>) {
        let batch = self.submit(tasks);
        self.help();
        batch.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut gate = lock(&self.shared.gate);
            gate.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_tasks(n: usize, hits: &Arc<AtomicUsize>) -> Vec<PoolTask> {
        (0..n)
            .map(|_| {
                let hits = Arc::clone(hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as PoolTask
            })
            .collect()
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        for batch_size in [0usize, 1, 2, 7, 64] {
            let hits = Arc::new(AtomicUsize::new(0));
            pool.run_batch(counting_tasks(batch_size, &hits));
            assert_eq!(hits.load(Ordering::Relaxed), batch_size);
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run_batch(counting_tasks(5, &hits));
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            pool.run_batch(counting_tasks(4, &hits));
        }
        assert_eq!(hits.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for _ in 0..10 {
                        pool.run_batch(counting_tasks(8, &hits));
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4 * 10 * 8);
    }

    #[test]
    fn task_panic_propagates_to_the_waiter_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let boom: Vec<PoolTask> = vec![Box::new(|| panic!("task exploded"))];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run_batch(boom)));
        assert!(caught.is_err(), "panic must reach the caller");
        // The pool still works after a task panicked.
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run_batch(counting_tasks(6, &hits));
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn global_pool_size_tracks_default_threads() {
        let pool = WorkerPool::global();
        assert_eq!(pool.workers(), default_threads().saturating_sub(1));
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run_batch(counting_tasks(3, &hits));
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn stats_conserve_every_task_once() {
        let pool = WorkerPool::new(2);
        let total: usize = [1, 4, 16, 33].iter().sum();
        for batch_size in [1usize, 4, 16, 33] {
            let hits = Arc::new(AtomicUsize::new(0));
            pool.run_batch(counting_tasks(batch_size, &hits));
        }
        let s = pool.stats();
        assert_eq!(s.batches, 4);
        assert_eq!(s.inline_tasks, 0);
        assert_eq!(
            s.own_tasks + s.stolen_tasks + s.helped_tasks,
            total as u64,
            "stats {s:?}"
        );
    }

    #[test]
    fn zero_worker_stats_count_inline() {
        let pool = WorkerPool::new(0);
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run_batch(counting_tasks(7, &hits));
        let s = pool.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.inline_tasks, 7);
        assert_eq!(s.own_tasks + s.stolen_tasks + s.helped_tasks, 0);
    }
}
