use crate::{Shape, TensorError};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// The workhorse type of the workspace. Activations use `(N, C, H, W)`
/// layout; convolution weights use `(O, I, kH, kW)`.
///
/// # Example
///
/// ```
/// use rtoss_tensor::Tensor;
///
/// # fn main() -> Result<(), rtoss_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::from(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLenMismatch`] if `data.len()` does not
    /// equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::from(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::DataLenMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape as a slice of extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's [`Shape`].
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLenMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// In-place reshape (no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLenMismatch`] if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let shape = Shape::from(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::DataLenMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
                op: "zip_map",
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum. See [`Tensor::zip_map`] for errors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. See [`Tensor::zip_map`] for errors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. See [`Tensor::zip_map`] for errors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other * alpha` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled_in_place(&mut self, other: &Tensor, alpha: f32) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
                op: "add_scaled_in_place",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Self {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`f32::NEG_INFINITY` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`f32::INFINITY` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm) of the flattened tensor.
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|&x| x.abs()).sum()
    }

    /// Number of elements whose value is exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Fraction of elements that are exactly zero (0 for an empty tensor).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count_zeros() as f64 / self.data.len() as f64
        }
    }

    /// Fills the tensor with a value.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.numel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert_eq!(z.sum(), 0.0);
        let o = Tensor::ones(&[4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(&[2, 2], 2.5);
        assert_eq!(f.mean(), 2.5);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.at(&[1, 2, 3]), 7.0);
        assert_eq!(t.as_slice()[23], 7.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "zip_map", .. })
        ));
    }

    #[test]
    fn norms_and_sparsity() {
        let t = Tensor::from_vec(vec![3.0, 0.0, 4.0, 0.0], &[4]).unwrap();
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.l1_norm(), 7.0);
        assert_eq!(t.count_zeros(), 2);
        assert!((t.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn axpy() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::full(&[3], 2.0);
        a.add_scaled_in_place(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
