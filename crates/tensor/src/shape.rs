use std::fmt;

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Shapes are small (rank ≤ 4 in practice for this workspace) and cheap to
/// clone. Row-major (C-order) strides are derived on demand.
///
/// # Example
///
/// ```
/// use rtoss_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents, outermost first.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of
    /// bounds (debug-quality check, always on — shapes are tiny).
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} != shape rank {}",
            idx.len(),
            self.0.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.0[d],
                "index {i} out of bounds for dim {d} (extent {})",
                self.0[d]
            );
            off += i * s;
        }
        off
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::new(vec![2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(vec![1, 2, 3]).to_string(), "(1x2x3)");
    }
}
