//! Register-tiled sparse-conv microkernels over padded input planes.
//!
//! The R-TOSS executor spends essentially all of its time accumulating
//! a handful of fixed kernel taps into output rows. This module is the
//! shared inner layer for every conv format the sparse crate knows
//! about: the input plane is first copied into an explicitly
//! zero-padded staging plane (see [`padded_plane_len`] /
//! [`pad_plane_into`] — one extra pass over the input, ~1/(2·out_ch)
//! of the conv's arithmetic), then the output plane is walked in
//! [`MR`]×[`NR`] tiles held in a stack accumulator block. Because the
//! padding is materialized, **every tap is unconditional**: no
//! per-tap column clip, no per-row bounds test, just a base offset and
//! `MR` rows of `NR`-wide multiply-adds with compile-time trip counts.
//!
//! That structure is what lets LLVM keep the whole accumulator block
//! in vector registers across the entire in-channel/tap chain (the
//! matrixmultiply-style microkernel contract): the block has *no
//! dynamically-indexed use* — full-width bias fill, unconditional
//! full-width accumulation, and a full-block scratch copy at
//! [`writeback`] whose *scratch* (not the accumulator) absorbs the
//! ragged-edge slicing. One dynamic index anywhere on the block and
//! SROA demotes it to the stack, at which point every tap pays an
//! accumulator load/store and the tiled walk can only tie the scalar
//! reference's read-modify-write sweep, never beat it.
//!
//! Two properties are load-bearing for the rest of the workspace:
//!
//! - **Bit-identity.** For a given output element the accumulation
//!   chain is exactly `bias, tap0, tap1, …` in the order the caller
//!   supplies taps. Taps that land in the materialized zero padding
//!   contribute `val * 0.0 = ±0.0`; adding `±0.0` is bitwise inert for
//!   every accumulator value except exactly `-0.0`, which the chain
//!   can never produce (IEEE-754 round-to-nearest only yields `-0.0`
//!   from `(-0.0) + (-0.0)`, and the chain starts at the bias). So the
//!   padded chain is bit-identical to the clip-and-skip scalar
//!   reference — the same argument the canonical-order dense executor
//!   already relies on for its stored zero taps. RV052/RV092 and the
//!   kernel proptests pin this.
//! - **Monomorphization.** [`accum_taps`] takes the tap arity as a
//!   const generic, so the 2/3/4-entry-pattern bodies (and the dense
//!   9-tap body) compile to fully unrolled straight-line code, the
//!   same match-dispatch-into-inlined-code trick that made the PR 5
//!   `EpilogueAct` epilogue beat fn-pointer dispatch. An arity-generic
//!   [`accum_taps_dyn`] fallback covers irregular COO rows.
//!
//! Index math over tile coordinates is strength-reduced with
//! [`FastDivmod`] (multiply-shift, no hardware divide) in the style of
//! cubek's im2col `Layout`.

use crate::exec::Epilogue;

/// Output-row-segment width of the register tile, in f32 elements.
///
/// Chosen with [`MR`] so the whole accumulator block fits the host
/// vector file with room for the tap broadcast and input loads
/// (`MR*NR = 64` floats = 8 AVX2 ymm, leaving 8 of 16 ymm free for
/// temporaries — a 128-float block spills), and so the 32/64-wide
/// feature maps the twins serve tile evenly.
pub const NR: usize = 16;

/// Output rows per register tile. Each tap issues `MR` unconditional
/// row accumulations from one base offset, so per-tap setup cost is
/// amortized over `MR * NR` output elements.
pub const MR: usize = 4;

/// Strength-reduced unsigned division by a fixed divisor.
///
/// Precomputes a multiply-shift magic pair `(m, s)` such that for any
/// `n < 2^32`, `n / d == (n * m) >> (64 + s)` evaluated in 128-bit
/// arithmetic — the hot loop replaces a hardware divide (~20-90
/// cycles) with a widening multiply and a shift. This is the cubek
/// `FastDivmod` construction; the exhaustive-edge proptest in this
/// module pins correctness against the native operators.
#[derive(Debug, Clone, Copy)]
pub struct FastDivmod {
    d: u32,
    m: u64,
    s: u32,
}

impl FastDivmod {
    /// Builds the magic pair for divisor `d` (clamped to ≥ 1).
    #[inline]
    pub fn new(d: u32) -> Self {
        let d = d.max(1);
        // Round-up magic: m = ceil(2^(32+s) / d) with s = ceil(log2 d).
        // The classic bound (Granlund–Montgomery) guarantees exactness
        // for all 32-bit numerators.
        let s = 32 - (d - 1).leading_zeros();
        let m = if d == 1 {
            // 2^64 does not fit; handled by the d == 1 fast path below.
            0
        } else {
            ((1u128 << (32 + s)).div_ceil(d as u128)) as u64
        };
        Self { d, m, s }
    }

    /// The divisor this instance was built for.
    #[inline]
    pub fn divisor(&self) -> u32 {
        self.d
    }

    /// `n / d` without a hardware divide.
    #[inline(always)]
    pub fn div(&self, n: u32) -> u32 {
        if self.d == 1 {
            return n;
        }
        ((n as u64 as u128 * self.m as u128) >> (32 + self.s)) as u32
    }

    /// `(n / d, n % d)` without a hardware divide.
    #[inline(always)]
    pub fn divmod(&self, n: u32) -> (u32, u32) {
        let q = self.div(n);
        (q, n - q * self.d)
    }
}

/// Length of one zero-padded staging plane for an `h`×`w` input with
/// `pad` rings of padding, **including the dead-lane slack tail**.
///
/// Tiles at the bottom/right plane edges still issue full `MR`×`NR`
/// accumulations; the lanes past the live output range read from the
/// slack region (zeros) and are discarded at writeback. The slack is
/// sized for the worst ragged read: `MR-1` extra rows and `NR-1` extra
/// columns at the maximum stride-scaled reach, plus the kernel span.
#[inline]
pub fn padded_plane_len(h: usize, w: usize, pad: usize, stride: usize, kernel: usize) -> usize {
    let wp = w + 2 * pad;
    let hp = h + 2 * pad;
    hp * wp + (MR - 1) * stride * wp + (NR - 1) * stride + kernel
}

/// Copies one `h`×`w` input plane into the zero-padded staging layout
/// described by [`padded_plane_len`]. `dst` must be zero-filled (or a
/// reused staging buffer from an identical geometry — the border is
/// never overwritten, so its zeros persist across reuse).
#[inline]
pub fn pad_plane_into(dst: &mut [f32], src: &[f32], h: usize, w: usize, pad: usize) {
    let wp = w + 2 * pad;
    for iy in 0..h {
        let at = (iy + pad) * wp + pad;
        let (Some(d), Some(s)) = (dst.get_mut(at..at + w), src.get(iy * w..iy * w + w)) else {
            return;
        };
        d.copy_from_slice(s);
    }
}

/// The accumulator block one tile accumulates into: `MR` rows of `NR`
/// f32 lanes, register-resident in the driver loop (see the module
/// docs for the no-dynamic-index contract that keeps it so).
pub type AccTile = [[f32; NR]; MR];

/// Geometry of one `MR`×`NR` output tile over a padded input plane:
/// which rows/columns of the output plane the accumulator block
/// covers, plus the padded-plane row stride needed to map a tap to
/// input coordinates. Padding is baked into the staging layout, so no
/// `pad` field: output `(oy, ox)` with tap `(ky, kx)` reads padded
/// element `(oy*stride + ky, ox*stride + kx)` unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct Tile {
    /// Padded input plane row stride (`w + 2*pad`).
    pub wp: usize,
    /// First output row the tile covers.
    pub oy0: usize,
    /// Live rows (≤ [`MR`]; short at the plane's bottom edge — the
    /// remaining accumulator rows run over slack zeros and are
    /// discarded at writeback).
    pub mr: usize,
    /// First output column the tile covers.
    pub ox0: usize,
    /// Live lanes per row (≤ [`NR`]; short at the row's right edge).
    pub nr: usize,
    /// Convolution stride (same in both axes).
    pub stride: usize,
}

/// Expands the body once per literal index — source-level unrolling.
/// Loops over the accumulator block, even with static trip counts, are
/// not reliably promoted: LLVM's SROA pass runs before full loop
/// unrolling, sees the induction-variable GEPs into the alloca as
/// dynamic, and pins the block to the stack for good (unrolling later
/// makes the offsets constant, but SROA never reruns). Macro expansion
/// gives every accumulator index a compile-time constant *at MIR
/// level*, which is the contract SROA needs.
macro_rules! unroll {
    ($i:ident in [$($n:literal)*] $b:block) => {
        $( { let $i: usize = $n; $b } )*
    };
}
/// [`unroll!`] over the `MR` row indices.
macro_rules! unroll_mr {
    ($i:ident $b:block) => {
        unroll!($i in [0 1 2 3] $b)
    };
}
/// [`unroll!`] over the `NR` lane indices.
macro_rules! unroll_nr {
    ($i:ident $b:block) => {
        unroll!($i in [0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15] $b)
    };
}
// The unroll macros are hand-expanded to the tile geometry; keep them
// honest if MR/NR ever change.
const _: () = assert!(
    MR == 4 && NR == 16,
    "unroll_mr/unroll_nr match the tile consts"
);

impl Tile {
    /// Adds `val * xp[oy*stride + ky][ox*stride + kx]` into every
    /// accumulator lane — all `MR`×`NR` of them, unconditionally; dead
    /// lanes read staged zeros. `xp` must be the padded plane slice
    /// from the tile's in-channel origin through the slack tail.
    #[inline(always)]
    fn accum_tap(&self, acc: &mut AccTile, xp: &[f32], ky: usize, kx: usize, val: f32) {
        let base = (self.oy0 * self.stride + ky) * self.wp + self.ox0 * self.stride + kx;
        if self.stride == 1 {
            unroll_mr!(r {
                let off = base + r * self.wp;
                // Slack sizing makes this infallible; `if let` (not an
                // early return) keeps the failure edge from extending
                // the accumulator's live range into a cold path.
                if let Some(xs) = xp.get(off..off + NR) {
                    let xs: &[f32; NR] = xs.try_into().unwrap();
                    unroll_nr!(j {
                        acc[r][j] += val * xs[j];
                    });
                }
            });
        } else {
            unroll_mr!(r {
                let off = base + r * self.stride * self.wp;
                if let Some(row) = xp.get(off..off + (NR - 1) * self.stride + 1) {
                    unroll_nr!(j {
                        acc[r][j] += val * row[j * self.stride];
                    });
                }
            });
        }
    }
}

/// Accumulates one kernel's `T` taps into the tile block, with `T`
/// monomorphized so the per-tap loop fully unrolls. `taps`/`vals` must
/// hold at least `T` entries; extras are ignored.
#[inline(always)]
pub fn accum_taps<const T: usize>(
    acc: &mut AccTile,
    xp: &[f32],
    tile: &Tile,
    taps: &[(u8, u8)],
    vals: &[f32],
) {
    debug_assert!(taps.len() >= T && vals.len() >= T);
    if taps.len() < T || vals.len() < T {
        return;
    }
    for t in 0..T {
        tile.accum_tap(acc, xp, taps[t].0 as usize, taps[t].1 as usize, vals[t]);
    }
}

/// Arity-generic fallback for irregular tap counts (COO rows, odd
/// kernel sizes). Same accumulation chain as [`accum_taps`], just
/// without the unroll.
#[inline(always)]
pub fn accum_taps_dyn(acc: &mut AccTile, xp: &[f32], tile: &Tile, taps: &[(u8, u8)], vals: &[f32]) {
    for (t, &(ky, kx)) in taps.iter().enumerate() {
        tile.accum_tap(acc, xp, ky as usize, kx as usize, vals[t]);
    }
}

/// Dispatches on the tap arity so the common pattern bodies (2EP/3EP/
/// 4EP plus the 1×1 single tap and the dense 3×3 9-tap) hit the
/// unrolled monomorphic instantiations.
#[inline(always)]
pub fn accum_kernel(acc: &mut AccTile, xp: &[f32], tile: &Tile, taps: &[(u8, u8)], vals: &[f32]) {
    match taps.len().min(vals.len()) {
        0 => {}
        1 => accum_taps::<1>(acc, xp, tile, taps, vals),
        2 => accum_taps::<2>(acc, xp, tile, taps, vals),
        3 => accum_taps::<3>(acc, xp, tile, taps, vals),
        4 => accum_taps::<4>(acc, xp, tile, taps, vals),
        9 => accum_taps::<9>(acc, xp, tile, taps, vals),
        _ => accum_taps_dyn(acc, xp, tile, taps, vals),
    }
}

/// Writes the live part of a finished tile into the output plane with
/// the fused epilogue applied per row segment.
///
/// The block is first copied whole into a scratch block (a static,
/// full-width read — the accumulator's only escape), and the ragged
/// `mr`/`nr` slicing happens on the *scratch*: this is what keeps the
/// accumulator itself free of dynamically-indexed uses and therefore
/// register-promotable. `Epilogue::apply` is per-element with
/// channel-constant parameters, so applying it per row segment is
/// bit-identical to applying it to the whole plane.
#[inline(always)]
pub fn writeback(
    out_plane: &mut [f32],
    ow: usize,
    tile: &Tile,
    acc: &AccTile,
    oc: usize,
    epilogue: &Epilogue<'_>,
) {
    let scratch: AccTile = *acc;
    let nr = tile.nr.min(NR);
    for (r, row) in scratch.iter().enumerate().take(tile.mr.min(MR)) {
        let at = (tile.oy0 + r) * ow + tile.ox0;
        let Some(dst) = out_plane.get_mut(at..at + nr) else {
            continue;
        };
        dst.copy_from_slice(&row[..nr]);
        epilogue.apply(oc, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Epilogue;

    #[test]
    fn fast_divmod_matches_native_on_edges_and_random() {
        let divisors = [1u32, 2, 3, 5, 7, 9, 16, 27, 63, 64, 65, 1000, u32::MAX];
        let numerators = [
            0u32,
            1,
            2,
            8,
            9,
            63,
            64,
            65,
            12345,
            (1 << 16) - 1,
            1 << 16,
            u32::MAX - 1,
            u32::MAX,
        ];
        for &d in &divisors {
            let f = FastDivmod::new(d);
            assert_eq!(f.divisor(), d);
            for &n in &numerators {
                assert_eq!(f.div(n), n / d, "div n={n} d={d}");
                assert_eq!(f.divmod(n), (n / d, n % d), "divmod n={n} d={d}");
            }
        }
        // Deterministic pseudo-random sweep (xorshift).
        let mut state = 0x9E3779B9u32;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let n = state;
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let d = state.max(1);
            let f = FastDivmod::new(d);
            assert_eq!(f.divmod(n), (n / d, n % d), "n={n} d={d}");
        }
    }

    #[test]
    fn divisor_zero_clamps_to_one() {
        let f = FastDivmod::new(0);
        assert_eq!(f.divisor(), 1);
        assert_eq!(f.divmod(42), (42, 0));
    }

    #[test]
    fn padded_plane_round_trips_and_borders_zero() {
        let (h, w, pad, stride, k) = (5usize, 7usize, 2usize, 1usize, 3usize);
        let src: Vec<f32> = (0..h * w).map(|i| i as f32 + 1.0).collect();
        let mut dst = vec![0.0f32; padded_plane_len(h, w, pad, stride, k)];
        pad_plane_into(&mut dst, &src, h, w, pad);
        let wp = w + 2 * pad;
        let hp = h + 2 * pad;
        for iy in 0..hp {
            for ix in 0..wp {
                let inside = iy >= pad && iy < pad + h && ix >= pad && ix < pad + w;
                let want = if inside {
                    src[(iy - pad) * w + (ix - pad)]
                } else {
                    0.0
                };
                assert_eq!(dst[iy * wp + ix], want, "iy={iy} ix={ix}");
            }
        }
        // Slack tail untouched.
        assert!(dst[hp * wp..].iter().all(|&v| v == 0.0));
    }

    /// Scalar reference: one output element at a time, taps in order,
    /// out-of-bounds taps skipped (the clip-and-skip chain the padded
    /// path must match bitwise).
    #[allow(clippy::too_many_arguments)]
    fn reference_row(
        w_in: usize,
        h_in: usize,
        w_out: usize,
        oy: usize,
        stride: usize,
        pad: usize,
        x_plane: &[f32],
        taps: &[(u8, u8)],
        vals: &[f32],
        bias: f32,
    ) -> Vec<f32> {
        (0..w_out)
            .map(|ox| {
                let mut acc = bias;
                for (t, &(ky, kx)) in taps.iter().enumerate() {
                    let iy = (oy * stride + ky as usize) as isize - pad as isize;
                    let ix = (ox * stride + kx as usize) as isize - pad as isize;
                    if iy >= 0 && iy < h_in as isize && ix >= 0 && ix < w_in as isize {
                        acc += vals[t] * x_plane[iy as usize * w_in + ix as usize];
                    }
                }
                acc
            })
            .collect()
    }

    #[test]
    fn tile_accumulation_bit_identical_to_scalar_reference() {
        let mut state = 0xC0FFEEu32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for &(h_in, w_in, stride, pad, k) in &[
            (7usize, 9usize, 1usize, 1usize, 3usize),
            (6, 6, 2, 1, 3),
            (5, 17, 1, 0, 3),
            (4, 33, 2, 0, 1),
            (19, 40, 1, 1, 3),
        ] {
            let w_out = (w_in + 2 * pad - k) / stride + 1;
            let h_out = (h_in + 2 * pad - k) / stride + 1;
            let x: Vec<f32> = (0..h_in * w_in)
                .map(|_| (next() % 2000) as f32 / 100.0 - 10.0)
                .collect();
            let mut xp = vec![0.0f32; padded_plane_len(h_in, w_in, pad, stride, k)];
            pad_plane_into(&mut xp, &x, h_in, w_in, pad);
            // All tap subsets of the k×k window, up to 9 taps.
            let all: Vec<(u8, u8)> = (0..k as u8)
                .flat_map(|ky| (0..k as u8).map(move |kx| (ky, kx)))
                .collect();
            for arity in 1..=all.len() {
                let taps: Vec<(u8, u8)> = all.iter().copied().take(arity).collect();
                let vals: Vec<f32> = (0..arity)
                    .map(|_| (next() % 1000) as f32 / 250.0 - 2.0)
                    .collect();
                let bias = (next() % 100) as f32 / 10.0;
                let want: Vec<Vec<f32>> = (0..h_out)
                    .map(|oy| {
                        reference_row(w_in, h_in, w_out, oy, stride, pad, &x, &taps, &vals, bias)
                    })
                    .collect();
                let mut got = vec![0.0f32; h_out * w_out];
                let mut oy0 = 0;
                while oy0 < h_out {
                    let mr = MR.min(h_out - oy0);
                    let mut ox0 = 0;
                    while ox0 < w_out {
                        let nr = NR.min(w_out - ox0);
                        let mut acc = [[bias; NR]; MR];
                        let tile = Tile {
                            wp: w_in + 2 * pad,
                            oy0,
                            mr,
                            ox0,
                            nr,
                            stride,
                        };
                        accum_kernel(&mut acc, &xp, &tile, &taps, &vals);
                        writeback(
                            &mut got,
                            w_out,
                            &tile,
                            &acc,
                            0,
                            &Epilogue {
                                affine: None,
                                act: None,
                            },
                        );
                        ox0 += nr;
                    }
                    oy0 += mr;
                }
                for oy in 0..h_out {
                    for ox in 0..w_out {
                        assert_eq!(
                            got[oy * w_out + ox].to_bits(),
                            want[oy][ox].to_bits(),
                            "h{h_in}w{w_in}s{stride}p{pad}k{k} arity={arity} oy={oy} ox={ox}"
                        );
                    }
                }
            }
        }
    }
}
