//! Property-based tests of the tensor substrate's algebraic laws.

use proptest::prelude::*;
use rtoss_tensor::{init, ops, Tensor};

fn small_tensor(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max).prop_flat_map(|(a, b)| {
        proptest::collection::vec(-10.0f32..10.0, a * b)
            .prop_map(move |v| Tensor::from_vec(v, &[a, b]).expect("len matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_is_commutative_and_sub_inverts(a in small_tensor(6)) {
        let b = Tensor::full(a.shape(), 1.5);
        let ab = a.add(&b).expect("same shape");
        let ba = b.add(&a).expect("same shape");
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
        let back = ab.sub(&b).expect("same shape");
        for (&x, &y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_distributes_over_add(a in small_tensor(5)) {
        let b = Tensor::full(a.shape(), -2.0);
        let lhs = a.add(&b).expect("same shape").scale(3.0);
        let rhs = a.scale(3.0).add(&b.scale(3.0)).expect("same shape");
        for (&x, &y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn l2_norm_is_scale_homogeneous(a in small_tensor(6), k in -4.0f32..4.0) {
        let lhs = a.scale(k).l2_norm();
        let rhs = k.abs() * a.l2_norm();
        prop_assert!((lhs - rhs).abs() <= 1e-3 * rhs.max(1.0));
    }

    #[test]
    fn reshape_preserves_sum_and_norm(a in small_tensor(6)) {
        let flat = a.reshape(&[a.numel()]).expect("same element count");
        prop_assert!((flat.sum() - a.sum()).abs() < 1e-3);
        prop_assert!((flat.l2_norm() - a.l2_norm()).abs() < 1e-4);
    }

    #[test]
    fn matmul_identity_and_zero(a in small_tensor(5)) {
        let n = a.shape()[1];
        let mut eye = Tensor::zeros(&[n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0);
        }
        let out = ops::matmul(&a, &eye).expect("inner dims agree");
        prop_assert_eq!(out.as_slice(), a.as_slice());
        let zero = Tensor::zeros(&[n, 3]);
        let z = ops::matmul(&a, &zero).expect("inner dims agree");
        prop_assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv_output_shape_law(
        c in 1usize..4, h in 3usize..10, o in 1usize..4,
        k in prop_oneof![Just(1usize), Just(3usize)],
        stride in 1usize..3
    ) {
        let pad = k / 2;
        let x = init::uniform(&mut init::rng(1), &[1, c, h, h], -1.0, 1.0);
        let w = init::uniform(&mut init::rng(2), &[o, c, k, k], -1.0, 1.0);
        let y = ops::conv2d(&x, &w, None, stride, pad).expect("geometry valid");
        let expect = (h + 2 * pad - k) / stride + 1;
        prop_assert_eq!(y.shape(), &[1, o, expect, expect]);
    }

    #[test]
    fn maxpool_majorises_input_mean(h in 4usize..10) {
        let x = init::uniform(&mut init::rng(3), &[1, 2, h, h], -1.0, 1.0);
        let p = ops::maxpool2d(&x, 2, 2, 0).expect("geometry valid");
        // Max of each window >= mean of the tensor can fail; instead:
        // every pooled value must appear in the input.
        for &v in p.output.as_slice() {
            prop_assert!(x.as_slice().contains(&v));
        }
    }
}
