//! Source lint for the serving and sparse-execution hot paths
//! (RV030/RV031).
//!
//! The serving loop and the sparse executors must not panic: a panic in
//! a worker thread poisons locks and silently drops queued requests.
//! This lint walks `crates/serve/src` and `crates/sparse/src` and
//! denies panic-capable calls (`.unwrap()`, `.expect(`, `panic!(`,
//! `unreachable!(`, `todo!(`, `unimplemented!(`) outside test code
//! (RV030), and requires every `unsafe` site to carry a `// SAFETY:`
//! comment on the same or preceding line (RV031). It is a line
//! scanner, not a parser — by repo convention test modules sit in a
//! trailing `#[cfg(test)] mod tests`, so scanning stops at the first
//! `#[cfg(test)]`.
//!
//! Deliberately *not* flagged: `.unwrap_or_else(`, `.unwrap_or(`,
//! `.expect_err(` (none of which can panic on the hot path), and
//! `debug_assert!` (compiled out of release builds).

use crate::diag::Diagnostic;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Panic-capable call patterns denied in hot-path source (RV030).
/// `.unwrap()` with parens excludes `.unwrap_or*`; `.expect(` with the
/// open paren excludes `.expect_err(`.
const DENIED: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Lints one source file's text. `path_label` seeds diagnostic
/// locations as `path:line`.
pub fn lint_source(path_label: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut prev_line: &str = "";
    for (lineno, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.contains("#[cfg(test)]") {
            break; // trailing test module: out of scope
        }
        if trimmed.starts_with("//") {
            prev_line = line;
            continue; // comment (incl. /// and //!)
        }
        let loc = || format!("{path_label}:{}", lineno + 1);
        for &pat in DENIED {
            if trimmed.contains(pat) {
                out.push(Diagnostic::error(
                    "RV030",
                    loc(),
                    format!(
                        "panic-capable `{pat})` in a hot path; recover \
                         (`unwrap_or_else(|e| e.into_inner())` for locks) or \
                         return an error",
                        pat = pat.trim_end_matches('('),
                    ),
                ));
            }
        }
        if trimmed.contains("unsafe") && !trimmed.contains("unsafe_code") {
            let documented =
                line.contains("// SAFETY:") || prev_line.trim_start().starts_with("// SAFETY:");
            if !documented {
                out.push(Diagnostic::error(
                    "RV031",
                    loc(),
                    "`unsafe` without a `// SAFETY:` comment on the same or \
                     preceding line"
                        .to_string(),
                ));
            }
        }
        prev_line = line;
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The hot-path source roots the lint covers, relative to the repo
/// root.
pub const HOT_PATH_ROOTS: &[&str] = &["crates/serve/src", "crates/sparse/src"];

/// Lints every hot-path source file under `repo_root`.
pub fn lint_paths(repo_root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in HOT_PATH_ROOTS {
        let dir = repo_root.join(root);
        if dir.is_dir() {
            rust_files(&dir, &mut files)?;
        }
    }
    let mut out = Vec::new();
    for file in files {
        let src = fs::read_to_string(&file)?;
        let label = file
            .strip_prefix(repo_root)
            .unwrap_or(&file)
            .display()
            .to_string();
        out.extend(lint_source(&label, &src));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denies_unwrap_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let ds = lint_source("x.rs", src);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RV030");
        assert_eq!(ds[0].location, "x.rs:2");
    }

    #[test]
    fn allows_unwrap_in_test_module_and_recovery_forms() {
        let src = "fn f() {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let ds = lint_source("x.rs", bad);
        assert!(ds.iter().any(|d| d.code == "RV031"), "{ds:?}");
        let good = "fn f() {\n    // SAFETY: n < len checked above\n    unsafe { g(n) }\n}\n";
        assert!(lint_source("x.rs", good).is_empty());
        let forbid = "#![forbid(unsafe_code)]\n";
        assert!(lint_source("x.rs", forbid).is_empty());
    }

    #[test]
    fn repo_hot_paths_are_clean() {
        // crates/verify is two levels below the repo root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ds = lint_paths(&root).unwrap();
        assert!(ds.is_empty(), "hot-path lint findings: {ds:?}");
    }
}
