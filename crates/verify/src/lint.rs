//! Token-aware source lints for the serving and execution hot paths
//! (RV030/RV031) and their concurrency discipline (RV071–RV073).
//!
//! The hot paths must not panic — a panic in a worker thread poisons
//! locks and silently drops queued requests — and, since PR 7 made the
//! planned path genuinely concurrent, they must also follow a small
//! set of locking rules that keep the `WorkerPool` deadlock-free. The
//! lints walk every file under [`HOT_PATH_ROOTS`] as a *token stream*
//! (see [`crate::lexer`]), not lines, so a `panic!(` inside a string
//! literal or block comment can never fire a finding, and scanning
//! resumes after an inline `#[cfg(test)]` module instead of silently
//! stopping at the first one.
//!
//! - **RV030** — no panic-capable call (`.unwrap()`, `.expect(`,
//!   `panic!(`, `unreachable!(`, `todo!(`, `unimplemented!(`) outside
//!   `#[cfg(test)]` items. Recovery forms (`.unwrap_or_else(`,
//!   `.unwrap_or(`, `.expect_err(`) and `debug_assert!` are fine.
//! - **RV031** — every `unsafe` token carries a `// SAFETY:` comment
//!   on the same or preceding line.
//! - **RV071** — lock-acquisition order is consistent: acquiring lock
//!   B while holding lock A and, elsewhere in the same crate, A while
//!   holding B is a deadlock waiting for the right interleaving. The
//!   engine records held→acquired edges per crate and reports cycles.
//! - **RV072** — no `Ordering::Relaxed` on publication-shaped atomic
//!   operations (`store`, `swap`, `compare_exchange*`): a Relaxed
//!   store does not order the data it guards. Counters (`fetch_*`,
//!   `load`) may stay Relaxed; a deliberate Relaxed publication can be
//!   waived with an `// ORDERING:` comment explaining why.
//! - **RV073** — no lock guard held across `pool.submit(…)`, `help()`,
//!   or a zero-argument `wait()`: the pool may run arbitrary tasks (or
//!   block on them) while the guard pins other threads.
//!   `Condvar::wait(guard)` takes the guard by value and is exempt.

use crate::diag::Diagnostic;
use crate::lexer::{tokenize, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Macro names denied in hot-path source (RV030); `assert!` and
/// `debug_assert!` are deliberate panics on violated preconditions and
/// stay allowed.
const DENIED_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Atomic methods that publish data to other threads (RV072). `load`
/// and the `fetch_*` read-modify-write counters are not listed: a
/// Relaxed counter is fine, a Relaxed publication is not.
const PUBLISHING_ATOMICS: &[&str] = &["store", "swap", "compare_exchange", "compare_exchange_weak"];

/// The hot-path source roots the lint covers, relative to the repo
/// root.
pub const HOT_PATH_ROOTS: &[&str] = &[
    "crates/fleet/src",
    "crates/serve/src",
    "crates/sparse/src",
    "crates/tensor/src",
];

/// A live lock guard the engine is tracking.
#[derive(Debug, Clone)]
struct GuardState {
    /// `let`-binding name, when there is one (`drop(name)` releases).
    binding: Option<String>,
    /// Dotted receiver path of the lock, e.g. `shared.gate`; `None`
    /// when the receiver is not a nameable place (a call result).
    resource: Option<String>,
    /// Brace depth at the acquisition site; the guard dies when the
    /// enclosing block closes.
    depth: usize,
    /// Un-bound (temporary) guards die at the end of the statement.
    temp: bool,
    /// Line of the acquisition, for diagnostics.
    line: usize,
}

/// Accumulates findings and the per-crate lock-order graph across
/// files. [`lint_source`] wraps it for single-file use; [`lint_paths`]
/// runs one engine over every hot-path file so RV071 sees
/// lock-order edges from different files of the same crate.
#[derive(Debug, Default)]
pub struct LintEngine {
    diags: Vec<Diagnostic>,
    /// (held resource, acquired resource) → location of the first
    /// acquisition that created the edge. Resources are keyed
    /// `crate-label:dotted.path` so distinct crates never interfere.
    lock_edges: BTreeMap<(String, String), String>,
}

impl LintEngine {
    /// A fresh engine with no findings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lints one file's source text. `label` seeds diagnostic
    /// locations as `label:line` and keys the lock-order graph by its
    /// leading `crates/<name>` component.
    pub fn lint_file(&mut self, label: &str, src: &str) {
        let toks = tokenize(src);
        let file = FileLint::new(label, &toks);
        file.run(self);
    }

    /// Finishes the run: checks the accumulated lock-order graph for
    /// cycles (RV071) and returns every finding.
    pub fn finish(mut self) -> Vec<Diagnostic> {
        self.check_lock_order_cycles();
        self.diags
    }

    fn check_lock_order_cycles(&mut self) {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (held, acquired) in self.lock_edges.keys() {
            adj.entry(held.as_str())
                .or_default()
                .push(acquired.as_str());
        }
        let roots: Vec<&str> = adj.keys().copied().collect();
        // Iterative DFS with an explicit stack; a back edge to a node
        // on the current path is a cycle. Each cycle is reported once,
        // keyed by its sorted node set.
        let mut cycles: Vec<Vec<String>> = Vec::new();
        let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        for root in roots {
            if done.contains(root) {
                continue;
            }
            let mut path: Vec<&str> = Vec::new();
            let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
            while let Some(top) = stack.last_mut() {
                let (node, next) = (top.0, top.1);
                if next == 0 {
                    path.push(node);
                }
                let out: &[&str] = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if next >= out.len() {
                    stack.pop();
                    path.pop();
                    done.insert(node);
                    continue;
                }
                top.1 += 1;
                let to = out[next];
                if let Some(pos) = path.iter().position(|&n| n == to) {
                    let cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                    let mut key = cycle.clone();
                    key.sort();
                    if seen_cycles.insert(key) {
                        cycles.push(cycle);
                    }
                } else if !done.contains(to) {
                    stack.push((to, 0));
                }
            }
        }
        for cycle in cycles {
            self.report_cycle(&cycle);
        }
    }

    fn report_cycle(&mut self, cycle: &[String]) {
        let mut desc = String::new();
        let mut first_loc = None;
        for (k, held) in cycle.iter().enumerate() {
            let acquired = &cycle[(k + 1) % cycle.len()];
            let loc = self
                .lock_edges
                .get(&(held.clone(), acquired.clone()))
                .cloned()
                .unwrap_or_default();
            if first_loc.is_none() {
                first_loc = Some(loc.clone());
            }
            if !desc.is_empty() {
                desc.push_str(", ");
            }
            desc.push_str(&format!("{held} -> {acquired} (at {loc})"));
        }
        self.diags.push(Diagnostic::error(
            "RV071",
            first_loc.unwrap_or_default(),
            format!(
                "inconsistent lock-acquisition order — the cycle {desc} can deadlock \
                 under the right interleaving; pick one global order and stick to it"
            ),
        ));
    }
}

/// Per-file lint pass: walks the token stream with guard/scope state.
struct FileLint<'a> {
    label: &'a str,
    crate_label: String,
    toks: &'a [Token<'a>],
    /// Indices into `toks` of code tokens (not whitespace/comments).
    sig: Vec<usize>,
    /// Lines covered by any comment (for contiguous-block waivers).
    comment_lines: BTreeSet<usize>,
    /// Lines covered by a comment containing `SAFETY:`.
    safety_lines: BTreeSet<usize>,
    /// Lines covered by a comment containing `ORDERING:`.
    ordering_lines: BTreeSet<usize>,
}

impl<'a> FileLint<'a> {
    fn new(label: &'a str, toks: &'a [Token<'a>]) -> Self {
        let sig = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_code())
            .map(|(i, _)| i)
            .collect();
        let mut comment_lines = BTreeSet::new();
        let mut safety_lines = BTreeSet::new();
        let mut ordering_lines = BTreeSet::new();
        for t in toks {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let span = t.line..=t.line + t.text.matches('\n').count();
            comment_lines.extend(span.clone());
            if t.text.contains("SAFETY:") {
                safety_lines.extend(span.clone());
            }
            if t.text.contains("ORDERING:") {
                ordering_lines.extend(span);
            }
        }
        // `crates/tensor/src/pool.rs` → `crates/tensor`; shorter
        // labels (fixture snippets) key by their first component.
        let crate_label = label
            .split(['/', '\\'])
            .take(2)
            .collect::<Vec<_>>()
            .join("/");
        FileLint {
            label,
            crate_label,
            toks,
            sig,
            comment_lines,
            safety_lines,
            ordering_lines,
        }
    }

    fn text(&self, p: usize) -> &'a str {
        self.sig
            .get(p)
            .map(|&i| self.toks[i].text)
            .unwrap_or_default()
    }

    fn kind(&self, p: usize) -> Option<TokenKind> {
        self.sig.get(p).map(|&i| self.toks[i].kind)
    }

    fn line(&self, p: usize) -> usize {
        self.sig.get(p).map(|&i| self.toks[i].line).unwrap_or(0)
    }

    fn loc(&self, p: usize) -> String {
        format!("{}:{}", self.label, self.line(p))
    }

    /// From `open` (a `[`/`(`/`{`), returns the position just past the
    /// matching closer, balancing all three bracket kinds.
    fn skip_group(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut p = open;
        while p < self.sig.len() {
            match self.text(p) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return p + 1;
                    }
                }
                _ => {}
            }
            p += 1;
        }
        p
    }

    /// From a `]`/`)` closer at `close`, returns the position of the
    /// matching opener (or 0 at worst).
    fn matching_open(&self, close: usize) -> usize {
        let mut depth = 0usize;
        let mut p = close;
        loop {
            match self.text(p) {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth == 0 {
                        return p;
                    }
                }
                _ => {}
            }
            if p == 0 {
                return 0;
            }
            p -= 1;
        }
    }

    /// If position `p` starts a `#[cfg(test)]` attribute, returns the
    /// position just past the attributed item (skipping any further
    /// attributes, then either a `;`-terminated declaration or a
    /// braced body).
    fn cfg_test_skip(&self, p: usize) -> Option<usize> {
        if self.text(p) != "#" || self.text(p + 1) != "[" {
            return None;
        }
        let close = self.skip_group(p + 1);
        let attr: String = (p + 2..close.saturating_sub(1))
            .map(|q| self.text(q))
            .collect();
        if attr != "cfg(test)" {
            return None;
        }
        let mut q = close;
        while self.text(q) == "#" && self.text(q + 1) == "[" {
            q = self.skip_group(q + 1);
        }
        // Walk to the item's body `{` (skipping grouped prefixes like
        // a fn's parameter list) or its terminating `;`.
        while q < self.sig.len() {
            match self.text(q) {
                "{" => return Some(self.skip_group(q)),
                "(" | "[" => q = self.skip_group(q),
                ";" => return Some(q + 1),
                _ => q += 1,
            }
        }
        Some(q)
    }

    /// Dotted receiver path ending at sig position `end` (inclusive),
    /// e.g. for `self.shared.deques[i].lock()` with `end` on `]`'s
    /// predecessor chain: returns `shared.deques`. `None` when the
    /// receiver is not a nameable place.
    fn receiver_name(&self, mut end: usize) -> Option<String> {
        let mut parts: Vec<&str> = Vec::new();
        loop {
            match self.text(end) {
                "]" => {
                    // Drop index expressions: `deques[i]` names the
                    // same lock family whatever `i` is.
                    let open = self.matching_open(end);
                    if open == 0 {
                        break;
                    }
                    end = open.checked_sub(1)?;
                }
                _ if self.kind(end) == Some(TokenKind::Ident) => {
                    parts.push(self.text(end));
                    match end.checked_sub(1) {
                        Some(prev) if self.text(prev) == "." => match prev.checked_sub(1) {
                            Some(p2) => end = p2,
                            None => break,
                        },
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        parts.reverse();
        if parts.first() == Some(&"self") {
            parts.remove(0);
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.join("."))
        }
    }

    /// Lock resource named by a free-function call `lock(&self.m)`:
    /// the dotted path of the argument.
    fn free_lock_resource(&self, open: usize) -> Option<String> {
        let close = self.skip_group(open).checked_sub(1)?;
        let mut parts: Vec<&str> = Vec::new();
        let mut q = open + 1;
        while q < close {
            match self.text(q) {
                "&" | "mut" | "." => q += 1,
                "[" => q = self.skip_group(q),
                _ if self.kind(q) == Some(TokenKind::Ident) => {
                    if self.text(q) != "self" {
                        parts.push(self.text(q));
                    }
                    q += 1;
                }
                _ => return None,
            }
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.join("."))
        }
    }

    /// `let`-binding name starting after sig position `p` (the `let`):
    /// handles `let g`, `let mut g`, and single-field tuple-struct
    /// patterns `let Some(g)` / `let Ok(mut g)`.
    fn let_binding(&self, p: usize) -> Option<String> {
        let mut q = p + 1;
        if self.text(q) == "mut" {
            q += 1;
        }
        if self.kind(q) != Some(TokenKind::Ident) {
            return None;
        }
        if self.text(q + 1) == "(" {
            let mut r = q + 2;
            if self.text(r) == "mut" {
                r += 1;
            }
            if self.kind(r) == Some(TokenKind::Ident) && self.text(r + 1) == ")" {
                return Some(self.text(r).to_string());
            }
            return None;
        }
        Some(self.text(q).to_string())
    }

    /// A waiver holds when the marked comment sits on the same line or
    /// anywhere in the contiguous block of comment lines directly
    /// above it (multi-line justifications stay effective).
    fn waived(&self, lines: &BTreeSet<usize>, line: usize) -> bool {
        if lines.contains(&line) {
            return true;
        }
        let mut l = line;
        while l > 1 && self.comment_lines.contains(&(l - 1)) {
            l -= 1;
            if lines.contains(&l) {
                return true;
            }
        }
        false
    }

    fn run(self, engine: &mut LintEngine) {
        let mut p = 0usize;
        let mut brace_depth = 0usize;
        let mut group_depth = 0usize; // ( and [ nesting, for `;` significance
        let mut guards: Vec<GuardState> = Vec::new();
        let mut pending_let: Option<Option<String>> = None;
        while p < self.sig.len() {
            if let Some(next) = self.cfg_test_skip(p) {
                p = next.max(p + 1);
                continue;
            }
            let text = self.text(p);
            let kind = self.kind(p);
            match text {
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth = brace_depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= brace_depth);
                }
                "(" | "[" => group_depth += 1,
                ")" | "]" => group_depth = group_depth.saturating_sub(1),
                ";" if group_depth == 0 => {
                    pending_let = None;
                    guards.retain(|g| !g.temp);
                }
                _ => {}
            }
            if kind == Some(TokenKind::Ident) {
                match text {
                    "fn" => {
                        guards.clear();
                        pending_let = None;
                    }
                    "let" => pending_let = Some(self.let_binding(p)),
                    "unsafe" if !self.waived(&self.safety_lines, self.line(p)) => {
                        engine.diags.push(Diagnostic::error(
                            "RV031",
                            self.loc(p),
                            "`unsafe` without a `// SAFETY:` comment on the same or \
                             preceding line"
                                .to_string(),
                        ));
                    }
                    "drop"
                        if self.text(p + 1) == "("
                            && self.kind(p + 2) == Some(TokenKind::Ident)
                            && self.text(p + 3) == ")" =>
                    {
                        let name = self.text(p + 2);
                        guards.retain(|g| g.binding.as_deref() != Some(name));
                    }
                    m if DENIED_MACROS.contains(&m) && self.text(p + 1) == "!" => {
                        engine.diags.push(Diagnostic::error(
                            "RV030",
                            self.loc(p),
                            format!(
                                "panic-capable `{m}!(` in a hot path; recover \
                                 (`unwrap_or_else(|e| e.into_inner())` for locks) or \
                                 return an error"
                            ),
                        ));
                    }
                    "lock"
                        if self.text(p + 1) == "("
                            && (p == 0
                                || (self.text(p - 1) != "." && self.text(p - 1) != "fn")) =>
                    {
                        let resource = self.free_lock_resource(p + 1);
                        self.acquire(engine, &mut guards, &pending_let, resource, brace_depth, p);
                    }
                    _ => {}
                }
            }
            if text == "." && self.kind(p + 1) == Some(TokenKind::Ident) {
                let m = self.text(p + 1);
                let zero_arg = self.text(p + 2) == "(" && self.text(p + 3) == ")";
                match m {
                    "unwrap" if zero_arg => engine.diags.push(Diagnostic::error(
                        "RV030",
                        self.loc(p),
                        "panic-capable `.unwrap()` in a hot path; recover \
                         (`unwrap_or_else(|e| e.into_inner())` for locks) or return an error"
                            .to_string(),
                    )),
                    "expect" if self.text(p + 2) == "(" => engine.diags.push(Diagnostic::error(
                        "RV030",
                        self.loc(p),
                        "panic-capable `.expect(` in a hot path; recover or return an error"
                            .to_string(),
                    )),
                    "lock" | "read" | "write" if zero_arg => {
                        let resource = p.checked_sub(1).and_then(|r| self.receiver_name(r));
                        self.acquire(engine, &mut guards, &pending_let, resource, brace_depth, p);
                    }
                    "submit" if self.text(p + 2) == "(" && !guards.is_empty() => {
                        self.blocked_call(engine, &guards, p, "submit(…)");
                    }
                    "help" if zero_arg && !guards.is_empty() => {
                        self.blocked_call(engine, &guards, p, "help()");
                    }
                    "wait" if zero_arg && !guards.is_empty() => {
                        self.blocked_call(engine, &guards, p, "wait()");
                    }
                    m if PUBLISHING_ATOMICS.contains(&m) && self.text(p + 2) == "(" => {
                        let close = self.skip_group(p + 2);
                        let relaxed = (p + 3..close).any(|q| {
                            self.kind(q) == Some(TokenKind::Ident) && self.text(q) == "Relaxed"
                        });
                        if relaxed && !self.waived(&self.ordering_lines, self.line(p)) {
                            engine.diags.push(Diagnostic::error(
                                "RV072",
                                self.loc(p),
                                format!(
                                    "`Ordering::Relaxed` on `.{m}(…)` — a relaxed store does \
                                     not order the data it publishes to other threads; use \
                                     Release/Acquire (or AcqRel for RMW), or waive a counter \
                                     with an `// ORDERING:` comment"
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
            p += 1;
        }
    }

    /// Records a lock acquisition: lock-order edges against every held
    /// guard, then the new guard itself.
    fn acquire(
        &self,
        engine: &mut LintEngine,
        guards: &mut Vec<GuardState>,
        pending_let: &Option<Option<String>>,
        resource: Option<String>,
        brace_depth: usize,
        p: usize,
    ) {
        if let Some(acquired) = &resource {
            let acquired_key = format!("{}:{acquired}", self.crate_label);
            for g in guards.iter() {
                let Some(held) = &g.resource else { continue };
                if held == acquired {
                    continue; // same family: indistinguishable at token level
                }
                let held_key = format!("{}:{held}", self.crate_label);
                engine
                    .lock_edges
                    .entry((held_key, acquired_key.clone()))
                    .or_insert_with(|| self.loc(p));
            }
        }
        guards.push(GuardState {
            binding: pending_let.clone().flatten(),
            resource,
            depth: brace_depth,
            temp: pending_let.is_none(),
            line: self.line(p),
        });
    }

    fn blocked_call(&self, engine: &mut LintEngine, guards: &[GuardState], p: usize, what: &str) {
        let held = guards
            .iter()
            .map(|g| {
                format!(
                    "`{}` (line {})",
                    g.resource
                        .as_deref()
                        .or(g.binding.as_deref())
                        .unwrap_or("<guard>"),
                    g.line
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        engine.diags.push(Diagnostic::error(
            "RV073",
            self.loc(p),
            format!(
                "`.{what}` called while holding {held} — the pool can run arbitrary \
                 tasks (or block) while the guard pins other threads; release the \
                 guard first"
            ),
        ));
    }
}

/// Lints one source file's text. `path_label` seeds diagnostic
/// locations as `path:line`. Lock-order cycles (RV071) are detected
/// within the file; [`lint_paths`] detects them across a whole crate.
pub fn lint_source(path_label: &str, src: &str) -> Vec<Diagnostic> {
    let mut engine = LintEngine::new();
    engine.lint_file(path_label, src);
    engine.finish()
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every hot-path source file under `repo_root` with one shared
/// engine, so the RV071 lock-order graph spans each crate.
pub fn lint_paths(repo_root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in HOT_PATH_ROOTS {
        let dir = repo_root.join(root);
        if dir.is_dir() {
            rust_files(&dir, &mut files)?;
        }
    }
    let mut engine = LintEngine::new();
    for file in files {
        let src = fs::read_to_string(&file)?;
        let label = file
            .strip_prefix(repo_root)
            .unwrap_or(&file)
            .display()
            .to_string();
        engine.lint_file(&label, &src);
    }
    Ok(engine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denies_unwrap_outside_tests() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let ds = lint_source("x.rs", src);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RV030");
        assert_eq!(ds[0].location, "x.rs:2");
    }

    #[test]
    fn allows_unwrap_in_test_module_and_recovery_forms() {
        let src = "fn f() {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn resumes_after_inline_test_module() {
        // The pre-lexer scanner stopped at the first `#[cfg(test)]`
        // and never saw the unwrap below it.
        let src = "fn a() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\
                   fn b(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let ds = lint_source("x.rs", src);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "RV030");
        assert_eq!(ds[0].location, "x.rs:7");
    }

    #[test]
    fn cfg_test_on_a_declaration_skips_just_that_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\n\
                   fn b(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let ds = lint_source("x.rs", src);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].location, "x.rs:3");
    }

    #[test]
    fn string_literals_and_comments_cannot_trip_rv030() {
        let src = "fn f() -> String {\n    /* a panic!( in a block comment\n       spanning lines */\n    let s = \"panic!(no) .unwrap() todo!(\";\n    let r = r#\"unreachable!( \" quoted\"#; // .expect( trailing\n    format!(\"{s}{r}\")\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let ds = lint_source("x.rs", bad);
        assert!(ds.iter().any(|d| d.code == "RV031"), "{ds:?}");
        let good = "fn f() {\n    // SAFETY: n < len checked above\n    unsafe { g(n) }\n}\n";
        assert!(lint_source("x.rs", good).is_empty());
        let forbid = "#![forbid(unsafe_code)]\n";
        assert!(lint_source("x.rs", forbid).is_empty());
    }

    #[test]
    fn opposite_lock_orders_fire_rv071() {
        let src = "\
fn ab(s: &S) {
    let a = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.b.lock().unwrap_or_else(|e| e.into_inner());
    use_both(a, b);
}
fn ba(s: &S) {
    let b = s.b.lock().unwrap_or_else(|e| e.into_inner());
    let a = s.a.lock().unwrap_or_else(|e| e.into_inner());
    use_both(a, b);
}
";
        let ds = lint_source("crates/x/src/l.rs", src);
        assert!(ds.iter().any(|d| d.code == "RV071"), "{ds:?}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "\
fn ab(s: &S) {
    let a = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.b.lock().unwrap_or_else(|e| e.into_inner());
    use_both(a, b);
}
fn ab2(s: &S) {
    let a = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let b = s.b.lock().unwrap_or_else(|e| e.into_inner());
    use_both(a, b);
}
";
        assert!(lint_source("crates/x/src/l.rs", src).is_empty());
    }

    #[test]
    fn free_function_lock_participates_in_rv071() {
        let src = "\
fn ab(s: &S) {
    let a = lock(&s.a);
    let b = lock(&s.b);
    use_both(a, b);
}
fn ba(s: &S) {
    let b = lock(&s.b);
    let a = lock(&s.a);
    use_both(a, b);
}
";
        let ds = lint_source("crates/x/src/l.rs", src);
        assert!(ds.iter().any(|d| d.code == "RV071"), "{ds:?}");
    }

    #[test]
    fn relaxed_publication_store_fires_rv072() {
        let src = "fn publish(s: &S) {\n    s.ready.store(true, Ordering::Relaxed);\n}\n";
        let ds = lint_source("x.rs", src);
        assert!(ds.iter().any(|d| d.code == "RV072"), "{ds:?}");
    }

    #[test]
    fn relaxed_counters_and_waived_stores_are_clean() {
        let src = "\
fn count(s: &S) {
    s.hits.fetch_add(1, Ordering::Relaxed);
    let n = s.hits.load(Ordering::Relaxed);
    // ORDERING: monotonically-increasing generation counter; readers
    // only compare for change, no data is published through it.
    s.generation.store(n, Ordering::Relaxed);
    s.ready.store(true, Ordering::Release);
}
";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn lock_held_across_submit_fires_rv073() {
        let src = "\
fn bad(s: &S, pool: &WorkerPool) {
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    let batch = pool.submit(make_tasks(&q));
    batch.wait();
}
";
        let ds = lint_source("x.rs", src);
        assert!(ds.iter().any(|d| d.code == "RV073"), "{ds:?}");
        // wait() at line 4 also runs under the guard (still in scope).
        assert!(
            ds.iter().filter(|d| d.code == "RV073").count() >= 2,
            "{ds:?}"
        );
    }

    #[test]
    fn dropping_the_guard_before_submit_is_clean() {
        let src = "\
fn good(s: &S, pool: &WorkerPool) {
    let q = s.queue.lock().unwrap_or_else(|e| e.into_inner());
    let tasks = make_tasks(&q);
    drop(q);
    let batch = pool.submit(tasks);
    pool.help();
    batch.wait();
}
";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn condvar_wait_with_guard_argument_is_exempt() {
        let src = "\
fn park(s: &S) {
    let mut gate = lock(&s.gate);
    while !gate.ready {
        gate = s.work.wait(gate).unwrap_or_else(|e| e.into_inner());
    }
}
";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn repo_hot_paths_are_clean() {
        // crates/verify is two levels below the repo root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ds = lint_paths(&root).unwrap();
        assert!(ds.is_empty(), "hot-path lint findings: {ds:?}");
    }
}
