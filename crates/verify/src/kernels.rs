//! Microkernel/format checks: pack reconstruction, autotune choice
//! legality, and cross-format bit-identity (RV090/RV091/RV092).
//!
//! PR 10 made the conv format a *plan-time decision*: every
//! `PatternCompressedConv` carries a kernel-major [`PatternPack`] (and
//! can derive a COO twin and a dense tensor), and the plan compiler
//! picks one executor per layer. Three new things can now silently go
//! wrong:
//!
//! - **RV090 — pack reconstruction.** The packed layouts are *derived*
//!   data built at load time. If packing drops, duplicates, or
//!   reorders a tap, every downstream executor computes a wrong
//!   convolution while the group-level structures still validate.
//!   [`check_pattern_pack`] / [`check_coo_pack`] reconstruct a dense
//!   weight tensor from the pack alone and require it bitwise equal to
//!   the layer's own `to_dense()`.
//! - **RV091 — autotune choice legality.** A plan summary must label
//!   every conv step with a real format (`pattern`/`coo`/`dense`),
//!   every non-conv step with `-`, and when timed-autotune evidence is
//!   present the chosen format must be the measured minimum (ties
//!   break toward the earlier candidate, matching the chooser). A
//!   violation means the plan is not executing the kernel it claims —
//!   or the tuner is ignoring its own measurements.
//! - **RV092 — cross-format bit-identity.** All four executors share
//!   one canonical accumulation order (bias first, then taps in
//!   ascending `(ic, ky, kx)`), so forcing any format through
//!   [`ExecutionPlan::compile_with`] must reproduce the interpreter
//!   **bit-for-bit** at every thread count. Closeness is not the
//!   contract: serving-layer dedup compares outputs exactly.
//!
//! The `kernel-pack` / `kernel-choice` / `kernel-equiv` fixtures prove
//! each check can fire.
//!
//! [`ExecutionPlan::compile_with`]: rtoss_sparse::ExecutionPlan::compile_with

use crate::diag::{Diagnostic, Report};
use rtoss_sparse::{
    AutotuneMode, ExecConfig, ExecutionPlan, FormatChoice, PatternCompressedConv, PlanOptions,
    PlanSummary, SparseModel, UnstructuredSparseConv,
};
use rtoss_tensor::Tensor;

/// Compares a reconstructed dense weight against the layer's own dense
/// view, bitwise (RV090 body shared by both pack flavors).
fn diff_dense(location: &str, kind: &str, packed: &Tensor, direct: &Tensor) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if packed.shape() != direct.shape() {
        out.push(Diagnostic::error(
            "RV090",
            location,
            format!(
                "{kind} pack reconstructs shape {:?} but the layer is {:?}",
                packed.shape(),
                direct.shape()
            ),
        ));
        return out;
    }
    let diffs = packed
        .as_slice()
        .iter()
        .zip(direct.as_slice())
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    if diffs > 0 {
        let first = packed
            .as_slice()
            .iter()
            .zip(direct.as_slice())
            .position(|(a, b)| a.to_bits() != b.to_bits())
            .unwrap_or(0);
        out.push(Diagnostic::error(
            "RV090",
            location,
            format!(
                "{kind} pack does not reconstruct the layer's weights: {diffs} of {} \
                 elements differ (first at flat index {first}) — the pack is derived \
                 data, so every executor reading it computes a wrong convolution",
                direct.as_slice().len()
            ),
        ));
    }
    out
}

/// Checks pack reconstruction (RV090) for a pattern-compressed layer:
/// the kernel-major [`rtoss_sparse::PatternPack`] must rebuild exactly
/// the dense weight tensor the group structure describes.
pub fn check_pattern_pack(location: &str, layer: &PatternCompressedConv) -> Vec<Diagnostic> {
    let packed = layer.pack().to_dense(
        layer.out_channels(),
        layer.in_channels(),
        layer.kernel_size(),
    );
    diff_dense(location, "pattern", &packed, &layer.to_dense())
}

/// Checks pack reconstruction (RV090) for a COO layer: the run-merged
/// [`rtoss_sparse::CooPack`] must rebuild exactly the dense weight
/// tensor the entry list describes.
pub fn check_coo_pack(location: &str, layer: &UnstructuredSparseConv) -> Vec<Diagnostic> {
    let packed = layer.pack().to_dense(
        layer.out_channels(),
        layer.in_channels(),
        layer.kernel_size(),
    );
    diff_dense(location, "coo", &packed, &layer.to_dense())
}

/// Runs RV090 over every conv layer of an engine, both pack flavors
/// (the COO pack is checked on the derived COO twin of each layer).
pub fn check_model_packs(model: &SparseModel) -> Report {
    let mut report = Report::new();
    for (node, layer) in model.conv_layers() {
        let loc = format!("node {node}");
        report.extend(check_pattern_pack(&loc, layer));
        report.extend(check_coo_pack(&loc, &rtoss_sparse::coo_from_pattern(layer)));
    }
    report
}

/// Checks autotune choice legality (RV091) of a plan summary: format
/// labels are well-formed per step kind, and any timed evidence is
/// complete and consistent with the chosen format.
pub fn check_format_choices(location: &str, s: &PlanSummary) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, step) in s.steps.iter().enumerate() {
        if step.kind == "conv" {
            if !matches!(step.format, "pattern" | "coo" | "dense") {
                out.push(Diagnostic::error(
                    "RV091",
                    location,
                    format!(
                        "step {i} ({}) is a conv but reports format {:?}: the plan is not \
                         executing a known kernel",
                        step.name, step.format
                    ),
                ));
                continue;
            }
        } else {
            if step.format != "-" {
                out.push(Diagnostic::error(
                    "RV091",
                    location,
                    format!(
                        "step {i} ({}, kind {}) reports conv format {:?} but has no conv \
                         kernel",
                        step.name, step.kind, step.format
                    ),
                ));
            }
            if !step.autotune_ns.is_empty() {
                out.push(Diagnostic::error(
                    "RV091",
                    location,
                    format!(
                        "step {i} ({}, kind {}) carries autotune evidence but is not a conv",
                        step.name, step.kind
                    ),
                ));
            }
            continue;
        }
        if step.autotune_ns.is_empty() {
            continue;
        }
        let labels: Vec<&str> = step.autotune_ns.iter().map(|(l, _)| *l).collect();
        if labels != ["pattern", "coo", "dense"] {
            out.push(Diagnostic::error(
                "RV091",
                location,
                format!(
                    "step {i} ({}) autotune evidence covers {labels:?}, expected every \
                     candidate once in order [\"pattern\", \"coo\", \"dense\"]",
                    step.name
                ),
            ));
            continue;
        }
        // First-of-min tie-break, matching the chooser exactly.
        let winner = step
            .autotune_ns
            .iter()
            .min_by_key(|(_, ns)| *ns)
            .map(|(l, _)| *l)
            .unwrap_or("pattern");
        if step.format != winner {
            out.push(Diagnostic::error(
                "RV091",
                location,
                format!(
                    "step {i} ({}) chose format {:?} but its own measurements say {winner:?} \
                     is fastest ({:?}): the tuner is ignoring its evidence",
                    step.name, step.format, step.autotune_ns
                ),
            ));
        }
    }
    out
}

/// Compares two output sets bitwise under the RV092 code.
fn outputs_identical_rv092(
    location: &str,
    got: &[Tensor],
    want: &[Tensor],
    what: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if got.len() != want.len() {
        out.push(Diagnostic::error(
            "RV092",
            location,
            format!(
                "{what} returned {} outputs, reference returned {}",
                got.len(),
                want.len()
            ),
        ));
        return out;
    }
    for (k, (g, w)) in got.iter().zip(want).enumerate() {
        if g.shape() != w.shape() {
            out.push(Diagnostic::error(
                "RV092",
                location,
                format!(
                    "output {k}: {what} shape {:?} != reference shape {:?}",
                    g.shape(),
                    w.shape()
                ),
            ));
            continue;
        }
        let diffs = g
            .as_slice()
            .iter()
            .zip(w.as_slice())
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        if diffs > 0 {
            out.push(Diagnostic::error(
                "RV092",
                location,
                format!(
                    "output {k}: {what} differs from the reference in {diffs} of {} \
                     elements — every format shares one canonical accumulation order, \
                     so cross-format drift means a kernel is accumulating out of order",
                    w.as_slice().len()
                ),
            ));
        }
    }
    out
}

/// Checks cross-format bit-identity at the single-layer level (RV092):
/// runs the pattern-tiled, COO, and dense executors on a deterministic
/// probe of `x_shape` and requires each bitwise equal to the scalar
/// reference executor. This is the layer-granular form of
/// [`check_format_equivalence`] — the fixtures corrupt one pack and
/// expect exactly this check to notice.
pub fn check_layer_format_equivalence(
    location: &str,
    layer: &PatternCompressedConv,
    x_shape: &[usize],
) -> Vec<Diagnostic> {
    use rtoss_sparse::exec::{
        conv2d_dense_into_with, conv2d_pattern_scalar_into_with, conv2d_pattern_sparse_into_with,
        conv2d_unstructured_into_with, conv_output_shape,
    };
    use rtoss_tensor::exec::Epilogue;

    let mut out = Vec::new();
    let out_shape = match conv_output_shape(
        x_shape,
        layer.in_channels(),
        layer.out_channels(),
        layer.kernel_size(),
        layer.stride(),
        layer.padding(),
        "rv092",
    ) {
        Ok(s) => s,
        Err(e) => {
            out.push(Diagnostic::error(
                "RV092",
                location,
                format!("layer does not accept input shape {x_shape:?}: {e}"),
            ));
            return out;
        }
    };
    let x: Vec<f32> = (0..x_shape.iter().product::<usize>())
        .map(|i| ((i % 23) as f32) * 0.125 - 1.375)
        .collect();
    let bias = vec![0.25f32; layer.out_channels()];
    let exec = ExecConfig::serial();
    let out_len: usize = out_shape.iter().product();
    let mut reference = vec![0.0f32; out_len];
    if let Err(e) = conv2d_pattern_scalar_into_with(
        &x,
        x_shape,
        layer,
        Some(&bias),
        &Epilogue::NONE,
        &mut reference,
        &exec,
    ) {
        out.push(Diagnostic::error(
            "RV092",
            location,
            format!("scalar reference executor failed: {e}"),
        ));
        return out;
    }
    let coo = rtoss_sparse::coo_from_pattern(layer);
    let dense = layer.to_dense();
    let mut got = vec![0.0f32; out_len];
    let check_run = |label: &str,
                     r: Result<[usize; 4], rtoss_tensor::TensorError>,
                     got: &[f32],
                     out: &mut Vec<Diagnostic>| match r {
        Ok(_) => {
            let diffs = got
                .iter()
                .zip(&reference)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            if diffs > 0 {
                out.push(Diagnostic::error(
                    "RV092",
                    location,
                    format!(
                        "{label} executor differs from the scalar reference in {diffs} of \
                         {out_len} elements on input {x_shape:?} — all formats must share \
                         the canonical accumulation order"
                    ),
                ));
            }
        }
        Err(e) => out.push(Diagnostic::error(
            "RV092",
            location,
            format!("{label} executor failed: {e}"),
        )),
    };
    let r = conv2d_pattern_sparse_into_with(
        &x,
        x_shape,
        layer,
        Some(&bias),
        &Epilogue::NONE,
        &mut got,
        &exec,
    );
    check_run("pattern-tiled", r, &got, &mut out);
    let r = conv2d_unstructured_into_with(
        &x,
        x_shape,
        &coo,
        Some(&bias),
        &Epilogue::NONE,
        &mut got,
        &exec,
    );
    check_run("coo", r, &got, &mut out);
    let r = conv2d_dense_into_with(
        &x,
        x_shape,
        &dense,
        layer.stride(),
        layer.padding(),
        Some(&bias),
        &Epilogue::NONE,
        &mut got,
        &exec,
    );
    check_run("dense", r, &got, &mut out);
    out
}

/// Checks cross-format bit-identity (RV092): compiles the engine once
/// per forced format (`pattern`, `coo`, `dense`), runs each plan on
/// `input` at every thread count in `threads`, and requires all of
/// them to reproduce the serial interpreter bit-for-bit.
pub fn check_format_equivalence(model: &SparseModel, input: &Tensor, threads: &[usize]) -> Report {
    let mut report = Report::new();
    let shape = input.shape();
    let reference = match model.forward_interpreted_with(input, &ExecConfig::serial()) {
        Ok(r) => r,
        Err(e) => {
            report.push(Diagnostic::error(
                "RV092",
                format!("formats{shape:?}"),
                format!("interpreter forward failed: {e}"),
            ));
            return report;
        }
    };
    for (choice, label) in [
        (FormatChoice::Pattern, "pattern"),
        (FormatChoice::Coo, "coo"),
        (FormatChoice::Dense, "dense"),
    ] {
        let opts = PlanOptions {
            format: choice,
            autotune: AutotuneMode::Heuristic,
        };
        let plan = match ExecutionPlan::compile_with(model, shape, &opts) {
            Ok(p) => p,
            Err(e) => {
                report.push(Diagnostic::error(
                    "RV092",
                    format!("formats{shape:?} {label}"),
                    format!("plan compilation failed: {e}"),
                ));
                continue;
            }
        };
        let summary = plan.summary_for(model);
        report.extend(check_format_choices(
            &format!("formats{shape:?} {label}"),
            &summary,
        ));
        for &t in threads {
            let loc = format!("formats{shape:?} {label} threads={t}");
            match plan.run(model, input, &ExecConfig::with_threads(t)) {
                Ok(got) => report.extend(outputs_identical_rv092(
                    &loc,
                    &got,
                    &reference,
                    &format!("{label} plan"),
                )),
                Err(e) => report.push(Diagnostic::error(
                    "RV092",
                    loc,
                    format!("{label} planned forward failed: {e}"),
                )),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtoss_core::{EntryPattern, Pruner, RTossPruner};
    use rtoss_tensor::init;

    fn engine() -> SparseModel {
        let mut m = rtoss_models::yolov5s_twin(4, 2, 0x90).expect("twin builds");
        RTossPruner::new(EntryPattern::Two)
            .prune_graph(&mut m.graph)
            .expect("prunes");
        SparseModel::compile(&m.graph).expect("compiles")
    }

    #[test]
    fn clean_engine_passes_all_kernel_checks() {
        let engine = engine();
        assert!(!check_model_packs(&engine).has_errors());
        let s = engine.plan_summary(&[1, 3, 32, 32]).expect("plans");
        assert!(check_format_choices("clean", &s).is_empty());
        let probe = init::uniform(&mut init::rng(0x91), &[1, 3, 32, 32], 0.0, 1.0);
        let report = check_format_equivalence(&engine, &probe, &[1, 4]);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn corrupted_pattern_pack_fires_rv090() {
        let engine = engine();
        let (_, layer) = engine.conv_layers()[0];
        let mut bad = layer.clone();
        let vals = bad.pack_mut().values_mut();
        vals[0] = f32::from_bits(vals[0].to_bits() ^ 1);
        let diags = check_pattern_pack("corrupt", &bad);
        assert!(diags.iter().any(|d| d.code == "RV090"), "{diags:?}");
    }

    #[test]
    fn corrupted_coo_pack_fires_rv090() {
        let engine = engine();
        let (_, layer) = engine.conv_layers()[0];
        let mut coo = rtoss_sparse::coo_from_pattern(layer);
        let vals = coo.pack_mut().values_mut();
        vals[0] += 1.0;
        let diags = check_coo_pack("corrupt", &coo);
        assert!(diags.iter().any(|d| d.code == "RV090"), "{diags:?}");
    }

    #[test]
    fn evidence_ignoring_choice_fires_rv091() {
        let engine = engine();
        let mut s = engine.plan_summary(&[1, 3, 32, 32]).expect("plans");
        let conv = s
            .steps
            .iter_mut()
            .find(|st| st.kind == "conv")
            .expect("twin has convs");
        // Claim evidence that says dense is fastest while running coo.
        conv.format = "coo";
        conv.autotune_ns = vec![("pattern", 300), ("coo", 200), ("dense", 100)];
        let diags = check_format_choices("corrupt", &s);
        assert!(diags.iter().any(|d| d.code == "RV091"), "{diags:?}");
    }

    #[test]
    fn non_conv_with_format_fires_rv091() {
        let engine = engine();
        let mut s = engine.plan_summary(&[1, 3, 32, 32]).expect("plans");
        let other = s
            .steps
            .iter_mut()
            .find(|st| st.kind != "conv")
            .expect("twin has non-conv steps");
        other.format = "dense";
        let diags = check_format_choices("corrupt", &s);
        assert!(diags.iter().any(|d| d.code == "RV091"), "{diags:?}");
    }

    #[test]
    fn output_drift_fires_rv092() {
        let want = vec![Tensor::full(&[1, 2, 2, 2], 1.0)];
        let mut got = want.clone();
        let mut data = got[0].as_slice().to_vec();
        data[3] = f32::from_bits(data[3].to_bits() ^ 1);
        got[0] = Tensor::from_vec(data, want[0].shape()).expect("same shape");
        let diags = outputs_identical_rv092("corrupt", &got, &want, "test");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RV092");
    }
}
