//! Executor checks: tile-partition soundness and latency-histogram
//! bucket geometry (RV020/RV021).
//!
//! The parallel executor deals (batch × out-channel) tiles to worker
//! threads; correctness requires the dealt buckets to *partition* the
//! tile range — every tile in exactly one bucket, no bucket out of
//! range. [`check_tile_partition`] proves that for the real dealing
//! functions ([`rtoss_tensor::exec::bucket_of`] /
//! [`effective_threads`]) across every thread count up to a bound, and
//! [`check_tile_partition_buckets`] checks an arbitrary materialised
//! assignment (used by the corruption fixtures).
//!
//! The serving histogram's bucket boundaries must be strictly
//! monotonic with half-open `(upper(i-1), upper(i)]` ranges;
//! [`check_histogram_buckets`] proves it for
//! [`rtoss_serve::LatencyHistogram`] and
//! [`check_histogram_mapping`] for any `(upper, index)` pair.
//!
//! [`effective_threads`]: rtoss_tensor::exec::effective_threads

use crate::diag::{Diagnostic, Report};
use rtoss_serve::LatencyHistogram;
use rtoss_tensor::exec::{bucket_of, effective_threads};

/// Checks that `buckets` partitions the tile range `0..n_tiles`:
/// no out-of-range index, no duplicate, no missing tile.
pub fn check_tile_partition_buckets(
    location: &str,
    n_tiles: usize,
    buckets: &[Vec<usize>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut owner: Vec<Option<usize>> = vec![None; n_tiles];
    for (b, tiles) in buckets.iter().enumerate() {
        for &t in tiles {
            if t >= n_tiles {
                out.push(Diagnostic::error(
                    "RV020",
                    location,
                    format!("bucket {b} claims tile {t}, but only {n_tiles} tiles exist"),
                ));
                continue;
            }
            match owner[t] {
                Some(prev) => out.push(Diagnostic::error(
                    "RV020",
                    location,
                    format!("tile {t} dealt to both bucket {prev} and bucket {b} (overlap)"),
                )),
                None => owner[t] = Some(b),
            }
        }
    }
    for (t, o) in owner.iter().enumerate() {
        if o.is_none() {
            out.push(Diagnostic::error(
                "RV020",
                location,
                format!("tile {t} dealt to no bucket (work lost)"),
            ));
        }
    }
    out
}

/// Materialises the executor's round-robin dealing for one
/// `(n_tiles, threads)` configuration, exactly as `run_tiles` does.
pub fn dealt_buckets(n_tiles: usize, threads: usize) -> Vec<Vec<usize>> {
    let eff = effective_threads(n_tiles, threads);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); eff];
    for tile in 0..n_tiles {
        let b = bucket_of(tile, eff);
        // An out-of-range bucket would panic here in the executor too;
        // surface it as a (reportable) overflow bucket instead.
        if b < eff {
            buckets[b].push(tile);
        } else {
            buckets.push(vec![tile]);
        }
    }
    buckets
}

/// Proves the executor's tile dealing partitions `0..n_tiles` for every
/// thread count in `1..=max_threads`, and that no worker idles while
/// others hold multiple tiles (balance within one tile).
pub fn check_tile_partition(n_tiles: usize, max_threads: usize) -> Report {
    let mut report = Report::new();
    for threads in 1..=max_threads.max(1) {
        let loc = format!("run_tiles(n_tiles={n_tiles}, threads={threads})");
        let buckets = dealt_buckets(n_tiles, threads);
        report.extend(check_tile_partition_buckets(&loc, n_tiles, &buckets));
        let (min, max) = buckets.iter().fold((usize::MAX, 0), |(lo, hi), b| {
            (lo.min(b.len()), hi.max(b.len()))
        });
        if !buckets.is_empty() && max > min + 1 {
            report.push(Diagnostic::error(
                "RV020",
                loc,
                format!(
                    "round-robin dealing is unbalanced: bucket sizes range {min}..={max} \
                     (must differ by at most one tile)"
                ),
            ));
        }
    }
    report
}

/// Checks an arbitrary histogram bucket geometry: `upper(i)` strictly
/// increasing, and `index` honouring half-open `(upper(i-1), upper(i)]`
/// ranges at and just past every boundary.
pub fn check_histogram_mapping(
    location: &str,
    n_buckets: usize,
    upper: impl Fn(usize) -> f64,
    index: impl Fn(f64) -> usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 1..n_buckets {
        if upper(i) <= upper(i - 1) {
            out.push(Diagnostic::error(
                "RV021",
                location,
                format!(
                    "bucket boundaries not strictly increasing: upper({i}) = {} <= \
                     upper({}) = {}",
                    upper(i),
                    i - 1,
                    upper(i - 1)
                ),
            ));
        }
    }
    // The last bucket is a catch-all; boundary behaviour applies below it.
    for i in 0..n_buckets.saturating_sub(1) {
        let at = index(upper(i));
        if at != i {
            out.push(Diagnostic::error(
                "RV021",
                location,
                format!(
                    "sample at upper({i}) = {} lands in bucket {at}; ranges are \
                     half-open (lo, hi], so it belongs to bucket {i}",
                    upper(i)
                ),
            ));
        }
        let past = index(upper(i) * 1.0001);
        if past != i + 1 {
            out.push(Diagnostic::error(
                "RV021",
                location,
                format!(
                    "sample just past upper({i}) lands in bucket {past}, expected {}",
                    i + 1
                ),
            ));
        }
    }
    out
}

/// Proves the serving histogram's bucket geometry (RV021).
pub fn check_histogram_buckets() -> Report {
    let mut report = Report::new();
    report.extend(check_histogram_mapping(
        "LatencyHistogram",
        LatencyHistogram::NUM_BUCKETS,
        LatencyHistogram::bucket_upper_ns,
        LatencyHistogram::bucket_index,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_dealing_partitions_for_all_thread_counts() {
        for n_tiles in [0, 1, 3, 7, 16, 33] {
            let report = check_tile_partition(n_tiles, 8);
            assert!(!report.has_errors(), "{}", report.render());
        }
    }

    #[test]
    fn corrupted_partition_is_rv020() {
        // Tile 0 dealt twice, tile 2 never dealt.
        let buckets = vec![vec![0, 1], vec![0, 3]];
        let ds = check_tile_partition_buckets("fixture", 4, &buckets);
        assert!(ds.iter().any(|d| d.message.contains("overlap")), "{ds:?}");
        assert!(ds.iter().any(|d| d.message.contains("no bucket")), "{ds:?}");
        assert!(ds.iter().all(|d| d.code == "RV020"));
    }

    #[test]
    fn serving_histogram_geometry_is_clean() {
        let report = check_histogram_buckets();
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn pre_fix_bucket_mapping_is_rv021() {
        // The mapping shipped before the RV021 fix: floor + 1 without the
        // boundary correction, which drops exact-boundary samples one
        // bucket too high.
        let broken = |ns: f64| {
            if ns <= 250.0 {
                return 0;
            }
            let steps = ((ns / 250.0).log2() / 0.5).floor() as usize;
            (steps + 1).min(LatencyHistogram::NUM_BUCKETS - 1)
        };
        let ds = check_histogram_mapping(
            "fixture",
            LatencyHistogram::NUM_BUCKETS,
            LatencyHistogram::bucket_upper_ns,
            broken,
        );
        assert!(ds.iter().any(|d| d.code == "RV021"), "{ds:?}");
    }
}
